"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was driven into an invalid state."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulation process that another process interrupted.

    Carries the ``cause`` handed to :meth:`repro.simkit.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class ClusterError(ReproError):
    """Invalid operation on the cluster substrate (unknown node, bad state...)."""


class NetworkError(ReproError):
    """A network-layer failure that is *not* a simulated link fault."""


class BroadcastFailed(ReproError):
    """A broadcast could not be delivered to one or more targets.

    Attributes:
        failed: node ids the payload never reached.
    """

    def __init__(self, failed: tuple[int, ...], message: str = "") -> None:
        super().__init__(message or f"broadcast failed for {len(failed)} node(s)")
        self.failed = failed


class SchedulingError(ReproError):
    """The scheduler was asked to do something impossible (e.g. a job
    larger than the whole machine)."""


class EstimationError(ReproError):
    """The runtime-estimation framework hit an unusable configuration or
    was queried before any model was trained."""


class TraceFormatError(ReproError):
    """A workload trace file could not be parsed."""


# ---------------------------------------------------------------------------
# Outcome codes shared by the CLI and the serve gateway
# ---------------------------------------------------------------------------
# One table, two transports.  The ``repro`` CLI exits with the code; the
# gateway returns the paired HTTP status.  A check that *ran* but found
# violations is EXIT_FAILURE (the request itself succeeded — HTTP 200
# with ``"ok": false``); EXIT_USAGE is argparse's own exit code for
# malformed command lines and has no HTTP twin (malformed request bodies
# are configuration errors, HTTP 400).

EXIT_OK = 0          #: success (HTTP 200)
EXIT_FAILURE = 1     #: ran, but the check/verification failed (HTTP 200, ok=false)
EXIT_USAGE = 2       #: malformed command line (argparse; CLI only)
EXIT_CONFIG = 3      #: :class:`ConfigurationError` — bad parameters (HTTP 400)
EXIT_INTERNAL = 4    #: unexpected internal error (HTTP 500)
EXIT_BUSY = 5        #: gateway queue full, load shed (HTTP 429)

#: exit code → HTTP status, for codes that cross the wire
HTTP_STATUS = {
    EXIT_OK: 200,
    EXIT_FAILURE: 200,
    EXIT_CONFIG: 400,
    EXIT_INTERNAL: 500,
    EXIT_BUSY: 429,
}
