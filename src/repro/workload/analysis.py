"""Trace analysis reproducing the measurements behind Fig. 5.

The paper defines two jobs as *correlated* when they have "similar job
names, required resources, and job runtime"; the *job correlation
ratio* is the fraction of correlated pairs among pairs satisfying a
condition (submission interval in a bucket, or job-ID gap in a bucket).
All-pairs is O(n²), so both ratio functions subsample pairs uniformly —
with a seeded generator, keeping every figure deterministic.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import ConfigurationError
from repro.sched.job import Job


def estimate_accuracy_values(jobs: t.Sequence[Job]) -> np.ndarray:
    """P = t_s / t_r for every job carrying a user estimate (Fig. 5a).

    P > 1 is an overestimate.  Sorted ascending, ready for a CDF plot.
    """
    vals = [
        j.user_estimate_s / j.runtime_s for j in jobs if j.user_estimate_s is not None
    ]
    return np.sort(np.asarray(vals, dtype=float))


def jobs_correlated(a: Job, b: Job, runtime_rtol: float = 0.5, nodes_rtol: float = 1.0) -> bool:
    """The paper's correlation predicate for a job pair."""
    if a.name != b.name:
        return False
    big_n, small_n = max(a.n_nodes, b.n_nodes), min(a.n_nodes, b.n_nodes)
    if big_n > small_n * (1 + nodes_rtol):
        return False
    big_r, small_r = max(a.runtime_s, b.runtime_s), min(a.runtime_s, b.runtime_s)
    return big_r <= small_r * (1 + runtime_rtol)


def _same_user_pairs_in_interval(
    by_user: dict[str, list[Job]],
    lo_s: float,
    hi_s: float,
    max_pairs: int,
    rng: np.random.Generator,
) -> t.Iterator[tuple[Job, Job]]:
    """Sample *same-user* job pairs with submission gap in [lo_s, hi_s).

    Fig. 5b's interval condition is over a user's own submission
    stream — that is where the "will they run the same thing again"
    locality lives; cross-user pairs are uncorrelated by construction.
    """
    users = [u for u, js in by_user.items() if len(js) >= 2]
    if not users:
        return
    submit_arrays = {u: np.array([j.submit_time for j in by_user[u]]) for u in users}
    weights = np.array([len(by_user[u]) for u in users], dtype=float)
    weights /= weights.sum()
    count = 0
    attempts = 0
    max_attempts = max_pairs * 50
    while count < max_pairs and attempts < max_attempts:
        attempts += 1
        user = users[int(rng.choice(len(users), p=weights))]
        jobs_u = by_user[user]
        submits = submit_arrays[user]
        i = int(rng.integers(len(jobs_u)))
        lo_idx = int(np.searchsorted(submits, submits[i] + lo_s, side="left"))
        hi_idx = int(np.searchsorted(submits, submits[i] + hi_s, side="left"))
        if hi_idx <= lo_idx:
            continue
        j = int(rng.integers(lo_idx, hi_idx))
        if j == i:
            continue
        count += 1
        yield jobs_u[i], jobs_u[j]


def job_correlation_by_interval(
    jobs: t.Sequence[Job],
    interval_hours: t.Sequence[float],
    max_pairs: int = 2000,
    seed: int = 0,
) -> list[float]:
    """Correlation ratio per submission-interval bucket (Fig. 5b).

    Bucket ``h`` covers gaps in [h, h + bucket width) where the width is
    the spacing of ``interval_hours``.
    """
    if not interval_hours:
        raise ConfigurationError("need at least one interval bucket")
    by_user: dict[str, list[Job]] = {}
    for job in sorted(jobs, key=lambda j: j.submit_time):
        by_user.setdefault(job.user, []).append(job)
    hours = list(interval_hours)
    widths = [b - a for a, b in zip(hours, hours[1:])] or [1.0]
    widths.append(widths[-1])
    rng = np.random.default_rng(seed)
    ratios = []
    for h, w in zip(hours, widths):
        pairs = list(
            _same_user_pairs_in_interval(by_user, h * 3600.0, (h + w) * 3600.0, max_pairs, rng)
        )
        if not pairs:
            ratios.append(0.0)
            continue
        ratios.append(sum(jobs_correlated(a, b) for a, b in pairs) / len(pairs))
    return ratios


def job_correlation_by_id_gap(
    jobs: t.Sequence[Job],
    gaps: t.Sequence[int],
    max_pairs: int = 2000,
    seed: int = 0,
) -> list[float]:
    """Correlation ratio per job-ID-gap bucket (Fig. 5c).

    Jobs are indexed in submission order; bucket ``g`` samples pairs
    whose index distance is within ±25 % of ``g``.
    """
    if not gaps:
        raise ConfigurationError("need at least one gap bucket")
    ordered = sorted(jobs, key=lambda j: j.submit_time)
    n = len(ordered)
    rng = np.random.default_rng(seed)
    ratios = []
    for g in gaps:
        if g < 1:
            raise ConfigurationError("id gaps must be >= 1")
        lo, hi = max(1, int(g * 0.75)), max(2, int(g * 1.25) + 1)
        pairs = []
        attempts = 0
        while len(pairs) < max_pairs and attempts < max_pairs * 20:
            attempts += 1
            i = int(rng.integers(n))
            d = int(rng.integers(lo, hi))
            if i + d >= n:
                continue
            pairs.append((ordered[i], ordered[i + d]))
        if not pairs:
            ratios.append(0.0)
            continue
        ratios.append(sum(jobs_correlated(a, b) for a, b in pairs) / len(pairs))
    return ratios
