"""User and application behaviour models behind the synthetic traces.

Applications live in a *global pool* with Zipf popularity — production
machines run a handful of community codes (CFD solvers, MD engines)
for many different users, which is what gives random long-ID-gap job
pairs their residual correlation floor in Fig. 5c.  Each user samples a
small repertoire from the pool; young machines' users *drift* —
swapping repertoire entries over time — which is what drives the
long-interval correlation of Fig. 5b to zero on NG-Tianhe.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Application families the paper lists for its production systems.
APP_FAMILIES = (
    "cfd",
    "electromag",
    "combustion",
    "nonlinear-flow",
    "bioinfo",
    "mech-strength",
    "climate",
    "md",
)

SIX_HOURS = 6 * 3600.0


@dataclass(frozen=True)
class AppSpec:
    """One application's globally shared job shape.

    Attributes:
        name: job-script name, shared by every user of the code.
        runtime_scale_s: median runtime.
        runtime_sigma: lognormal sigma of run-to-run variation (small:
            the same input deck runs for about the same time).
        n_nodes: typical allocation size.
        long_running: whether jobs usually exceed 6 h (these get the
            evening submission bias).
    """

    name: str
    runtime_scale_s: float
    runtime_sigma: float
    n_nodes: int
    long_running: bool

    #: strong-scaling exponent: doubling nodes cuts runtime by ~2^-0.7
    SCALING_ALPHA = 0.7

    def sample_runtime(self, rng: np.random.Generator, n_nodes: int | None = None) -> float:
        """Runtime for one run, strong-scaled to the allocation size.

        The same input deck on more nodes finishes faster (imperfectly:
        exponent ``SCALING_ALPHA``); models that ignore the node count
        — per-name averages like Last-2/PREP — pay for it here, exactly
        as they do on real machines.
        """
        base = float(self.runtime_scale_s * rng.lognormal(0.0, self.runtime_sigma))
        if n_nodes is None or n_nodes == self.n_nodes:
            return base
        return base * float((self.n_nodes / max(n_nodes, 1)) ** self.SCALING_ALPHA)

    def sample_nodes(self, rng: np.random.Generator, max_nodes: int) -> int:
        # Usually the standard size; occasional scale-up/down runs.
        factor = rng.choice([1.0] * 8 + [0.5, 2.0])
        return int(np.clip(round(self.n_nodes * factor), 1, max_nodes))


class AppPool:
    """Global application library with Zipf popularity."""

    def __init__(
        self,
        n_apps: int,
        max_nodes: int,
        long_job_fraction: float,
        rng: np.random.Generator,
        zipf_s: float = 1.1,
    ) -> None:
        if n_apps < 1:
            raise ConfigurationError("app pool needs at least one application")
        self.apps: list[AppSpec] = []
        for a in range(n_apps):
            family = APP_FAMILIES[a % len(APP_FAMILIES)]
            long_running = rng.random() < long_job_fraction
            if long_running:
                scale = float(rng.uniform(SIX_HOURS, 4 * SIX_HOURS))
            else:
                scale = float(rng.uniform(60.0, SIX_HOURS / 2))
            n_nodes = max(1, int(2 ** rng.uniform(0, np.log2(max(max_nodes, 2)))))
            self.apps.append(
                AppSpec(
                    name=f"{family}_{a:03d}.sh",
                    runtime_scale_s=scale,
                    runtime_sigma=float(rng.uniform(0.05, 0.2)),
                    n_nodes=n_nodes,
                    long_running=long_running,
                )
            )
        ranks = np.arange(1, n_apps + 1, dtype=float)
        weights = ranks**-zipf_s
        self._weights = weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> AppSpec:
        """Popularity-weighted draw."""
        return self.apps[int(rng.choice(len(self.apps), p=self._weights))]

    def popularity_concentration(self) -> float:
        """Σ share² — the chance two random draws hit the same app."""
        return float((self._weights**2).sum())


@dataclass
class UserModel:
    """A user: repertoire + recent submissions for the repeat behaviour.

    Users work in *sessions*: a stretch of activity on one project,
    followed by idle time.  A new session resets the repeat chain
    (``recent``), so the same-app streaks that dominate short-interval
    correlation die out on the session timescale — the mechanism behind
    Fig. 5b's decay.
    """

    name: str
    apps: list[AppSpec]
    #: (submit_time, app) pairs from the user's last day
    recent: list[tuple[float, AppSpec]] = field(default_factory=list)
    active_until: float = 0.0
    idle_until: float = 0.0

    def ensure_session(
        self,
        now: float,
        session_s: float,
        gap_s: float,
        rng: np.random.Generator,
    ) -> bool:
        """Return whether the user is active now, starting a session if due."""
        if now < self.active_until:
            return True
        if now < self.idle_until:
            return False
        # New session: fresh project focus, old repeat chain forgotten.
        self.active_until = now + float(rng.exponential(session_s))
        self.idle_until = self.active_until + float(rng.exponential(gap_s))
        self.recent.clear()
        return True

    def pick_app(self, now: float, repeat_prob: float, rng: np.random.Generator) -> AppSpec:
        """With ``repeat_prob``, rerun something from the last 24 h.

        Fresh picks are Zipf-weighted within the repertoire: most users
        have one workhorse code and a tail of occasional ones.
        """
        day_ago = now - 24 * 3600.0
        self.recent = [(ts, app) for ts, app in self.recent if ts >= day_ago]
        if self.recent and rng.random() < repeat_prob:
            # Mostly rerun the *latest* thing (iterating on one problem),
            # occasionally something else from the day.
            if rng.random() < 0.7:
                _, app = self.recent[-1]
            else:
                _, app = self.recent[int(rng.integers(len(self.recent)))]
        else:
            weights = 1.0 / np.arange(1, len(self.apps) + 1)
            weights /= weights.sum()
            app = self.apps[int(rng.choice(len(self.apps), p=weights))]
        self.recent.append((now, app))
        return app

    def drift(self, pool: AppPool, rng: np.random.Generator) -> None:
        """Swap one repertoire entry for a fresh pool draw (young-machine
        users exploring new codes; breaks long-range self-correlation)."""
        idx = int(rng.integers(len(self.apps)))
        self.apps[idx] = pool.sample(rng)


def make_users(
    n_users: int,
    apps_per_user: int,
    pool: AppPool,
    rng: np.random.Generator,
    name_base: int = 0,
) -> list[UserModel]:
    """Build the user population, repertoires drawn from the pool."""
    if n_users < 1 or apps_per_user < 1:
        raise ConfigurationError("need at least one user and one app each")
    users = []
    for u in range(n_users):
        apps = [pool.sample(rng) for _ in range(apps_per_user)]
        users.append(UserModel(name=f"user{name_base + u:04d}", apps=apps))
    return users
