"""Calibrated synthetic workload generation.

``generate_trace`` produces :class:`~repro.sched.job.Job` lists whose
marginal statistics match everything the paper reports about its
production traces — see the package docstring for the list.  Two
presets mirror Table III's systems: Tianhe-2A (mature machine, stable
users, long-range correlation ≈0.3) and NG-Tianhe (young machine,
drifting users, correlation decays towards 0).
"""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.sched.job import Job
from repro.workload.users import AppPool, UserModel, make_users

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic workload parameters.

    Args:
        n_users: user population size.
        n_apps: global application-pool size (community codes).
        apps_per_user: repertoire size (smaller -> more repetition).
        jobs_per_day: mean arrival rate.
        max_nodes: largest job size to generate.
        repeat_prob: chance a submission reruns something from the
            user's last 24 h (paper: 89.2 %).
        overestimate_prob: chance the user's wall request exceeds the
            true runtime (paper Fig. 5a: 80-90 %).
        overestimate_sigma: spread of the overestimation factor.
        long_job_fraction: fraction of apps whose jobs run > 6 h.
        evening_bias: fraction of long-job submissions pushed into the
            18:00-24:00 window (paper: 71.4 %).
        no_estimate_prob: chance a user submits no wall request at all.
        user_drift_per_day: expected repertoire swaps per user per day
            (young NG-Tianhe users exploring new codes; drives Fig. 5b's
            long-interval decay to ~0).
        burst_mean: mean size of a submission burst — users submit the
            same script several times back-to-back (sweeps, job arrays),
            which correlates adjacent job IDs in Fig. 5c.
        malleable_fraction: chance a generated job is *elastic* — it
            declares ``min_nodes``/``max_nodes`` around its request and
            accepts runtime grow/shrink (the DMR model; 0.0 keeps the
            paper's rigid traces byte-identical).
        name: preset label.
    """

    n_users: int = 64
    n_apps: int = 40
    apps_per_user: int = 3
    jobs_per_day: float = 1500.0
    max_nodes: int = 1024
    repeat_prob: float = 0.892
    overestimate_prob: float = 0.85
    overestimate_sigma: float = 0.8
    long_job_fraction: float = 0.2
    evening_bias: float = 0.714
    no_estimate_prob: float = 0.05
    user_drift_per_day: float = 0.0
    burst_mean: float = 3.0
    session_hours: float = 14.0
    session_gap_hours: float = 30.0
    malleable_fraction: float = 0.0
    name: str = "generic"

    def __post_init__(self) -> None:
        for p in (
            self.repeat_prob,
            self.overestimate_prob,
            self.evening_bias,
            self.no_estimate_prob,
            self.malleable_fraction,
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError("probabilities must be in [0, 1]")
        if self.n_users < 1 or self.jobs_per_day <= 0 or self.max_nodes < 1:
            raise ConfigurationError("invalid population/rate/size parameters")
        if self.n_apps < 1 or self.apps_per_user < 1 or self.user_drift_per_day < 0:
            raise ConfigurationError("invalid app-pool/drift parameters")

    @classmethod
    def tianhe2a(cls, **overrides: t.Any) -> "WorkloadConfig":
        """Mature machine: stable users, strong long-range correlation."""
        cfg = cls(
            n_users=48,
            n_apps=30,
            apps_per_user=4,
            jobs_per_day=1700.0,
            max_nodes=4096,
            user_drift_per_day=0.0,
            name="tianhe2a",
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def ng_tianhe(cls, **overrides: t.Any) -> "WorkloadConfig":
        """Young machine: drifting users, correlation decays towards 0."""
        cfg = cls(
            n_users=80,
            n_apps=60,
            apps_per_user=6,
            jobs_per_day=300.0,
            max_nodes=8192,
            user_drift_per_day=2.0,
            name="ng-tianhe",
        )
        return replace(cfg, **overrides) if overrides else cfg


def _submission_hour(long_running: bool, cfg: WorkloadConfig, rng: np.random.Generator) -> float:
    """Hour-of-day respecting the evening bias for long jobs."""
    if long_running and rng.random() < cfg.evening_bias:
        return float(rng.uniform(18.0, 24.0))
    return float(rng.uniform(0.0, 24.0))


def _user_estimate(runtime_s: float, cfg: WorkloadConfig, rng: np.random.Generator) -> float | None:
    """Fig. 5a behaviour: usually a (often heavy) overestimate."""
    if rng.random() < cfg.no_estimate_prob:
        return None
    if rng.random() < cfg.overestimate_prob:
        factor = 1.0 + float(rng.lognormal(0.0, cfg.overestimate_sigma))
    else:
        factor = float(rng.uniform(0.55, 1.0))
    # Users round up to "nice" wall times (multiples of 10 minutes).
    est = runtime_s * factor
    return max(600.0 * math.ceil(est / 600.0), 600.0)


def generate_trace(
    config: WorkloadConfig,
    n_jobs: int,
    seed: int = 0,
    start_time: float = 0.0,
    job_id_base: int = 0,
) -> list[Job]:
    """Generate ``n_jobs`` jobs, submit-time ordered.

    Deterministic given (config, n_jobs, seed).
    """
    if n_jobs < 0:
        raise ConfigurationError("n_jobs cannot be negative")
    rng = np.random.default_rng(seed)
    pool = AppPool(config.n_apps, config.max_nodes, config.long_job_fraction, rng)
    users = make_users(config.n_users, config.apps_per_user, pool, rng)
    jobs: list[Job] = []
    now = start_time
    mean_gap = DAY / config.jobs_per_day
    next_drift = now + DAY
    while len(jobs) < n_jobs:
        now += float(rng.exponential(mean_gap))
        # Daily repertoire drift (young-machine user behaviour).
        while now >= next_drift:
            if config.user_drift_per_day > 0:
                n_swaps = rng.poisson(config.user_drift_per_day, size=len(users))
                for user, k in zip(users, n_swaps):
                    for _ in range(int(k)):
                        user.drift(pool, rng)
            next_drift += DAY
        # Pick an *active* user (retrying a bounded number of times so the
        # arrival rate holds even when many users are idle).
        session_s = config.session_hours * HOUR
        gap_s = config.session_gap_hours * HOUR
        user = users[int(rng.integers(len(users)))]
        for _ in range(20):
            if user.ensure_session(now, session_s, gap_s, rng):
                break
            user = users[int(rng.integers(len(users)))]
        app = user.pick_app(now, config.repeat_prob, rng)
        # Re-anchor the submission to an hour that matches the app class.
        day_start = math.floor(now / DAY) * DAY
        hour = _submission_hour(app.long_running, config, rng)
        submit = day_start + hour * HOUR
        # One arrival = a burst of near-identical submissions (sweeps,
        # job arrays); bursts are what correlate adjacent job IDs.
        burst = int(rng.geometric(1.0 / config.burst_mean)) if config.burst_mean > 1 else 1
        burst = max(1, min(burst, n_jobs - len(jobs)))
        nodes = app.sample_nodes(rng, config.max_nodes)
        for b in range(burst):
            runtime = max(app.sample_runtime(rng, nodes), 10.0)
            # Elastic-job range (DMR model): strictly gated so the RNG
            # stream — and hence every existing trace — is untouched
            # when the fraction is 0.
            min_nodes = max_nodes = 0
            if config.malleable_fraction > 0.0 and rng.random() < config.malleable_fraction:
                min_nodes = max(1, nodes // 2)
                max_nodes = max(min(config.max_nodes, nodes * 2), nodes)
            jobs.append(
                Job(
                    job_id=job_id_base + len(jobs),
                    name=app.name,
                    user=user.name,
                    n_nodes=nodes,
                    runtime_s=runtime,
                    user_estimate_s=_user_estimate(runtime, config, rng),
                    submit_time=submit + b * float(rng.uniform(1.0, 30.0)),
                    min_nodes=min_nodes,
                    max_nodes=max_nodes,
                )
            )
    jobs.sort(key=lambda j: j.submit_time)
    # Job ids must follow submission order (Fig. 5c is keyed on ID gap).
    for i, job in enumerate(jobs):
        job.job_id = job_id_base + i
    return jobs
