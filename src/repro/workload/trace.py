"""Trace container and Standard Workload Format (SWF) I/O.

SWF is the de-facto archive format for HPC scheduling logs
(`18 whitespace-separated fields per job, ';' comments`).  We read and
write the subset of fields the library uses and preserve the rest as
-1 ("unknown") exactly as the format prescribes, so traces round-trip
through standard tooling.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.sched.job import Job

#: SWF field indices (0-based) used by this library.
_F_JOB_ID = 0
_F_SUBMIT = 1
_F_WAIT = 2
_F_RUNTIME = 3
_F_PROCS = 4
_F_REQ_PROCS = 7
_F_REQ_TIME = 8
_F_USER = 11
_N_FIELDS = 18


@dataclass
class JobTrace:
    """An ordered collection of jobs with summary helpers."""

    jobs: list[Job]
    name: str = "trace"

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda j: j.submit_time)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> t.Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, idx: int) -> Job:
        return self.jobs[idx]

    @property
    def span_s(self) -> float:
        """Time between first and last submission."""
        if len(self.jobs) < 2:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    def window(self, t0: float, t1: float) -> "JobTrace":
        """Jobs submitted within [t0, t1)."""
        return JobTrace([j for j in self.jobs if t0 <= j.submit_time < t1], name=self.name)

    def head(self, n: int) -> "JobTrace":
        return JobTrace(self.jobs[:n], name=self.name)

    def stats(self) -> dict[str, float]:
        """Quick-look summary statistics."""
        if not self.jobs:
            return {"n_jobs": 0}
        runtimes = np.array([j.runtime_s for j in self.jobs])
        nodes = np.array([j.n_nodes for j in self.jobs])
        with_est = [j for j in self.jobs if j.user_estimate_s is not None]
        over = [j for j in with_est if j.user_estimate_s > j.runtime_s]
        return {
            "n_jobs": len(self.jobs),
            "n_users": len({j.user for j in self.jobs}),
            "mean_runtime_s": float(runtimes.mean()),
            "median_runtime_s": float(np.median(runtimes)),
            "mean_nodes": float(nodes.mean()),
            "max_nodes": int(nodes.max()),
            "overestimate_frac": len(over) / len(with_est) if with_est else 0.0,
            "span_days": self.span_s / 86_400.0,
        }


def write_swf(trace: JobTrace | t.Sequence[Job], path: str | Path, cores_per_node: int = 1) -> None:
    """Write jobs to an SWF file (user names become dense integer ids)."""
    jobs = list(trace)
    users = {name: i + 1 for i, name in enumerate(sorted({j.user for j in jobs}))}
    names = {name: i + 1 for i, name in enumerate(sorted({j.name for j in jobs}))}
    lines = [
        "; SWF trace written by repro (ESLURM reproduction)",
        f"; jobs: {len(jobs)}",
    ]
    for j in jobs:
        f = [-1] * _N_FIELDS
        f[_F_JOB_ID] = j.job_id
        f[_F_SUBMIT] = int(j.submit_time)
        f[_F_WAIT] = int(j.wait_time) if j.start_time is not None else -1
        f[_F_RUNTIME] = int(j.runtime_s)
        f[_F_PROCS] = j.n_nodes * cores_per_node
        f[_F_REQ_PROCS] = j.n_nodes * cores_per_node
        f[_F_REQ_TIME] = int(j.user_estimate_s) if j.user_estimate_s is not None else -1
        f[_F_USER] = users[j.user]
        f[12] = names[j.name]  # executable (application) number
        lines.append(" ".join(str(x) for x in f))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_swf(path: str | Path, cores_per_node: int = 1, name: str | None = None) -> JobTrace:
    """Read an SWF file into a :class:`JobTrace`.

    Jobs with non-positive runtimes (cancelled before start, per the SWF
    convention) are skipped.
    """
    path = Path(path)
    jobs: list[Job] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < _N_FIELDS:
            raise TraceFormatError(f"{path}:{lineno}: expected {_N_FIELDS} fields, got {len(parts)}")
        try:
            f = [float(x) for x in parts]
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: non-numeric field ({exc})") from None
        runtime = f[_F_RUNTIME]
        if runtime <= 0:
            continue
        procs = int(f[_F_REQ_PROCS]) if f[_F_REQ_PROCS] > 0 else int(f[_F_PROCS])
        n_nodes = max(1, procs // cores_per_node)
        req_time = f[_F_REQ_TIME]
        exe = int(f[12]) if f[12] > 0 else 0
        jobs.append(
            Job(
                job_id=int(f[_F_JOB_ID]),
                name=f"app{exe:04d}",
                user=f"user{int(f[_F_USER]) if f[_F_USER] > 0 else 0:04d}",
                n_nodes=n_nodes,
                runtime_s=runtime,
                user_estimate_s=req_time if req_time > 0 else None,
                submit_time=f[_F_SUBMIT],
            )
        )
    return JobTrace(jobs, name=name or path.stem)
