"""Workloads: synthetic generators calibrated to the paper's traces.

The paper's estimator results rest on measured properties of 200K+
production jobs (Table III, Fig. 5); no such trace ships with the paper,
so :mod:`repro.workload.synthetic` generates traces that reproduce every
statistic it reports:

* 80–90 % of user runtime estimates are overestimates (Fig. 5a);
* job-correlation ratio decays with submission interval, stabilising
  at ≈0.3 (Tianhe-2A) / ≈0 (NG-Tianhe) beyond ~30 h (Fig. 5b);
* correlation decays with job-ID gap, stabilising ≈0.08 past 700
  (Fig. 5c);
* 71.4 % of >6 h jobs are submitted between 18:00 and 24:00;
* a user resubmits a job from their last 24 h with ~89.2 % probability.

:mod:`repro.workload.analysis` recomputes those statistics from any
trace (ours or imported SWF), which is how ``bench_fig5`` closes the
loop.
"""

from repro.workload.analysis import (
    estimate_accuracy_values,
    job_correlation_by_id_gap,
    job_correlation_by_interval,
)
from repro.workload.synthetic import WorkloadConfig, generate_trace
from repro.workload.trace import JobTrace, read_swf, write_swf

__all__ = [
    "WorkloadConfig",
    "generate_trace",
    "JobTrace",
    "read_swf",
    "write_swf",
    "estimate_accuracy_values",
    "job_correlation_by_interval",
    "job_correlation_by_id_gap",
]
