"""Command-line entry point: experiments, benchmarks, chaos campaigns.

Installed as ``repro-eslurm`` (alias ``repro``)::

    repro --version
    repro list                      # paper experiments
    repro fig7 --quick
    repro all --quick -j 4          # experiment grid on 4 workers

    repro bench list                # perf-benchmark matrix + paper tiers
    repro bench run --all --seed 0
    repro bench run --all -j 4      # parallel sweep, byte-identical files
    repro bench sweep               # record benchmarks/BENCH_sweep.json scaling
    repro bench --profile           # cProfile the 16K-node paper scenario
    repro bench report BENCH_*.json --markdown
    repro bench validate BENCH_*.json
    repro bench baseline            # record benchmarks/BENCH_paper_scale.json
    repro bench compare             # fresh tiers vs the checked-in baseline

    repro chaos list                # invariant-checked failure campaigns
    repro chaos run failure-storm --seed 7 --json
    repro chaos run failure-storm flapping-node --seeds 3 -j 4

    repro verify --seed 42          # differential + metamorphic + golden oracles
    repro verify --seed 42 --seeds 5 -j 4
    repro verify run --update-golden
    repro verify list               # the relation catalogue
    repro bench check BENCH_*.json  # judge bench files against the relations

    repro simulate --rm slurm --n-nodes 4096 --json
    repro estimate --n-history 300 --job-nodes 8
    repro serve --port 8421 --workers 4   # the HTTP/JSON gateway
    repro bench serve-load          # record benchmarks/BENCH_serve.json

Every tool family is registered through the same :class:`Subcommand`
pattern and shares the ``--seed`` / ``--json`` / ``--out`` flags plus
the sweep-parallelism flag ``-j/--jobs`` via argparse *parent parsers*
(default 1 = the serial path, ``-j 0`` = cpu autodetect; sweeps fan out
over spawn-based workers via :mod:`repro.parallel` and merge results
keyed by task id, so output is byte-identical at any ``-j``).  New tool
families plug in by adding a table entry.

The subcommands are thin adapters over :func:`repro.api.dispatch`: each
builds a typed request envelope, dispatches it, and renders the typed
response — the same call path the :mod:`repro.serve` gateway queues.
Exit codes are documented on :func:`main` and shared with the
gateway's HTTP statuses; every checking verb exits 1 when a check
fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as t
from dataclasses import asdict, dataclass

from repro._version import __version__


# ---------------------------------------------------------------------------
# shared subcommand plumbing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Subcommand:
    """One verb of a tool family (``repro <family> <name> ...``).

    The shared flag sets every family spells identically — ``--seed`` /
    ``--json`` / ``--out`` and the sweep flag ``-j/--jobs`` — are not
    wired per subcommand; declaring ``common=True`` / ``jobs=True``
    attaches the corresponding parent parser in :func:`dispatch`, so
    the flags exist exactly once and cannot drift between families.
    """

    name: str
    help: str
    configure: t.Callable[[argparse.ArgumentParser], None]
    run: t.Callable[[argparse.Namespace], int]
    #: attach the --seed/--json/--out parent parser
    common: bool = False
    #: override the --out help string for this verb
    out_help: str | None = None
    #: attach the -j/--jobs parent parser
    jobs: bool = False


def common_parent(out_help: str | None = None) -> argparse.ArgumentParser:
    """The ``--seed/--json/--out`` flags as an argparse parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    parent.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parent.add_argument(
        "--out",
        default=None,
        help=out_help or "write output to this path instead of stdout",
    )
    return parent


def jobs_parent() -> argparse.ArgumentParser:
    """The sweep-parallelism flag ``-j/--jobs`` as a parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial; 0 = cpu autodetect)",
    )
    return parent


def dispatch(
    prog: str,
    description: str,
    commands: t.Sequence[Subcommand],
    argv: t.Sequence[str],
) -> int:
    """Parse ``argv`` against a family's subcommand table and run it."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    sub = parser.add_subparsers(dest="command", required=True)
    for command in commands:
        parents = []
        if command.common:
            parents.append(common_parent(command.out_help))
        if command.jobs:
            parents.append(jobs_parent())
        cmd_parser = sub.add_parser(command.name, help=command.help, parents=parents)
        command.configure(cmd_parser)
        cmd_parser.set_defaults(_run=command.run, _parser=cmd_parser)
    args = parser.parse_args(argv)
    return args._run(args)


def _emit(text: str, out: str | None) -> None:
    """Print ``text``, or write it to ``--out`` when given."""
    if out is None:
        print(text)
    else:
        with open(out, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")


# ---------------------------------------------------------------------------
# repro bench
# ---------------------------------------------------------------------------
def _bench_list(args: argparse.Namespace) -> int:
    from repro.bench import PAPER_SCALE, SCENARIOS

    for group in (SCENARIOS, PAPER_SCALE):
        for scenario in group.values():
            flags = "failures" if scenario.failures else "-"
            print(
                f"{scenario.name:<24} rm={scenario.rm:<7} nodes={scenario.n_nodes:<6} "
                f"satellites={scenario.n_satellites:<3} jobs={scenario.n_jobs:<6} {flags}"
            )
    return 0


def _bench_run_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("names", nargs="*", help="scenario names (see 'repro bench list')")
    parser.add_argument("--all", action="store_true", help="run the whole matrix")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions "
        "(defaults to the 16K-node paper-scale scenario; skips file output)",
    )


def _bench_run(args: argparse.Namespace) -> int:
    from repro.bench import PAPER_FULL_SCENARIO, profile_bench

    if args.profile:
        if args.all:
            args._parser.error("--profile runs named scenarios, not the whole matrix")
        names = args.names or [PAPER_FULL_SCENARIO]
        for name in names:
            try:
                result, report = profile_bench(name, seed=args.seed)
            except Exception as exc:
                args._parser.error(str(exc))
            print(
                f"{name}: {result.payload['events']} events, "
                f"host {result.host_wall_s:.2f}s under the profiler "
                "(several times slower than a plain run)"
            )
            print(report)
        return 0
    if args.all == bool(args.names):
        args._parser.error("pass scenario names or --all (not both)")
    from repro.bench import run_matrix_sweep

    names = None if args.all else args.names
    out_dir = args.out if args.out is not None else "."
    try:
        sweep = run_matrix_sweep(
            names=names,
            seed=args.seed,
            out_dir=out_dir,
            progress=None if args.json else print,
            jobs=args.jobs,
        )
    except Exception as exc:
        args._parser.error(str(exc))
    if args.json:
        print(json.dumps([r.payload for r in sweep.results], sort_keys=True, indent=2))
    for failure in sweep.failures:
        print(
            f"bench cell {failure.task_id} FAILED after {failure.attempts} attempt(s): "
            f"{(failure.error or 'unknown').splitlines()[-1]}",
            file=sys.stderr,
        )
    return 0 if sweep.ok else 1


def _bench_baseline_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "names",
        nargs="*",
        help="paper-scale tiers to record (default: all three)",
    )


def _bench_baseline(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        BASELINE_PATH,
        PAPER_SCALE,
        build_baseline,
        dump_baseline,
        run_bench,
    )

    names = args.names or list(PAPER_SCALE)
    results = []
    for name in names:
        if name not in PAPER_SCALE:
            args._parser.error(f"{name!r} is not a paper-scale tier ({sorted(PAPER_SCALE)})")
        result = run_bench(name, seed=args.seed)
        print(
            f"{name:<14} {result.payload['events']:>9} events  "
            f"host {result.host_wall_s:7.2f}s"
        )
        results.append(result)
    baseline = build_baseline(results)
    text = dump_baseline(baseline)
    if args.json:
        print(text, end="")
    path = Path(args.out if args.out is not None else BASELINE_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"baseline written -> {path}")
    return 0


def _bench_compare_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline file (default: benchmarks/BENCH_paper_scale.json)",
    )
    parser.add_argument(
        "--names",
        action="append",
        default=None,
        help="tier to compare (repeatable; default: every tier in the file)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="wall-time regression allowance as a fraction (default 0.25)",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        default=None,
        help="wall-fence attempts per tier — a first run over the fence is "
        "re-run and judged on the best wall (default 3; 1 = single run)",
    )


def _bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        BASELINE_PATH,
        DEFAULT_BEST_OF,
        DEFAULT_TOLERANCE,
        compare_baseline,
        load_baseline,
    )

    path = args.baseline if args.baseline is not None else BASELINE_PATH
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    best_of = args.best_of if args.best_of is not None else DEFAULT_BEST_OF
    try:
        baseline = load_baseline(path)
        comparisons = compare_baseline(
            baseline,
            names=args.names,
            tolerance=tolerance,
            progress=None if args.json else print,
            best_of=best_of,
        )
    except Exception as exc:
        args._parser.error(str(exc))
    failed = sum(1 for c in comparisons if not c.ok)
    if args.json:
        payload = [
            {
                "name": c.name,
                "ok": c.ok,
                "baseline_wall_s": c.baseline_wall_s,
                "fresh_wall_s": c.fresh_wall_s,
                "notes": c.notes,
            }
            for c in comparisons
        ]
        _emit(json.dumps(payload, sort_keys=True, indent=2), args.out)
    else:
        print(
            f"bench compare: {'FAIL' if failed else 'OK'} — "
            f"{len(comparisons) - failed}/{len(comparisons)} tiers within "
            f"±{tolerance:.0%} of {path}"
        )
    return 1 if failed else 0


def _bench_sweep_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "names",
        nargs="*",
        help="scenario subset to sweep (default: the whole 12-scenario matrix)",
    )
    parser.add_argument(
        "--jobs-levels",
        default="1,2,4",
        help="comma-separated jobs levels for the scaling table (default 1,2,4; "
        "the serial level 1 is always included as the baseline)",
    )


def _bench_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import SWEEP_PATH, dump_sweep, render_sweep, run_sweep_baseline

    try:
        levels = [int(part) for part in str(args.jobs_levels).split(",") if part.strip()]
        payload = run_sweep_baseline(
            jobs_levels=levels,
            names=args.names or None,
            seed=args.seed,
            progress=None if args.json else print,
        )
    except Exception as exc:
        args._parser.error(str(exc))
    text = dump_sweep(payload)
    if args.json:
        print(text, end="")
    else:
        print(render_sweep(payload))
    path = Path(args.out if args.out is not None else SWEEP_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"sweep scaling written -> {path}")
    return 0


def _bench_whatif_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rm", default="eslurm", help="RM profile (default eslurm)")
    parser.add_argument(
        "--n-nodes", type=int, default=1024,
        help="compute nodes (default 1024, the paper tier)",
    )
    parser.add_argument("--n-jobs", type=int, default=500, help="jobs (default 500)")
    parser.add_argument(
        "--horizon-s", type=float, default=86_400.0, help="simulated span (default 1 day)"
    )
    parser.add_argument(
        "--cuts", default="0.25,0.5,0.75",
        help="comma-separated snapshot cuts as day fractions (default 0.25,0.5,0.75)",
    )


def _bench_whatif(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import WHATIF_PATH, dump_whatif, render_whatif, run_whatif_bench

    try:
        cuts = [float(part) for part in str(args.cuts).split(",") if part.strip()]
        payload = run_whatif_bench(
            seed=args.seed,
            rm=args.rm,
            n_nodes=args.n_nodes,
            n_jobs=args.n_jobs,
            horizon_s=args.horizon_s,
            cuts=cuts,
            progress=None if args.json else print,
        )
    except Exception as exc:
        args._parser.error(str(exc))
    text = dump_whatif(payload)
    if args.json:
        print(text, end="")
    else:
        print(render_whatif(payload))
    path = Path(args.out if args.out is not None else WHATIF_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"what-if cost file written -> {path}")
    return 0 if payload["whatif_cheaper_than_rerun"] else 1


def _bench_files_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")


def _bench_report_configure(parser: argparse.ArgumentParser) -> None:
    _bench_files_configure(parser)
    parser.add_argument("--markdown", action="store_true", help="render a markdown table")


def _bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_file, render_markdown, render_text

    try:
        payloads = [load_bench_file(path) for path in args.files]
    except Exception as exc:
        args._parser.error(str(exc))
    if args.json:
        _emit(json.dumps(payloads, sort_keys=True, indent=2), args.out)
    elif args.markdown:
        _emit(render_markdown(payloads), args.out)
    else:
        _emit(render_text(payloads), args.out)
    return 0


def _bench_validate(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_file

    status = 0
    for path in args.files:
        try:
            load_bench_file(path)
        except Exception as exc:
            print(f"{path}: INVALID — {exc}")
            status = 1
        else:
            print(f"{path}: ok")
    return status


def _bench_check(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_file
    from repro.oracle.relations import check_bench_payloads

    try:
        payloads = [load_bench_file(path) for path in args.files]
    except Exception as exc:
        args._parser.error(str(exc))
    results = check_bench_payloads(payloads)
    for result in results:
        print(result.line())
    failed = sum(1 for r in results if not r.ok)
    print(f"bench check: {'FAIL' if failed else 'OK'} — {len(results) - failed}/{len(results)} held")
    return 1 if failed else 0


def _bench_serve_load_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--requests",
        type=int,
        default=8,
        help="unique requests in the mix (each is sent twice: miss then "
        "replay; default 8)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4,
        help="simultaneous HTTP clients (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="gateway pool workers (default 2; 0 = inline)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="gateway admission-queue bound (default 64)",
    )


def _bench_serve_load(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve import SERVE_PATH, dump_serve, render_serve, run_serve_load

    try:
        payload = run_serve_load(
            seed=args.seed,
            n_unique=args.requests,
            concurrency=args.concurrency,
            workers=args.workers,
            queue_size=args.queue_size,
            progress=None if args.json else print,
        )
    except Exception as exc:
        args._parser.error(str(exc))
    text = dump_serve(payload)
    if args.json:
        print(text, end="")
    path = Path(args.out if args.out is not None else SERVE_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"serve load-test written -> {path}")
    return 0 if payload["replay_byte_identical"] and not payload["failed"] else 1


BENCH_COMMANDS = (
    Subcommand("list", "enumerate the scenario matrix", lambda p: None, _bench_list),
    Subcommand(
        "run", "execute scenarios and write BENCH_*.json", _bench_run_configure,
        _bench_run, common=True,
        out_help="directory for BENCH_*.json files (default: cwd)", jobs=True,
    ),
    Subcommand(
        "report", "render bench files as a table", _bench_report_configure,
        _bench_report, common=True,
    ),
    Subcommand("validate", "schema-check bench files", _bench_files_configure, _bench_validate),
    Subcommand(
        "check", "judge bench files against the paper-shaped relations",
        _bench_files_configure, _bench_check,
    ),
    Subcommand(
        "baseline", "record the paper-scale wall-time baseline file",
        _bench_baseline_configure, _bench_baseline, common=True,
        out_help="baseline file path (default: benchmarks/BENCH_paper_scale.json)",
    ),
    Subcommand(
        "compare", "re-run paper-scale tiers against the checked-in baseline",
        _bench_compare_configure, _bench_compare, common=True,
    ),
    Subcommand(
        "sweep", "record the matrix sweep-scaling file (jobs=1/2/4 walls + digests)",
        _bench_sweep_configure, _bench_sweep, common=True,
        out_help="sweep file path (default: benchmarks/BENCH_sweep.json)",
    ),
    Subcommand(
        "whatif", "record the what-if delta-replay cost file (full run vs snapshot resume)",
        _bench_whatif_configure, _bench_whatif, common=True,
        out_help="what-if cost file path (default: benchmarks/BENCH_whatif.json)",
    ),
    Subcommand(
        "serve-load", "load-test the gateway and record benchmarks/BENCH_serve.json",
        _bench_serve_load_configure, _bench_serve_load, common=True,
        out_help="serve file path (default: benchmarks/BENCH_serve.json)",
    ),
)


# ---------------------------------------------------------------------------
# repro chaos
# ---------------------------------------------------------------------------
def _chaos_list(args: argparse.Namespace) -> int:
    from repro.chaos import SCENARIOS

    for scenario in SCENARIOS.values():
        print(f"{scenario.name:<26} {scenario.description}")
    return 0


def _chaos_run_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenarios", nargs="+", metavar="scenario",
        help="scenario name(s) (see 'repro chaos list'); several names plus "
        "--seeds form a campaign grid",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="run each scenario at this many consecutive seeds starting at "
        "--seed (default 1)",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="on violation, ddmin-minimise the fault schedule and print it "
        "(single scenario/seed runs only)",
    )


def _chaos_run(args: argparse.Namespace) -> int:
    from repro.chaos import get_scenario, run_campaign, shrink_schedule

    try:
        for name in args.scenarios:
            get_scenario(name)
    except Exception as exc:
        args._parser.error(str(exc))
    if args.seeds < 1:
        args._parser.error("--seeds must be >= 1")
    multi = len(args.scenarios) > 1 or args.seeds > 1
    if multi:
        if args.shrink:
            args._parser.error("--shrink applies to a single scenario/seed run")
        outcome = run_campaign(
            args.scenarios,
            seeds=range(args.seed, args.seed + args.seeds),
            jobs=args.jobs,
            progress=None if args.json or args.out else print,
        )
        if args.json:
            _emit(json.dumps(outcome.to_payload(), sort_keys=True, indent=2), args.out)
        else:
            _emit(outcome.to_text(), args.out)
        return 0 if outcome.ok else 1
    # single run: a thin adapter over the typed envelope — the report
    # object is the same one run_scenario returns, so output is
    # byte-identical to the pre-envelope CLI
    from repro.api import ChaosRequest
    from repro.api import dispatch as api_dispatch

    response = api_dispatch(ChaosRequest(scenario=args.scenarios[0], seed=args.seed))
    report = response.report
    if args.json:
        _emit(json.dumps(asdict(report), sort_keys=True, indent=2), args.out)
    else:
        _emit(report.to_text(), args.out)
    if report.ok:
        return 0
    if args.shrink:
        scenario = get_scenario(args.scenarios[0])
        minimal = shrink_schedule(scenario, seed=args.seed, schedule=report.schedule)
        print()
        print(f"minimal failing schedule ({len(minimal)} of {len(report.schedule)} faults):")
        for fault in minimal:
            print(
                f"  t={fault.at:12.3f}  {fault.kind:<12} "
                f"dur={fault.duration:10.3f}  nodes={list(fault.node_ids)}"
            )
    return 1


CHAOS_COMMANDS = (
    Subcommand("list", "enumerate the scenario catalogue", lambda p: None, _chaos_list),
    Subcommand(
        "run", "execute one scenario and report violations", _chaos_run_configure,
        _chaos_run, common=True, jobs=True,
    ),
)


# ---------------------------------------------------------------------------
# repro verify
# ---------------------------------------------------------------------------
def _verify_list(args: argparse.Namespace) -> int:
    from repro.oracle import GOLDEN_SCENARIOS, relations_table

    print(f"{'relation':<26} {'layer':<13} {'paper':<28} claim")
    for relation in relations_table():
        print(f"{relation.name:<26} {relation.layer:<13} {relation.section:<28} {relation.claim}")
    for scenario in GOLDEN_SCENARIOS:
        print(
            f"{'golden/' + scenario.name:<26} {'golden':<13} {'VI':<28} "
            f"frozen {scenario.rm} trace, seed {scenario.seed}"
        )
    return 0


def _verify_run_configure(parser: argparse.ArgumentParser) -> None:
    from repro.oracle.verify import LAYERS

    parser.add_argument(
        "--layer",
        action="append",
        choices=LAYERS,
        default=None,
        help="run only this layer (repeatable; default: all)",
    )
    parser.add_argument(
        "--relation",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this named relation (repeatable; see 'repro verify list'; "
        "skips the golden layer)",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the frozen golden traces before comparing",
    )
    parser.add_argument(
        "--golden-dir", default=None, help="golden trace directory (default: tests/golden)"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="sweep this many consecutive seeds starting at --seed (default 1)",
    )


def _verify_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.oracle.verify import LAYERS, run_verify, run_verify_sweep

    if args.seeds < 1:
        args._parser.error("--seeds must be >= 1")
    layers = tuple(args.layer) if args.layer else LAYERS
    golden_dir = Path(args.golden_dir) if args.golden_dir else None
    if args.relation and args.update_golden:
        args._parser.error("--relation skips the golden layer; drop --update-golden")
    if args.seeds > 1 or args.jobs != 1:
        if args.update_golden:
            args._parser.error(
                "--update-golden rewrites shared files and must run serially "
                "(drop --seeds/-j)"
            )
        try:
            sweep = run_verify_sweep(
                seeds=range(args.seed, args.seed + args.seeds),
                layers=layers,
                golden_dir=golden_dir,
                jobs=args.jobs,
                progress=None if args.json or args.out else print,
                relations=args.relation,
            )
        except ValueError as exc:
            args._parser.error(str(exc))
        if args.json:
            _emit(json.dumps(sweep.to_payload(), sort_keys=True, indent=2), args.out)
        elif args.out:
            _emit(sweep.to_text(), args.out)
        else:
            held = sum(len(r.results) - r.n_failed for r in sweep.reports)
            total = sum(len(r.results) for r in sweep.reports)
            print(
                f"verify sweep: {'OK' if sweep.ok else 'FAIL'} — {held}/{total} "
                f"relations held over {args.seeds} seed(s)"
            )
        return 0 if sweep.ok else 1
    from repro.errors import ConfigurationError

    progress = None if args.json or args.out else print
    try:
        if golden_dir is None and not args.update_golden:
            # the typed-envelope path: same run_verify underneath, same
            # report object, byte-identical output
            from repro.api import VerifyRequest
            from repro.api import dispatch as api_dispatch

            request = VerifyRequest(
                seed=args.seed,
                layers=layers,
                relations=tuple(args.relation) if args.relation else None,
            )
            report = api_dispatch(request, progress=progress).report
        else:
            # golden-dir overrides and --update-golden are operator
            # knobs, not servable request fields — they stay on the
            # direct library call
            report = run_verify(
                seed=args.seed,
                layers=layers,
                golden_dir=golden_dir,
                update_golden=args.update_golden,
                progress=progress,
                relations=args.relation,
            )
    except (ValueError, ConfigurationError) as exc:
        args._parser.error(str(exc))
    if args.json:
        _emit(json.dumps(report.to_payload(), sort_keys=True, indent=2), args.out)
    elif args.out:
        _emit(report.to_text(), args.out)
    else:
        failed = report.n_failed
        print(
            f"verify: {'FAIL' if failed else 'OK'} — "
            f"{len(report.results) - failed}/{len(report.results)} relations held"
        )
    return 0 if report.ok else 1


VERIFY_COMMANDS = (
    Subcommand("list", "enumerate every relation and golden scenario", lambda p: None, _verify_list),
    Subcommand(
        "run", "run the differential/metamorphic/golden oracles", _verify_run_configure,
        _verify_run, common=True, jobs=True,
    ),
)

# ---------------------------------------------------------------------------
# repro simulate
# ---------------------------------------------------------------------------
def _simulate_run_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rm", default="eslurm", help="RM profile (default eslurm)")
    parser.add_argument("--n-nodes", type=int, default=1024, help="compute nodes (default 1024)")
    parser.add_argument("--n-satellites", type=int, default=2, help="satellites (default 2)")
    parser.add_argument("--n-jobs", type=int, default=500, help="jobs over the horizon (default 500)")
    parser.add_argument(
        "--horizon-s", type=float, default=86_400.0, help="simulated span (default 1 day)"
    )
    parser.add_argument("--failures", action="store_true", help="enable the failure injector")
    parser.add_argument(
        "--placement", default="first-fit", help="placement policy (first-fit | topology)"
    )
    parser.add_argument(
        "--malleable", action="store_true", help="enable the elastic-job protocol"
    )


def _simulate_run(args: argparse.Namespace) -> int:
    from repro.api import SimulateRequest
    from repro.api import dispatch as api_dispatch
    from repro.errors import ConfigurationError

    try:
        request = SimulateRequest(
            rm=args.rm,
            n_nodes=args.n_nodes,
            n_satellites=args.n_satellites,
            seed=args.seed,
            failures=args.failures,
            n_jobs=args.n_jobs,
            horizon_s=args.horizon_s,
            placement=args.placement,
            malleable=args.malleable,
        )
    except ConfigurationError as exc:
        args._parser.error(str(exc))
    response = api_dispatch(request, progress=None if args.json or args.out else print)
    if args.json:
        _emit(json.dumps(response.to_wire(), sort_keys=True, indent=2), args.out)
    else:
        result = response.result()
        _emit(
            response.simulation.report.summary()
            + f"\n  events={result['events']} sim_time={result['sim_time_s']:.0f}s"
            + f"\n  digest={request.digest()}",
            args.out,
        )
    return 0


SIMULATE_COMMANDS = (
    Subcommand(
        "run", "run one simulated RM day from a typed request",
        _simulate_run_configure, _simulate_run, common=True,
    ),
)


# ---------------------------------------------------------------------------
# repro estimate
# ---------------------------------------------------------------------------
def _estimate_run_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-history", type=int, default=300,
        help="completed jobs to train on (default 300)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=64, help="history job-size ceiling (default 64)"
    )
    parser.add_argument(
        "--job-nodes", type=int, default=8, help="queried job's width (default 8)"
    )
    parser.add_argument(
        "--user-estimate-s", type=float, default=None,
        help="user wall request for the queried job (default: none)",
    )
    parser.add_argument(
        "--app", default=None,
        help="job-script name to query (default: most recent in the history)",
    )
    parser.add_argument(
        "--k-clusters", type=int, default=12, help="estimator clusters (default 12)"
    )


def _estimate_run(args: argparse.Namespace) -> int:
    from repro.api import EstimateRequest
    from repro.api import dispatch as api_dispatch
    from repro.errors import ConfigurationError

    try:
        request = EstimateRequest(
            seed=args.seed,
            n_history=args.n_history,
            max_nodes=args.max_nodes,
            job_nodes=args.job_nodes,
            user_estimate_s=args.user_estimate_s,
            app=args.app,
            k_clusters=args.k_clusters,
        )
    except ConfigurationError as exc:
        args._parser.error(str(exc))
    response = api_dispatch(request, progress=None if args.json or args.out else print)
    if args.json:
        _emit(json.dumps(response.to_wire(), sort_keys=True, indent=2), args.out)
    else:
        value = (
            f"{response.estimate_s:.0f}s" if response.estimate_s is not None else "none"
        )
        model = (
            f"{response.model_estimate_s:.0f}s"
            if response.model_estimate_s is not None
            else "none"
        )
        _emit(
            f"estimate: {value} (source {response.source}) for "
            f"{response.app!r} x {request.job_nodes} nodes\n"
            f"  model {model}, aea {response.aea:.3f}, "
            f"{response.trainings} training generation(s)",
            args.out,
        )
    return 0


ESTIMATE_COMMANDS = (
    Subcommand(
        "run", "train the paper's estimator on synthetic history and query it",
        _estimate_run_configure, _estimate_run, common=True,
    ),
)


# ---------------------------------------------------------------------------
# repro whatif
# ---------------------------------------------------------------------------
def _whatif_run_configure(parser: argparse.ArgumentParser) -> None:
    _simulate_run_configure(parser)  # the base day is a simulate request
    parser.add_argument(
        "--at-s", type=float, default=43_200.0,
        help="simulated seconds into the day to snapshot at (default 43200)",
    )
    parser.add_argument(
        "--perturb", default="submit-job",
        help="perturbation kind (submit-job | fail-node | cancel-job)",
    )
    parser.add_argument(
        "--job-nodes", type=int, default=8,
        help="[submit-job] probe job width (default 8)",
    )
    parser.add_argument(
        "--job-runtime-s", type=float, default=3600.0,
        help="[submit-job] probe job runtime (default 3600)",
    )
    parser.add_argument(
        "--job-limit-s", type=float, default=None,
        help="[submit-job] probe job wall request (default: none)",
    )
    parser.add_argument(
        "--node-id", type=int, default=0, help="[fail-node] node to fail (default 0)"
    )
    parser.add_argument(
        "--duration-s", type=float, default=3600.0,
        help="[fail-node] outage length (default 3600)",
    )
    parser.add_argument(
        "--job-id", type=int, default=0, help="[cancel-job] job to cancel (default 0)"
    )


def _whatif_perturb_wire(args: argparse.Namespace) -> dict:
    """Only the flags that belong to the chosen kind enter the wire dict,
    so unrelated defaults never pollute the request digest."""
    if args.perturb == "submit-job":
        return {
            "kind": "submit-job",
            "job_nodes": args.job_nodes,
            "job_runtime_s": args.job_runtime_s,
            "job_limit_s": args.job_limit_s,
        }
    if args.perturb == "fail-node":
        return {"kind": "fail-node", "node_id": args.node_id, "duration_s": args.duration_s}
    if args.perturb == "cancel-job":
        return {"kind": "cancel-job", "job_id": args.job_id}
    # Unknown kinds fall through so perturbation_from_wire reports the
    # valid choices in one place.
    return {"kind": args.perturb}


def _whatif_run(args: argparse.Namespace) -> int:
    from repro.api import WhatIfRequest
    from repro.api import dispatch as api_dispatch
    from repro.errors import ConfigurationError

    try:
        request = WhatIfRequest(
            rm=args.rm,
            n_nodes=args.n_nodes,
            n_satellites=args.n_satellites,
            seed=args.seed,
            failures=args.failures,
            n_jobs=args.n_jobs,
            horizon_s=args.horizon_s,
            placement=args.placement,
            malleable=args.malleable,
            at_s=args.at_s,
            perturb=_whatif_perturb_wire(args),
        )
    except ConfigurationError as exc:
        args._parser.error(str(exc))
    response = api_dispatch(request, progress=None if args.json or args.out else print)
    if args.json:
        _emit(json.dumps(response.to_wire(), sort_keys=True, indent=2), args.out)
    else:
        result = response.result()
        probe = json.dumps(result["probe"], sort_keys=True)
        saved = result["events_at_snapshot"]
        total = result["events_total"]
        _emit(
            f"what-if {args.perturb} at t={request.at_s:g}s "
            f"({args.rm}, {args.n_nodes} nodes, seed {args.seed})\n"
            f"  probe: {probe}\n"
            f"  delta-replay: {result['events_resumed']} of {total} events "
            f"({saved} reused, {saved / total:.0%} of the day skipped)\n"
            f"  digest={request.digest()}",
            args.out,
        )
    return 0


WHATIF_COMMANDS = (
    Subcommand(
        "run", "snapshot a simulated day and delta-replay one perturbation",
        _whatif_run_configure, _whatif_run, common=True,
    ),
)


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------
def _serve_run_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8421, help="bind port (default 8421; 0 = pick free)"
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="pool workers (default 0 = inline, streams progress; "
        ">=1 = persistent warm pool)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=32,
        help="admission queue bound; full queue sheds with HTTP 429 (default 32)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity in entries (default 256)",
    )


def _serve_run(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import GatewayConfig, run_gateway

    config = GatewayConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_size=args.cache_size,
    )
    try:
        asyncio.run(run_gateway(config))
    except KeyboardInterrupt:
        pass
    return 0


SERVE_COMMANDS = (
    Subcommand(
        "run", "start the simulation gateway (HTTP/JSON, POST /v1/<kind>)",
        _serve_run_configure, _serve_run,
    ),
)

#: tool families reachable as ``repro <family> ...``
FAMILIES: dict[str, tuple[str, tuple[Subcommand, ...]]] = {
    "bench": ("Run the fixed perf-benchmark scenario matrix.", BENCH_COMMANDS),
    "chaos": ("Run a chaos campaign with simulation-wide invariant checking.", CHAOS_COMMANDS),
    "verify": ("Run the correctness oracles against the current tree.", VERIFY_COMMANDS),
    "simulate": ("Run one simulated RM day from a typed request envelope.", SIMULATE_COMMANDS),
    "estimate": ("Query the runtime estimator as a service.", ESTIMATE_COMMANDS),
    "whatif": ("Snapshot a simulated day and delta-replay perturbations.", WHATIF_COMMANDS),
    "serve": ("Run the HTTP/JSON simulation gateway.", SERVE_COMMANDS),
}

#: families where a bare ``repro <family> [flags]`` implies this verb
#: (``repro bench --profile`` is the profiling entry point the perf
#: workflow documents)
DEFAULT_VERBS: dict[str, str] = {
    "verify": "run",
    "bench": "run",
    "simulate": "run",
    "estimate": "run",
    "whatif": "run",
    "serve": "run",
}


# ---------------------------------------------------------------------------
# paper experiments (the original verb set)
# ---------------------------------------------------------------------------
def _fig5(quick: bool) -> str:
    from repro.experiments.fig5 import render_fig5, run_fig5

    return render_fig5(run_fig5(n_jobs=8_000 if quick else 40_000))


def _fig7(quick: bool) -> str:
    from repro.experiments.fig7 import render_fig7, run_fig7

    return render_fig7(
        run_fig7(n_nodes=1024 if quick else 4096, n_jobs=300 if quick else 1000,
                 job_sizes=(64, 256, 1024) if quick else (64, 256, 1024, 4096))
    )


def _fig8(quick: bool) -> str:
    from repro.experiments.fig8 import render_fig8, run_fig8a, run_fig8b

    n = 2048 if quick else 4096
    return render_fig8(run_fig8a(n_nodes=n), run_fig8b(n_nodes=n))


def _fig9(quick: bool) -> str:
    from repro.experiments.fig9 import render_fig9, run_fig9

    return render_fig9(run_fig9(n_nodes=4096 if quick else 16_384,
                                n_jobs=400 if quick else 1500))


def _fig10(quick: bool) -> str:
    from repro.experiments.fig10 import render_fig10, run_fig10

    return render_fig10(
        run_fig10(scale=0.125 if quick else 1.0, horizon_days=2.0 if quick else 7.0,
                  with_attribution=True)
    )


def _fig11(quick: bool) -> str:
    from repro.experiments.fig11 import render_fig11, run_fig11a, run_fig11b

    a = run_fig11a(n_nodes=5120 if quick else 20_480,
                   counts=(2, 5, 10, 20, 30) if quick else (5, 10, 20, 30, 40, 50))
    b = run_fig11b(n_jobs=2500 if quick else 4000, fast=quick)
    return render_fig11(a, b)


def _table5(quick: bool) -> str:
    from repro.experiments.tables import render_table5_table6, run_table5_table6

    return render_table5_table6(
        run_table5_table6(n_nodes=5120 if quick else 20_480,
                          setups=(4, 8, 12, 16, 20) if quick else (10, 20, 30, 40, 50),
                          n_jobs=300 if quick else 800)
    )


def _table8(quick: bool) -> str:
    from repro.experiments.tables import render_table8, run_table8

    return render_table8(run_table8(n_jobs=2000 if quick else 4000))


def _placement(quick: bool) -> str:
    from repro.experiments.placement import render_placement, run_placement

    return render_placement(
        run_placement(n_nodes=2048 if quick else 4096,
                      constructions_per_day=24 if quick else 60)
    )


def _motivation(quick: bool) -> str:
    from repro.experiments.motivation import render_motivation, run_motivation

    n = 8192 if quick else 20_480
    days = 1.0 if quick else 2.0
    return render_motivation(
        [run_motivation("slurm", n_nodes=n, days=days),
         run_motivation("eslurm", n_nodes=n, days=days)]
    )


EXPERIMENTS: dict[str, t.Callable[[bool], str]] = {
    "fig5": _fig5,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "table5": _table5,
    "table8": _table8,
    "placement": _placement,
    "motivation": _motivation,
}


def main(argv: t.Sequence[str] | None = None) -> int:
    """The ``repro`` entry point; returns a documented exit code.

    Exit codes (the gateway returns the paired HTTP status — see
    :mod:`repro.errors`):

    * ``0`` — success (HTTP 200)
    * ``1`` — a check ran and failed (HTTP 200 with ``"ok": false``)
    * ``2`` — malformed command line (argparse usage error)
    * ``3`` — invalid configuration / parameters (HTTP 400)
    * ``4`` — internal error (HTTP 500)
    * ``5`` — reserved for gateway load shedding (HTTP 429)
    """
    import traceback

    from repro.errors import (
        EXIT_CONFIG,
        EXIT_INTERNAL,
        ConfigurationError,
        ReproError,
    )

    try:
        return _main(argv)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except ReproError as exc:
        print(f"internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL


def _main(argv: t.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in FAMILIES:
        description, commands = FAMILIES[argv[0]]
        rest = argv[1:]
        default_verb = DEFAULT_VERBS.get(argv[0])
        implies_default = not rest or (
            rest[0].startswith("-") and rest[0] not in ("-h", "--help")
        )
        if default_verb is not None and implies_default:
            rest = [default_verb, *rest]
        return dispatch(f"repro {argv[0]}", description, commands, rest)
    parser = argparse.ArgumentParser(
        prog="repro-eslurm",
        description="Regenerate the tables and figures of the ESLURM paper (SC'22).",
        parents=[jobs_parent()],
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down cluster sizes (seconds instead of hours)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    from repro.parallel.pool import Task, TaskResult, run_tasks

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tasks = [
        Task(id=name, kind="experiment", spec={"name": name, "quick": args.quick})
        for name in names
    ]

    def print_block(outcome: TaskResult) -> None:
        print(f"==== {outcome.task_id} ====")
        if outcome.ok:
            print(outcome.value["text"])
        else:
            print(f"FAILED after {outcome.attempts} attempt(s):")
            print(outcome.error)
        print()

    # Serial runs stream each experiment as it finishes (inline execution
    # preserves order); parallel runs buffer and re-emit in catalogue
    # order so the merged output is byte-identical to the serial one.
    streaming = args.jobs == 1
    outcomes = run_tasks(
        tasks, jobs=args.jobs, progress=print_block if streaming else None
    )
    if not streaming:
        for outcome in outcomes:
            print_block(outcome)
    return 1 if any(not o.ok for o in outcomes) else 0


if __name__ == "__main__":
    sys.exit(main())
