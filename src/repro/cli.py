"""Command-line entry point: regenerate any paper experiment.

Installed as ``repro-eslurm`` (alias ``repro``)::

    repro-eslurm list
    repro-eslurm fig7 --quick
    repro-eslurm fig10
    repro-eslurm all --quick

plus the chaos campaign runner::

    repro chaos list
    repro chaos run failure-storm --seed 7
    repro chaos run flapping-node --seed 3 --shrink
"""

from __future__ import annotations

import argparse
import sys
import typing as t


def _fig5(quick: bool) -> str:
    from repro.experiments.fig5 import render_fig5, run_fig5

    return render_fig5(run_fig5(n_jobs=8_000 if quick else 40_000))


def _fig7(quick: bool) -> str:
    from repro.experiments.fig7 import render_fig7, run_fig7

    return render_fig7(
        run_fig7(n_nodes=1024 if quick else 4096, n_jobs=300 if quick else 1000,
                 job_sizes=(64, 256, 1024) if quick else (64, 256, 1024, 4096))
    )


def _fig8(quick: bool) -> str:
    from repro.experiments.fig8 import render_fig8, run_fig8a, run_fig8b

    n = 2048 if quick else 4096
    return render_fig8(run_fig8a(n_nodes=n), run_fig8b(n_nodes=n))


def _fig9(quick: bool) -> str:
    from repro.experiments.fig9 import render_fig9, run_fig9

    return render_fig9(run_fig9(n_nodes=4096 if quick else 16_384,
                                n_jobs=400 if quick else 1500))


def _fig10(quick: bool) -> str:
    from repro.experiments.fig10 import render_fig10, run_fig10

    return render_fig10(
        run_fig10(scale=0.125 if quick else 1.0, horizon_days=2.0 if quick else 7.0,
                  with_attribution=True)
    )


def _fig11(quick: bool) -> str:
    from repro.experiments.fig11 import render_fig11, run_fig11a, run_fig11b

    a = run_fig11a(n_nodes=5120 if quick else 20_480,
                   counts=(2, 5, 10, 20, 30) if quick else (5, 10, 20, 30, 40, 50))
    b = run_fig11b(n_jobs=2500 if quick else 4000, fast=quick)
    return render_fig11(a, b)


def _table5(quick: bool) -> str:
    from repro.experiments.tables import render_table5_table6, run_table5_table6

    return render_table5_table6(
        run_table5_table6(n_nodes=5120 if quick else 20_480,
                          setups=(4, 8, 12, 16, 20) if quick else (10, 20, 30, 40, 50),
                          n_jobs=300 if quick else 800)
    )


def _table8(quick: bool) -> str:
    from repro.experiments.tables import render_table8, run_table8

    return render_table8(run_table8(n_jobs=2000 if quick else 4000))


def _placement(quick: bool) -> str:
    from repro.experiments.placement import render_placement, run_placement

    return render_placement(
        run_placement(n_nodes=2048 if quick else 4096,
                      constructions_per_day=24 if quick else 60)
    )


def _motivation(quick: bool) -> str:
    from repro.experiments.motivation import render_motivation, run_motivation

    n = 8192 if quick else 20_480
    days = 1.0 if quick else 2.0
    return render_motivation(
        [run_motivation("slurm", n_nodes=n, days=days),
         run_motivation("eslurm", n_nodes=n, days=days)]
    )


EXPERIMENTS: dict[str, t.Callable[[bool], str]] = {
    "fig5": _fig5,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "table5": _table5,
    "table8": _table8,
    "placement": _placement,
    "motivation": _motivation,
}


def _chaos_main(argv: t.Sequence[str]) -> int:
    """``repro chaos ...``: run invariant-checked failure campaigns."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run a chaos campaign with simulation-wide invariant checking.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="enumerate the scenario catalogue")
    run = sub.add_parser("run", help="execute one scenario and report violations")
    run.add_argument("scenario", help="scenario name (see 'repro chaos list')")
    run.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    run.add_argument(
        "--shrink",
        action="store_true",
        help="on violation, ddmin-minimise the fault schedule and print it",
    )
    args = parser.parse_args(argv)

    from repro.chaos import SCENARIOS, get_scenario, run_scenario, shrink_schedule

    if args.command == "list":
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:<26} {scenario.description}")
        return 0

    try:
        scenario = get_scenario(args.scenario)
    except Exception as exc:
        parser.error(str(exc))
    report = run_scenario(scenario, seed=args.seed)
    print(report.to_text())
    if report.ok:
        return 0
    if args.shrink:
        minimal = shrink_schedule(scenario, seed=args.seed, schedule=report.schedule)
        print()
        print(f"minimal failing schedule ({len(minimal)} of {len(report.schedule)} faults):")
        for fault in minimal:
            print(
                f"  t={fault.at:12.3f}  {fault.kind:<12} "
                f"dur={fault.duration:10.3f}  nodes={list(fault.node_ids)}"
            )
    return 1


def main(argv: t.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-eslurm",
        description="Regenerate the tables and figures of the ESLURM paper (SC'22).",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down cluster sizes (seconds instead of hours)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"==== {name} ====")
        print(EXPERIMENTS[name](args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
