"""Structural state capture: the snapshot's verifiable core.

Generator-based processes cannot be pickled, so a snapshot does not
serialise live objects.  Instead it walks every piece of *structural*
state — kernel (heap/clock/seq/RNG), scheduler (pool/queue/jobs),
RM (master + satellites + accounting), cluster (node states, failure
log, maintenance windows, alerts) — into one nested dict of JSON
scalars, and hashes its canonical form.  Cold restore rebuilds the
world, replays to the same event boundary, re-walks the state, and
compares field by field: any nondeterminism anywhere in the simulator
surfaces as a named divergent path, not as silently different results.

Deliberate normalisations (the captured form must be invariant to
representation choices that differ between a live and a replayed world):

* the event heap is reported sorted with cancelled entries dropped —
  lazy deletion means their physical position is timing-dependent;
* the pool's free set is reported sorted, derived from its per-node
  state columns — the lazy min-heap lane over them may hold stale
  entries;
* derived memo caches (backfill reservation walk, heartbeat makespan,
  broadcast memos) are excluded: they are recomputed, not state.

Deliberate exclusions: telemetry sessions (host-clock metrics) and any
``host.*`` fact.  Everything captured is a pure function of
(config, event index).
"""

from __future__ import annotations

import hashlib
import json
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.snapshot.world import SimWorld


def canonical_state_json(state: t.Mapping[str, t.Any]) -> str:
    """Canonical byte form of a state dict (sorted keys, compact).

    ``allow_nan`` stays on: believed-end times of jobs without a wall
    limit are ``Infinity``, and Python's ``json`` emits them
    deterministically.
    """
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_digest(state: t.Mapping[str, t.Any]) -> str:
    return "sha256:" + hashlib.sha256(canonical_state_json(state).encode()).hexdigest()


def first_divergence(
    a: t.Any, b: t.Any, path: str = "$"
) -> tuple[str, t.Any, t.Any] | None:
    """First leaf where two state trees differ, as ``(path, a, b)``."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return (f"{path}.{key}", "<absent>", b[key])
            if key not in b:
                return (f"{path}.{key}", a[key], "<absent>")
            hit = first_divergence(a[key], b[key], f"{path}.{key}")
            if hit is not None:
                return hit
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return (f"{path}.length", len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            hit = first_divergence(x, y, f"{path}[{i}]")
            if hit is not None:
                return hit
        return None
    if a != b:
        return (path, a, b)
    return None


# ---------------------------------------------------------------------------
# component walks
# ---------------------------------------------------------------------------
def _tally_state(tally: t.Any) -> dict[str, t.Any]:
    return {
        "n": tally.n,
        "mean": tally._mean,
        "m2": tally._m2,
        "min": None if tally.n == 0 else tally._min,
        "max": None if tally.n == 0 else tally._max,
    }


def _series_state(series: t.Any) -> list[t.Any]:
    # Length + last sample: enough to catch divergence immediately
    # without embedding a full day of samples in every snapshot.
    n = len(series)
    return [n, series._times[-1] if n else None, series._values[-1] if n else None]


def _acct_state(acct: t.Any) -> dict[str, t.Any]:
    # Apply pulse closes due by now before reading counter/series state
    # (closes are lazily drained; see repro.network.sockets).
    acct.sockets.sync()
    pending = acct.sockets._pending
    return {
        "sockets_pending": [len(pending), min(pending)[0] if pending else None],
        "cpu_time_s": acct.cpu_time_s,
        "busy_in_window": acct._busy_in_window,
        "tracked_nodes": acct.tracked_nodes,
        "tracked_jobs": acct.tracked_jobs,
        "last_sample": acct._last_sample,
        "sockets_current": acct.sockets.current,
        "sockets_opened": acct.sockets.total_opened,
        "socket_series": _series_state(acct.sockets.series),
        "cpu_series": _series_state(acct.cpu_series),
        "cpu_util": _series_state(acct.cpu_util),
    }


def _job_state(job: t.Any) -> list[t.Any]:
    return [
        job.job_id,
        job.state.name,
        job.limit_s,
        job.planned_s,
        job.start_time,
        job.end_time,
        list(job.allocated_nodes),
        job.model_estimate_s,
        job.resize_count,
        job.alloc_node_seconds,
        job.last_resize_time,
    ]


def _pool_state(pool: t.Any) -> dict[str, t.Any]:
    return {
        "free": sorted(pool.free_ids()),
        "down": sorted(pool.down_ids()),
        "running": {
            str(job_id): {
                "nodes": list(rec.node_ids),
                "believed_end": rec.believed_end,
            }
            for job_id, rec in pool.running.items()
        },
    }


def _queue_state(queue: t.Any) -> dict[str, t.Any]:
    return {
        "ids": [job.job_id for job in queue],  # FIFO order is state
        "demand": queue.demand_nodes,
    }


def _rm_state(rm: t.Any) -> dict[str, t.Any]:
    state: dict[str, t.Any] = {
        "name": rm.rm_name,
        "crashed_until": rm._crashed_until,
        "crash_count": rm.crash_count,
        "submit_failures": rm.submit_failures,
        "submits_abandoned": rm.submits_abandoned,
        "resize_grows": rm.resize_grows,
        "resize_shrinks": rm.resize_shrinks,
        "resize_ok": sorted(rm._resize_ok),
        "live_job_procs": sorted(rm._job_procs),
        # FSM-path lifecycles expose structural phase state; generator
        # Processes don't (their phase lives in an opaque frame), so
        # this maps only FSM entries (empty on the generator path).
        "lifecycles": {
            str(job_id): proc.snapshot_state()
            for job_id, proc in sorted(rm._job_procs.items())
            if hasattr(proc, "snapshot_state")
        },
        "occupation": _tally_state(rm._occupation),
        "broadcast": _tally_state(rm._bcast_tally),
        "master": _acct_state(rm.master_acct),
        "jobs": [_job_state(job) for job in rm.jobs],
    }
    sat_pool = getattr(rm, "sat_pool", None)
    if sat_pool is not None:
        state["satellites"] = {
            "rr": sat_pool._rr,
            "master_takeovers": sat_pool.master_takeovers,
            "daemons": [
                {
                    "state": daemon.state.name,
                    "fault_since": daemon._fault_since,
                    "tasks_received": daemon.stats.tasks_received,
                    "nodes_in_tasks": daemon.stats.nodes_in_tasks,
                    "tasks_failed": daemon.stats.tasks_failed,
                    "acct": _acct_state(daemon.acct),
                }
                for daemon in sat_pool.daemons
            ],
        }
    estimator = getattr(rm, "estimator", None)
    if estimator is not None:
        est: dict[str, t.Any] = {"name": getattr(estimator, "name", type(estimator).__name__)}
        history = getattr(estimator, "_history", None)
        if history is not None:
            est["history"] = len(history)
        if hasattr(estimator, "_last_train"):
            est["last_train"] = estimator._last_train
        if hasattr(estimator, "trainings"):
            est["trainings"] = estimator.trainings
        state["estimator"] = est
    return state


def _cluster_state(cluster: t.Any) -> dict[str, t.Any]:
    # Sparse node map: only nodes away from the idle-UP default.
    nodes = [
        [node.node_id, node.state.name, node.running_job]
        for node in cluster.all_nodes()
        if node.state.name != "UP" or node.running_job is not None
    ]
    nodes.sort(key=lambda row: row[0])
    injector = cluster.failures
    monitor = cluster.monitor
    return {
        "version": cluster.version,
        "nodes": nodes,
        "failure_events": [
            [ev.time, ev.kind, list(ev.node_ids), ev.recover_at]
            for ev in injector.events
        ],
        "maintenance_until": {
            str(node_id): until for node_id, until in injector._maint_until.items()
        },
        "alerts": [
            [alert.time, alert.node_id, alert.indicator, alert.spurious]
            for alert in monitor.alerts
        ],
    }


def capture_state(world: "SimWorld") -> dict[str, t.Any]:
    """Walk the world into one canonical, JSON-scalar state tree."""
    sim = world.sim
    return {
        "sim": sim.snapshot_state(),
        "rng": sim.rng.getstate(),
        "pool": _pool_state(world.rm.pool),
        "queue": _queue_state(world.rm.queue),
        "rm": _rm_state(world.rm),
        "cluster": _cluster_state(world.cluster),
    }
