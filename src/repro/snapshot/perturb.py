"""What-if perturbations: small, validated deltas applied at a snapshot.

Each perturbation is a frozen dataclass with three faces:

* ``apply(world)`` — inject the delta as a simulation event at the
  world's current (paused) time, so the perturbed run stays fully
  deterministic: the delta enters the event order through the same
  heap/seq machinery as everything else;
* ``observe(world)`` — after the day finishes, report the probe's
  outcome (did the job start, when, what happened to the node...);
* ``to_wire()`` / :func:`perturbation_from_wire` — strict JSON-scalar
  round-trip for the gateway's ``what-if`` request kind.  Unknown kinds
  or fields raise :class:`~repro.errors.ConfigurationError`, which the
  CLI maps to exit 3 and the gateway to HTTP 400.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sched.job import Job, JobState

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.snapshot.world import SimWorld

#: probe jobs live far above any trace-generated id so the injected job
#: can never collide with (or re-order against) a workload job
PROBE_JOB_ID_BASE = 10_000_000


@dataclass(frozen=True)
class Perturbation:
    """Base class; subclasses define ``kind`` and the three faces."""

    kind: t.ClassVar[str] = ""

    def apply(self, world: "SimWorld") -> None:
        raise NotImplementedError

    def observe(self, world: "SimWorld") -> dict[str, t.Any]:
        raise NotImplementedError

    def params(self) -> dict[str, t.Any]:
        raise NotImplementedError

    def to_wire(self) -> dict[str, t.Any]:
        return {"kind": self.kind, **self.params()}


@dataclass(frozen=True)
class SubmitJob(Perturbation):
    """"What if this job were submitted now?" — the paper's core probe."""

    kind: t.ClassVar[str] = "submit-job"

    job_nodes: int = 8
    job_runtime_s: float = 3600.0
    job_limit_s: float | None = None

    def __post_init__(self) -> None:
        if self.job_nodes < 1:
            raise ConfigurationError("submit-job: job_nodes must be >= 1")
        if self.job_runtime_s <= 0:
            raise ConfigurationError("submit-job: job_runtime_s must be positive")
        if self.job_limit_s is not None and self.job_limit_s <= 0:
            raise ConfigurationError("submit-job: job_limit_s must be positive")

    def params(self) -> dict[str, t.Any]:
        return {
            "job_nodes": self.job_nodes,
            "job_runtime_s": self.job_runtime_s,
            "job_limit_s": self.job_limit_s,
        }

    def _probe_id(self, world: "SimWorld") -> int:
        return PROBE_JOB_ID_BASE + sum(
            1 for job in world.rm.jobs if job.job_id >= PROBE_JOB_ID_BASE
        )

    def apply(self, world: "SimWorld") -> None:
        if self.job_nodes > world.rm.pool.n_total:
            raise ConfigurationError(
                f"submit-job: {self.job_nodes} nodes exceeds the "
                f"{world.rm.pool.n_total}-node machine"
            )
        job = Job(
            job_id=self._probe_id(world),
            name="whatif-probe",
            user="whatif",
            n_nodes=self.job_nodes,
            runtime_s=self.job_runtime_s,
            user_estimate_s=self.job_limit_s,
            submit_time=world.sim.now,
        )
        world.sim.call_at(world.sim.now, lambda: world.rm.submit(job))

    def observe(self, world: "SimWorld") -> dict[str, t.Any]:
        probes = [job for job in world.rm.jobs if job.job_id >= PROBE_JOB_ID_BASE]
        if not probes:
            # Submission failed to connect and the retry fell past the
            # horizon: the probe never entered the system.
            return {"state": None, "wait_s": None, "started": False}
        job = probes[-1]
        started = job.start_time is not None
        return {
            "job_id": job.job_id,
            "state": job.state.name,
            "started": started,
            "wait_s": (job.start_time - job.submit_time) if started else None,
            "start_time": job.start_time,
            "end_time": job.end_time,
        }


@dataclass(frozen=True)
class FailNode(Perturbation):
    """"What if this node died now?" — fault-tolerance probing."""

    kind: t.ClassVar[str] = "fail-node"

    node_id: int = 0
    duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("fail-node: node_id must be >= 0")
        if self.duration_s <= 0:
            raise ConfigurationError("fail-node: duration_s must be positive")

    def params(self) -> dict[str, t.Any]:
        return {"node_id": self.node_id, "duration_s": self.duration_s}

    def apply(self, world: "SimWorld") -> None:
        if not world.rm.pool.has_node(self.node_id):
            raise ConfigurationError(
                f"fail-node: node {self.node_id} is not a compute node of this world"
            )
        # Remember who is allocated on the node at the cut — a finished
        # job clears its allocation, so this cannot be reconstructed
        # after the day ends.  Not a dataclass field: identity-free
        # bookkeeping, invisible to eq/wire.
        at_risk = tuple(
            sorted(
                job_id
                for job_id, rec in world.rm.pool.running.items()
                if self.node_id in rec.node_ids
            )
        )
        object.__setattr__(self, "_jobs_at_risk", at_risk)
        world.cluster.failures.schedule_fault(
            "point", world.sim.now, (self.node_id,), self.duration_s
        )

    def observe(self, world: "SimWorld") -> dict[str, t.Any]:
        node = world.cluster.node(self.node_id)
        at_risk = getattr(self, "_jobs_at_risk", ())
        by_id = {job.job_id: job for job in world.rm.jobs}
        killed = [
            job_id
            for job_id in at_risk
            if job_id in by_id and by_id[job_id].state is JobState.FAILED
        ]
        return {
            "node_id": self.node_id,
            "final_state": node.state.name,
            "jobs_at_risk": list(at_risk),
            "jobs_failed_on_node": killed,
        }


@dataclass(frozen=True)
class CancelJob(Perturbation):
    """"What if this queued job were cancelled now?"."""

    kind: t.ClassVar[str] = "cancel-job"

    job_id: int = 0

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ConfigurationError("cancel-job: job_id must be >= 0")

    def params(self) -> dict[str, t.Any]:
        return {"job_id": self.job_id}

    def apply(self, world: "SimWorld") -> None:
        rm = world.rm

        def _cancel() -> None:
            for job in list(rm.queue):
                if job.job_id == self.job_id:
                    rm.queue.remove(job)
                    job.cancel(rm.sim.now)
                    rm._schedule_pass()
                    return
            # Not pending at the cut: a no-op, reported by observe().

        world.sim.call_at(world.sim.now, _cancel)

    def observe(self, world: "SimWorld") -> dict[str, t.Any]:
        for job in world.rm.jobs:
            if job.job_id == self.job_id:
                return {
                    "job_id": self.job_id,
                    "found": True,
                    "state": job.state.name,
                    "cancelled": job.state is JobState.CANCELLED,
                }
        return {"job_id": self.job_id, "found": False, "state": None, "cancelled": False}


PERTURBATION_TYPES: dict[str, type[Perturbation]] = {
    cls.kind: cls for cls in (SubmitJob, FailNode, CancelJob)
}


def perturbation_from_wire(wire: t.Mapping[str, t.Any]) -> Perturbation:
    """Parse and validate a wire perturbation (strict, like the envelopes)."""
    if not isinstance(wire, t.Mapping):
        raise ConfigurationError(f"perturbation must be an object, got {wire!r}")
    data = dict(wire)
    kind = data.pop("kind", None)
    cls = PERTURBATION_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown perturbation kind {kind!r}; choose from {sorted(PERTURBATION_TYPES)}"
        )
    fields = {f for f in cls.__dataclass_fields__}
    unknown = set(data) - fields
    if unknown:
        raise ConfigurationError(
            f"perturbation {kind!r} got unknown field(s) {sorted(unknown)}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"perturbation {kind!r}: {exc}") from None
