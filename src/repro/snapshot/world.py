"""A simulated RM day built for external driving.

:func:`repro.api.run_simulation` builds and runs a day in one call; a
snapshot needs the same world *paused* at arbitrary event boundaries.
:class:`SimWorld` reuses the facade's construction helpers
(:func:`repro.api.quick_cluster` / :func:`repro.api.prepare_rm_day` /
:func:`repro.api.rm_kwargs_for_config`) verbatim, so a world driven
straight to the horizon is event-for-event identical to
``run_simulation`` on the same config — the invariant every equivalence
test in this package rests on.
"""

from __future__ import annotations

import typing as t

from repro.api import (
    SimulationConfig,
    prepare_rm_day,
    quick_cluster,
    rm_kwargs_for_config,
)
from repro.errors import ConfigurationError
from repro.oracle.golden import TraceDigest
from repro.rm.base import RmReport


class SimWorld:
    """One simulated RM day: built immediately, run under caller control.

    Construction is a pure function of the config — two worlds built
    from equal configs are in identical states before any event runs.
    Telemetry sessions are refused: their wall-clock metrics are not
    part of the deterministic state a snapshot can guarantee.
    """

    def __init__(self, config: SimulationConfig) -> None:
        if config.telemetry.enabled:
            raise ConfigurationError(
                "snapshot worlds run without telemetry sessions (host-clock "
                "metrics cannot be captured deterministically)"
            )
        self.config = config
        self.cluster = quick_cluster(
            n_nodes=config.n_nodes,
            n_satellites=config.n_satellites,
            seed=config.seed,
            failures=config.failures,
            monitoring=config.monitoring,
        )
        self.sim = self.cluster.sim
        rm_kwargs = rm_kwargs_for_config(config, self.cluster)
        self.rm, self.trace_jobs = prepare_rm_day(
            config.rm,
            self.cluster,
            n_jobs=config.n_jobs,
            seed=config.seed,
            horizon_s=config.horizon_s,
            workload=config.workload,
            estimator=config.estimator,
            **rm_kwargs,
        )
        #: absolute stop time — fixed at build, exactly as ``run_rm_day``
        #: computes it before anything runs
        self.horizon_end = self.sim.now + config.horizon_s
        # Schedule every submission without running a single event.
        self.rm.run_trace(self.trace_jobs, until=None)

    # -- driving -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def events_processed(self) -> int:
        return self.sim.events_processed

    def attach_trace_digest(self) -> TraceDigest:
        """Hook a fresh golden-trace digest onto the event stream."""
        digest = TraceDigest()
        self.sim.add_trace_hook(digest.hook)
        return digest

    def run_until(self, when: float) -> None:
        """Advance to simulated time ``when`` (clamped to the horizon).

        Splitting the day into any sequence of ``run_until`` calls is
        event-identical to one straight run: the clock lands exactly on
        each intermediate deadline (``Simulator.run`` semantics), and no
        event between deadlines is reordered.
        """
        self.sim.run(until=min(float(when), self.horizon_end))

    def run_events_until(self, count: int) -> int:
        """Replay until ``events_processed`` reaches ``count``.

        Returns the number of events processed by this call; stops at
        the horizon if the world has fewer than ``count`` events.
        """
        return self.sim.run_until_count(count, deadline=self.horizon_end)

    def run_to_horizon(self) -> None:
        """Run the remainder of the day."""
        self.sim.run(until=self.horizon_end)

    # -- results -----------------------------------------------------------
    def report(self) -> RmReport:
        return self.rm.report(horizon_s=self.config.horizon_s)

    def final_payload(self) -> dict[str, t.Any]:
        """Deterministic end-of-day payload for byte-identity checks.

        The same shape for every backend: master accounting summary plus
        schedule metrics.  Byte-identical (via canonical JSON) across
        straight, warm-resumed, and cold-restored runs of one config.
        """
        from dataclasses import asdict

        rep = self.report()
        return {
            "rm": rep.rm_name,
            "n_nodes": rep.n_nodes,
            "events": self.sim.events_processed,
            "master": dict(rep.master),
            "schedule": asdict(rep.schedule) if rep.schedule is not None else None,
            "n_broadcasts": rep.n_broadcasts,
            "occupation_mean_s": rep.occupation_mean_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimWorld {self.config.rm} n={self.config.n_nodes} "
            f"t={self.sim.now:.6g} events={self.sim.events_processed}>"
        )
