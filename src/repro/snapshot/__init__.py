"""Incremental simulation: deterministic snapshot/restore and what-if.

The package answers one question cheaply and trustworthily: *"what
would the rest of the day look like if X happened now?"* — without
rerunning the whole day, and without ever returning a silently-wrong
answer.

* :class:`SimWorld` — a simulated RM day built by the exact
  ``run_simulation`` construction path, paused under caller control.
* :func:`capture` / :class:`Snapshot` — a verifiable checkpoint:
  structural state tree + canonical digest + (optionally) the live
  paused world.
* :func:`restore` — cold rebuild-and-replay to the captured event
  boundary, verified field-by-field against the capture.
* :func:`what_if` + perturbations (:class:`SubmitJob`,
  :class:`FailNode`, :class:`CancelJob`) — delta-replay from the
  snapshot point to the horizon.

Resume-from-snapshot is byte-identical to the straight run: same golden
trace hashes (the PR-3 ``add_trace_hook`` seam), same final payloads.
The ``snapshot-equivalence`` oracle relation and the property sweeps in
``tests/snapshot`` enforce this across backends, seeds, and split
points.
"""

from repro.snapshot.capture import (
    canonical_state_json,
    capture_state,
    first_divergence,
    state_digest,
)
from repro.snapshot.core import (
    Snapshot,
    SnapshotError,
    WhatIfOutcome,
    capture,
    restore,
    what_if,
)
from repro.snapshot.perturb import (
    PERTURBATION_TYPES,
    PROBE_JOB_ID_BASE,
    CancelJob,
    FailNode,
    Perturbation,
    SubmitJob,
    perturbation_from_wire,
)
from repro.snapshot.world import SimWorld

__all__ = [
    "CancelJob",
    "FailNode",
    "PERTURBATION_TYPES",
    "PROBE_JOB_ID_BASE",
    "Perturbation",
    "SimWorld",
    "Snapshot",
    "SnapshotError",
    "SubmitJob",
    "WhatIfOutcome",
    "canonical_state_json",
    "capture",
    "capture_state",
    "first_divergence",
    "perturbation_from_wire",
    "restore",
    "state_digest",
    "what_if",
]
