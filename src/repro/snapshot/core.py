"""Snapshot capture, verified restore, and what-if delta-replay.

Two restore paths share one :class:`Snapshot`:

* **warm** — the snapshot keeps a reference to the live paused world.
  :func:`what_if` consumes it (once) and replays only the remainder of
  the day: this is the cheap path a gateway uses to answer many
  what-ifs against one base run.
* **cold** — :func:`restore` rebuilds the world from the config (a pure
  function of ``(config, seed)``), replays exactly ``event_index``
  events, restores the paused clock, and verifies the recomputed state
  digest against the captured one.  A mismatch raises
  :class:`SnapshotError` naming the first divergent field — replay
  nondeterminism is a loud failure, never a silently different answer.

Both paths are locked to the straight run by the ``snapshot-equivalence``
oracle relation and the property sweeps in ``tests/snapshot``: golden
trace hashes and final payloads must be byte-identical.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.api import SimulationConfig
from repro.errors import ReproError
from repro.snapshot.capture import capture_state, first_divergence, state_digest
from repro.snapshot.perturb import Perturbation
from repro.snapshot.world import SimWorld


class SnapshotError(ReproError):
    """Restore could not reproduce the captured state exactly."""


@dataclass
class Snapshot:
    """A deterministic checkpoint of one simulated day.

    The captured ``state`` tree plus its digest are the verifiable
    payload; ``config``/``event_index``/``sim_now`` are the recipe a
    cold restore replays from.  ``_world`` (when present) is the live
    paused world for the warm path — consumed by the first
    :func:`what_if` or :meth:`take_world` call.
    """

    config: SimulationConfig
    event_index: int
    sim_now: float
    state: dict[str, t.Any]
    digest: str
    _world: SimWorld | None = field(default=None, repr=False, compare=False)

    @property
    def warm(self) -> bool:
        """Whether the live captured world is still attached."""
        return self._world is not None

    def take_world(self) -> SimWorld | None:
        """Detach and return the live world (consume-once), if any."""
        world, self._world = self._world, None
        return world

    def detach(self) -> "Snapshot":
        """Drop the live-world reference; cold restores still work."""
        self._world = None
        return self


def capture(world: SimWorld, detach: bool = False) -> Snapshot:
    """Checkpoint a paused world.

    Purely observational — capturing must not perturb the run, which is
    exactly what the warm half of the equivalence tests establishes
    (capture, resume, compare against the uncaptured straight run).

    Args:
        world: a :class:`SimWorld` paused between ``run_*`` calls.
        detach: drop the live-world reference immediately (cold-only
            snapshot, e.g. when the caller keeps driving the world).
    """
    state = capture_state(world)
    snapshot = Snapshot(
        config=world.config,
        event_index=world.sim.events_processed,
        sim_now=world.sim.now,
        state=state,
        digest=state_digest(state),
        _world=None if detach else world,
    )
    return snapshot


def restore(
    snapshot: Snapshot,
    verify: bool = True,
    on_build: t.Callable[[SimWorld], None] | None = None,
) -> SimWorld:
    """Cold-restore: rebuild, replay to the boundary, verify, return.

    Args:
        snapshot: checkpoint to restore (its warm world, if any, is
            left untouched — a snapshot supports unlimited cold
            restores).
        verify: recompute the full state walk on the restored world and
            compare it field-by-field against the capture (raises
            :class:`SnapshotError` on the first divergence).  Costs one
            state walk; disable only in hot loops that already ran the
            equivalence suite.
        on_build: called with the fresh world *before* replay — the seam
            for attaching trace hooks that must observe the replayed
            prefix (the equivalence tests hash prefix + suffix).
    """
    world = SimWorld(snapshot.config)
    if on_build is not None:
        on_build(world)
    replayed = world.run_events_until(snapshot.event_index)
    if world.sim.events_processed != snapshot.event_index:
        raise SnapshotError(
            f"replay exhausted after {replayed} events; snapshot was taken at "
            f"event {snapshot.event_index} — the rebuilt world diverged"
        )
    world.sim.restore_clock(snapshot.sim_now)
    if verify:
        replayed_state = capture_state(world)
        replayed_digest = state_digest(replayed_state)
        if replayed_digest != snapshot.digest:
            hit = first_divergence(snapshot.state, replayed_state)
            path, want, got = hit if hit is not None else ("<digest only>", "", "")
            raise SnapshotError(
                f"restored state diverges from capture at {path}: "
                f"captured {want!r}, replayed {got!r} "
                f"(digest {snapshot.digest} != {replayed_digest})"
            )
    return world


@dataclass(frozen=True)
class WhatIfOutcome:
    """Result of one delta-replay, with its cost accounting."""

    #: deterministic end-of-day payload of the perturbed run
    payload: dict[str, t.Any]
    #: perturbation-specific facts (probe job outcome, nodes failed...)
    probe: dict[str, t.Any]
    #: wire form of the applied perturbation
    perturbation: dict[str, t.Any]
    #: events replayed after the snapshot point (the delta)
    events_resumed: int
    #: events the snapshot had already processed (saved vs a full rerun)
    events_at_snapshot: int
    #: total events of the perturbed day
    events_total: int
    sim_now_at_snapshot: float
    snapshot_digest: str
    #: True when the live captured world was consumed (no replay cost)
    warm: bool

    def to_payload(self) -> dict[str, t.Any]:
        """One flat deterministic dict (bench / gateway responses)."""
        return {
            "perturbation": dict(self.perturbation),
            "probe": dict(self.probe),
            "events_resumed": self.events_resumed,
            "events_at_snapshot": self.events_at_snapshot,
            "events_total": self.events_total,
            "sim_now_at_snapshot": self.sim_now_at_snapshot,
            "snapshot_digest": self.snapshot_digest,
            "result": dict(self.payload),
        }


def what_if(snapshot: Snapshot, perturbation: Perturbation) -> WhatIfOutcome:
    """Apply a perturbation at the snapshot point and finish the day.

    Consumes the snapshot's warm world when one is attached (zero replay
    cost); otherwise cold-restores first.  The outcome records both the
    resumed-event delta and the events the snapshot already covered, so
    callers can report exactly how much work delta-replay saved.
    """
    world = snapshot.take_world()
    warm = world is not None
    if world is None:
        world = restore(snapshot)
    perturbation.apply(world)
    world.run_to_horizon()
    probe = perturbation.observe(world)
    return WhatIfOutcome(
        payload=world.final_payload(),
        probe=probe,
        perturbation=perturbation.to_wire(),
        events_resumed=world.sim.events_processed - snapshot.event_index,
        events_at_snapshot=snapshot.event_index,
        events_total=world.sim.events_processed,
        sim_now_at_snapshot=snapshot.sim_now,
        snapshot_digest=snapshot.digest,
        warm=warm,
    )
