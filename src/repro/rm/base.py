"""The RM engine: job lifecycle, heartbeats, user traffic, accounting.

One engine serves every RM in the comparison; behaviour differences
come from the :class:`~repro.rm.profiles.RMProfile` (costs, connection
style, fan-out structure) and from subclass hooks:

* :meth:`ResourceManager._broadcast` — how a payload reaches a set of
  nodes (centralized structures vs ESLURM's satellite/FP-Tree path);
* :meth:`ResourceManager._heartbeat_round` — who pays for the periodic
  health sweep.

The engine charges every action to :class:`DaemonAccounting`, so the
Fig. 7/9 resource curves are by-products of running the workload, and
tracks per-job *occupation time* (submission to full resource release,
Fig. 7f).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.cluster.spec import Cluster
from repro.errors import ConfigurationError, ProcessInterrupt, SchedulingError
from repro.estimate.metrics import RuntimeEstimator
from repro.network.broadcast import BroadcastResult, MemoizedBroadcast
from repro.network.fabric import FabricConfig, NetworkFabric
from repro.network.message import DEFAULT_SIZES, MessageKind
from repro.network.structures import StarBroadcast, TreeBroadcast
from repro.rm.accounting import DaemonAccounting
from repro.rm.lifecycle import RESIZE_CAUSE, JobLifecycle
from repro.rm.profiles import HeartbeatStyle, LaunchStructure, RMProfile
from repro.sched.allocator import NodePool
from repro.sched.backfill import BackfillScheduler, ResizeDecision
from repro.sched.job import Job, JobState
from repro.sched.metrics import ScheduleMetrics
from repro.sched.queue import JobQueue
from repro.simkit.core import Simulator
from repro.simkit.monitor import Tally
from repro.telemetry import facade as telemetry


# RESIZE_CAUSE (re-exported above from repro.rm.lifecycle): interrupt
# cause the engine uses to retime a malleable job's work loop after a
# grow/shrink — anything else kills the job as before.

#: selectable job-lifecycle engines: the flat FSM fast path (default)
#: and the generator reference implementation it is proven against
LIFECYCLE_MODES = ("fsm", "generator")


def tree_depth_estimate(n: int, width: int) -> int:
    """Depth of a width-ary fan-out over ``n`` targets (cheap bound)."""
    depth = 0
    reach = 1
    while reach < n:
        reach *= width
        depth += 1
    return depth


@dataclass
class RmReport:
    """Everything a benchmark wants to know after a run."""

    rm_name: str
    n_nodes: int
    master: dict[str, float]
    satellites: list[dict[str, float]] = field(default_factory=list)
    schedule: ScheduleMetrics | None = None
    occupation_mean_s: float = 0.0
    occupation_max_s: float = 0.0
    broadcast_mean_s: float = 0.0
    n_broadcasts: int = 0

    def summary(self) -> str:
        lines = [f"[{self.rm_name}] {self.n_nodes} nodes"]
        lines.append(
            "  master: cpu={cpu_time_min:.1f}min vmem={vmem_mb:.0f}MB "
            "rss={rss_mb:.1f}MB sockets(mean/peak)={sockets_mean:.1f}/{sockets_peak:.0f}".format(
                **self.master
            )
        )
        for i, s in enumerate(self.satellites):
            lines.append(
                f"  sat{i}: cpu={s['cpu_time_min']:.1f}min vmem={s['vmem_mb']:.0f}MB "
                f"rss={s['rss_mb']:.1f}MB sockets={s['sockets_mean']:.1f}"
            )
        if self.schedule is not None:
            lines.append("  " + self.schedule.summary().replace("\n", "\n  "))
        if self.n_broadcasts:
            lines.append(
                f"  broadcasts: n={self.n_broadcasts} mean={self.broadcast_mean_s:.3f}s"
            )
        if self.occupation_mean_s:
            lines.append(
                f"  occupation: mean={self.occupation_mean_s:.2f}s max={self.occupation_max_s:.2f}s"
            )
        return "\n".join(lines)


class ResourceManager:
    """Discrete-event resource manager driven by an :class:`RMProfile`.

    Args:
        sim: simulator owning all processes.
        cluster: the machine (provides nodes, failures, monitoring).
        profile: cost/behaviour constants.
        scheduler: policy object (defaults to EASY backfill, the paper's
            setting for every RM).
        estimator: optional runtime estimator; when provided, submitted
            jobs get their wall limit from it (ESLURM's framework).
        fabric_config: interconnect parameters.
        user_rpc_rate_per_s: background squeue/scancel traffic.
        sample_interval_s: accounting sample cadence (paper: 1 s).
        placement: optional :class:`~repro.sched.placement.PlacementPolicy`
            steering which free nodes allocations receive (``None`` keeps
            the byte-stable first-fit path).
        lifecycle: job-lifecycle engine — ``"fsm"`` (the flat
            table-driven fast path on the kernel's timer lane, the
            default) or ``"generator"`` (the reference
            :meth:`_run_job` process; the ``lifecycle-equivalence``
            oracle relation holds the two identical).
    """

    rm_name = "generic"

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        profile: RMProfile,
        scheduler: t.Any = None,
        estimator: RuntimeEstimator | None = None,
        fabric_config: FabricConfig | None = None,
        user_rpc_rate_per_s: float = 0.05,
        sample_interval_s: float = 60.0,
        placement: t.Any = None,
        lifecycle: str = "fsm",
    ) -> None:
        if lifecycle not in LIFECYCLE_MODES:
            raise ConfigurationError(
                f"unknown lifecycle {lifecycle!r}; choose from {LIFECYCLE_MODES}"
            )
        self.lifecycle_mode = lifecycle
        self.sim = sim
        self.cluster = cluster
        self.profile = profile
        self.scheduler = scheduler or BackfillScheduler()
        self.estimator = estimator
        self.fabric = NetworkFabric(sim, cluster, fabric_config)
        self.user_rpc_rate = user_rpc_rate_per_s
        self.sample_interval_s = sample_interval_s
        self.rm_name = profile.name
        self.master_acct = DaemonAccounting(sim, profile, f"{profile.name}.master")
        self.pool = NodePool(cluster.compute_ids(), placement=placement)
        self.queue = JobQueue()
        self.jobs: list[Job] = []
        self._job_procs: dict[int, t.Any] = {}
        #: malleable jobs currently inside their interruptible work loop
        #: — the only window where a resize retime may be delivered
        self._resize_ok: set[int] = set()
        self.resize_grows = 0
        self.resize_shrinks = 0
        self._occupation = Tally("occupation")
        self._bcast_tally = Tally("broadcast")
        self._started = False
        #: master-daemon crash state (Sec. II-B): while down the daemon
        #: schedules nothing and answers nobody; running jobs continue.
        self._crashed_until = -1.0
        self.crash_count = 0
        self.submit_failures = 0
        self.submits_abandoned = 0
        self._submit_rng = sim.rng.stream(f"{profile.name}.submit")
        #: connect-failure probability at this machine size (Sec. II-B:
        #: ~38 % for Slurm at 20K+ nodes)
        self.submit_fail_prob = min(
            profile.submit_fail_per_10k_nodes * cluster.n_nodes / 10_000.0, 0.6
        )
        #: persistent launch/terminate engine (built once, memoized —
        #: repeated node sets between liveness changes skip evaluation);
        #: profiles whose structure needs a subclass override leave it None
        p = profile
        if p.launch_structure is LaunchStructure.SERIAL:
            self._launch_engine: t.Any = MemoizedBroadcast(StarBroadcast(concurrency=1))
        elif p.launch_structure is LaunchStructure.STAR:
            self._launch_engine = MemoizedBroadcast(StarBroadcast(concurrency=p.star_concurrency))
        elif p.launch_structure is LaunchStructure.TREE:
            self._launch_engine = MemoizedBroadcast(TreeBroadcast(width=p.tree_width))
        else:
            self._launch_engine = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn background processes; call once before running."""
        if self._started:
            return
        self._started = True
        p = self.profile
        self.master_acct.set_tracked(nodes=self.cluster.n_nodes, jobs=0)
        if p.persistent_socket_frac > 0:
            self.master_acct.sockets.open(int(p.persistent_socket_frac * self.cluster.n_nodes))
        self.master_acct.start_sampler(self.sample_interval_s)
        if self.lifecycle_mode == "fsm":
            # Flat path: every periodic loop is a re-armed Timer — same
            # fire times and same per-stream draw order as the generator
            # loops below, minus the per-iteration Timeout + resume.
            self._start_flat_loops()
        else:
            self.sim.process(self._heartbeat_loop(), name=f"{self.rm_name}.heartbeat")
            if self.user_rpc_rate > 0:
                self.sim.process(self._user_rpc_loop(), name=f"{self.rm_name}.user_rpc")
            self.sim.process(self._scheduler_tick_loop(), name=f"{self.rm_name}.sched_tick")
            if p.crash_node_hours != float("inf"):
                self.sim.process(self._crash_loop(), name=f"{self.rm_name}.crashes")
        self.cluster.failures.subscribe(self._on_failure_event)

    def _start_flat_loops(self) -> None:
        """Timer-lane twins of the background generator loops.

        Each handler runs the loop body first and re-arms afterwards —
        the exact resume order of the generators (body after the yield,
        next Timeout created at the loop top) — so fire times, same-tick
        arming order, and RNG stream draw order all match the reference
        path.
        """
        p = self.profile
        sim = self.sim

        def hb_fire() -> None:
            if not self.master_down:
                self._heartbeat_round()
            hb.arm(p.heartbeat_interval_s)

        hb = sim.timer(hb_fire, label=f"{self.rm_name}.heartbeat")
        hb.arm(p.heartbeat_interval_s)
        if self.user_rpc_rate > 0:
            rpc_rng = sim.rng.stream(f"{self.rm_name}.user_rpc")

            def rpc_fire() -> None:
                self.master_acct.charge_cpu(p.user_rpc_cpu_ms / 1e3)
                self.master_acct.sockets.pulse(1, self.estimated_response_time())
                rpc.arm(rpc_rng.exponential(1.0 / self.user_rpc_rate))

            rpc = sim.timer(rpc_fire, label=f"{self.rm_name}.user_rpc")
            rpc.arm(rpc_rng.exponential(1.0 / self.user_rpc_rate))

        def tick_fire() -> None:
            self._schedule_pass()
            tick.arm(p.scheduler_tick_s)

        tick = sim.timer(tick_fire, label=f"{self.rm_name}.sched_tick")
        tick.arm(p.scheduler_tick_s)
        if p.crash_node_hours != float("inf"):
            self._start_crash_timer()

    def _start_crash_timer(self) -> None:
        """Two-phase timer twin of :meth:`_crash_loop` (crash → reboot)."""
        p = self.profile
        rng = self.sim.rng.stream(f"{self.rm_name}.crashes")
        mtbf_s = p.crash_node_hours / max(self.cluster.n_nodes, 1) * 3600.0
        rebooting = [False]

        def fire() -> None:
            if rebooting[0]:
                rebooting[0] = False
                self._schedule_pass()  # reboot: work through the backlog
                timer.arm(rng.exponential(mtbf_s))
                return
            self.crash_count += 1
            self._crashed_until = self.sim.now + p.reboot_minutes * 60.0
            victims = [
                job_id
                for job_id in list(self.pool.running)
                if rng.random() < self.CRASH_ORPHAN_FRACTION
            ]
            for job_id in victims:
                proc = self._job_procs.get(job_id)
                if proc is not None and proc.is_alive:
                    proc.interrupt(cause="master crash")
            rebooting[0] = True
            timer.arm(p.reboot_minutes * 60.0)

        timer = self.sim.timer(fire, label=f"{self.rm_name}.crashes")
        timer.arm(rng.exponential(mtbf_s))

    @property
    def master_down(self) -> bool:
        """Whether the master daemon is currently crashed/rebooting."""
        return self.sim.now < self._crashed_until

    #: fraction of running jobs a master crash orphans (state-file
    #: recovery saves the rest; the paper's production crashes lost work)
    CRASH_ORPHAN_FRACTION = 0.3

    def _crash_loop(self) -> t.Generator:
        p = self.profile
        rng = self.sim.rng.stream(f"{self.rm_name}.crashes")
        mtbf_s = p.crash_node_hours / max(self.cluster.n_nodes, 1) * 3600.0
        while True:
            yield self.sim.timeout(rng.exponential(mtbf_s))
            self.crash_count += 1
            self._crashed_until = self.sim.now + p.reboot_minutes * 60.0
            # Orphan a fraction of running jobs: their processes outlive
            # the daemon but their bookkeeping does not.
            victims = [
                job_id
                for job_id in list(self.pool.running)
                if rng.random() < self.CRASH_ORPHAN_FRACTION
            ]
            for job_id in victims:
                proc = self._job_procs.get(job_id)
                if proc is not None and proc.is_alive:
                    proc.interrupt(cause="master crash")
            yield self.sim.timeout(p.reboot_minutes * 60.0)
            self._schedule_pass()  # reboot: work through the backlog

    # -- job submission ----------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept a job now; assigns its wall limit and queues it.

        Submission can *fail to connect* (crashed or overloaded master);
        the user retries after a backoff, or eventually gives up — the
        load shedding the paper documents at 20K+ nodes.
        """
        if job.state is not JobState.PENDING:
            raise SchedulingError(f"job {job.job_id} is not pending")
        if job.n_nodes > self.pool.n_total:
            raise SchedulingError(
                f"job {job.job_id} wants {job.n_nodes} nodes; machine has {self.pool.n_total}"
            )
        if self.master_down or self._submit_rng.random() < self.submit_fail_prob:
            self.submit_failures += 1
            if self._submit_rng.random() < 0.75:  # most users retry later
                backoff = float(self._submit_rng.uniform(600.0, 3600.0))
                self.sim.call_at(self.sim.now + backoff, lambda: self.submit(job))
            else:
                job.cancel(self.sim.now)  # user gives up
                self.jobs.append(job)
                self.submits_abandoned += 1
            return
        now = self.sim.now
        if self.estimator is not None:
            estimate = self.estimator.estimate(job, now)
            if estimate is not None:
                # Model estimates steer backfill *planning* only; the
                # kill limit stays the user's request, so an
                # underestimate never kills a job (Section V-B's whole
                # point is avoiding failure-and-reschedule).
                job.planned_s = max(float(estimate), 60.0)
        self.jobs.append(job)
        self.queue.submit(job)
        self.master_acct.charge_cpu(self.profile.user_rpc_cpu_ms / 1e3)
        self.master_acct.set_tracked(jobs=len(self.pool.running) + len(self.queue))
        self._schedule_pass()

    def run_trace(self, jobs: t.Sequence[Job], until: float | None = None) -> None:
        """Schedule trace submissions as future events and run.

        Args:
            jobs: jobs with absolute ``submit_time`` values >= now.
            until: stop time (defaults to running the heap dry — note
                the heartbeat loop never ends, so pass a horizon).
        """
        self.start()
        for job in sorted(jobs, key=lambda j: j.submit_time):
            if job.submit_time < self.sim.now:
                raise SchedulingError(f"job {job.job_id} submits in the past")
            self.sim.call_at(job.submit_time, lambda j=job: self.submit(j))
        if until is not None:
            self.sim.run(until=until)

    # -- scheduling -----------------------------------------------------------
    def _scheduler_tick_loop(self) -> t.Generator:
        while True:
            yield self.sim.timeout(self.profile.scheduler_tick_s)
            self._schedule_pass()

    def _schedule_pass(self) -> None:
        if self.master_down:
            return
        self.master_acct.charge_cpu(
            self.profile.sched_cpu_ms / 1e3 * max(1, min(len(self.queue), 100))
        )
        tel = telemetry.active()
        if tel is None:
            decisions = self.scheduler.plan(self.queue, self.pool, self.sim.now)
        else:
            tel.observe("sched.queue_depth", len(self.queue))
            with tel.span("sched.plan"):  # host-clock allocation latency
                decisions = self.scheduler.plan(self.queue, self.pool, self.sim.now)
            tel.count("sched.passes")
            tel.count("sched.decisions", len(decisions))
        self._launch_decisions(decisions)
        self._elastic_pass()

    def _launch_decisions(self, decisions: list[tuple[Job, tuple[int, ...]]]) -> None:
        if self.lifecycle_mode == "fsm":
            for job, nodes in decisions:
                for nid in nodes:
                    self.cluster.node(nid).allocate(job.job_id)
                lc = JobLifecycle(self, job, nodes)
                self._job_procs[job.job_id] = lc
                # Synchronous begin: the generator path defers the same
                # charges/broadcast to a same-tick bootstrap event; none
                # of them read state a later decision in this batch
                # mutates, so timings are identical.
                lc.begin()
            return
        for job, nodes in decisions:
            for nid in nodes:
                self.cluster.node(nid).allocate(job.job_id)
            proc = self.sim.process(self._run_job(job, nodes), name=f"job{job.job_id}")
            self._job_procs[job.job_id] = proc

    # -- malleability --------------------------------------------------------
    def _elastic_pass(self) -> None:
        """Grow/contract running elastic jobs after the start decisions."""
        plan_resizes = getattr(self.scheduler, "plan_resizes", None)
        if plan_resizes is None:
            return
        resizes = plan_resizes(self.queue, self.pool, self.sim.now)
        if not resizes:
            return
        shrank = self._apply_resizes(resizes)
        if shrank:
            # Contraction freed nodes for a blocked head: admit it now
            # rather than waiting for the next event.
            self._launch_decisions(self.scheduler.plan(self.queue, self.pool, self.sim.now))

    def _apply_resizes(self, resizes: list[ResizeDecision]) -> bool:
        """Apply scheduler resize decisions; returns whether any shrank.

        The pool side is already mutated (the scheduler allocates, same
        as ``plan``); this applies the job, cluster-node, accounting and
        process-retiming side, with one telemetry span per decision.
        """
        tel = telemetry.active()
        shrank = False
        for dec in resizes:
            if tel is not None:
                with tel.span("sched.resize"):
                    self._apply_one_resize(dec)
                tel.count("sched.resize.decisions")
                if dec.added:
                    tel.count("sched.grow.nodes", len(dec.added))
                if dec.removed:
                    tel.count("sched.shrink.nodes", len(dec.removed))
            else:
                self._apply_one_resize(dec)
            shrank = shrank or bool(dec.removed)
        return shrank

    def _apply_one_resize(self, dec: ResizeDecision) -> None:
        job = dec.job
        now = self.sim.now
        p = self.profile
        self.master_acct.charge_cpu(
            p.launch_cpu_per_node_us / 1e6 * (len(dec.added) + len(dec.removed))
        )
        if dec.added:
            for nid in dec.added:
                self.cluster.node(nid).allocate(job.job_id)
            job.grow(now, dec.added)
            self.resize_grows += 1
        if dec.removed:
            job.shrink(now, dec.removed)
            for nid in dec.removed:
                node = self.cluster.node(nid)
                if node.running_job == job.job_id:
                    node.release()
            self.resize_shrinks += 1
        self._retime(job)

    def _retime(self, job: Job) -> None:
        """Refresh the reservation belief and the work-loop timer.

        ``job.alloc_node_seconds`` was just brought up to date by
        grow/shrink, so the remaining kill budget (node-seconds against
        the wall limit at the *requested* width) divided by the new
        width is the new believed wall deadline.
        """
        width = max(len(job.allocated_nodes), 1)
        remaining_kill = max(job.limit_s * job.n_nodes - job.alloc_node_seconds, 0.0)
        self.pool.retime(job.job_id, self.sim.now + remaining_kill / width)
        proc = self._job_procs.get(job.job_id)
        if job.job_id in self._resize_ok and proc is not None and proc.is_alive:
            proc.interrupt(cause=RESIZE_CAUSE)

    def _malleable_work(self, job: Job) -> t.Generator:
        """Interruptible work loop: a width-``w`` allocation burns ``w``
        node-seconds per second of a fixed total (work conservation, the
        DMR model) — growing shortens the remaining wall clock, shrinking
        stretches it.  Resize interrupts retime; any other interrupt
        propagates to the kill path.
        """
        work = float(job.n_nodes) * job.effective_runtime_s
        self._resize_ok.add(job.job_id)
        try:
            while work > 1e-9:
                width = max(len(job.allocated_nodes), 1)
                seg_start = self.sim.now
                try:
                    yield self.sim.timeout(work / width)
                except ProcessInterrupt as intr:
                    if intr.cause != RESIZE_CAUSE:
                        raise
                    work -= (self.sim.now - seg_start) * width
                else:
                    work = 0.0
        finally:
            self._resize_ok.discard(job.job_id)

    # -- the job lifecycle process (reference path) ---------------------------
    # The flat FSM in repro.rm.lifecycle is the default engine; this
    # generator is kept selectable (lifecycle="generator") as the
    # readable reference the lifecycle-equivalence relation checks the
    # FSM against, phase for phase.
    def _run_job(self, job: Job, nodes: tuple[int, ...]) -> t.Generator:
        submit_like = self.sim.now  # resources held from this instant
        teardown = False
        try:
            p = self.profile
            self.master_acct.charge_cpu(
                p.launch_cpu_ms / 1e3 + p.launch_cpu_per_node_us / 1e6 * len(nodes)
            )
            launch = self._broadcast(MessageKind.JOB_LAUNCH, nodes)
            self._bcast_tally.record(launch.makespan_s)
            yield self.sim.timeout(launch.makespan_s)
            job.start(self.sim.now, nodes)
            self.master_acct.set_tracked(jobs=len(self.pool.running) + len(self.queue))
            if job.malleable:
                yield from self._malleable_work(job)
            else:
                yield self.sim.timeout(job.effective_runtime_s)
            # A crashed master cannot process the completion: the job's
            # resources stay occupied until the daemon is back.
            if self.master_down:
                yield self.sim.timeout(self._crashed_until - self.sim.now)
            end_state = JobState.TIMEOUT if job.will_timeout else JobState.COMPLETED
            # Resizes may have changed the allocation since launch.
            term_targets = job.allocated_nodes or nodes
            term = self._broadcast(MessageKind.JOB_TERMINATE, term_targets)
            self._bcast_tally.record(term.makespan_s)
            yield self.sim.timeout(term.makespan_s)
            job.finish(self.sim.now, end_state)
        except ProcessInterrupt:
            # Node failure killed the job mid-flight.
            if job.state is JobState.RUNNING:
                job.finish(self.sim.now, JobState.FAILED)
            elif job.state is JobState.PENDING:
                job.state = JobState.FAILED
                job.end_time = self.sim.now
        except GeneratorExit:
            # Simulator teardown: the run ended with this job in flight
            # and the generator is being closed (typically by GC long
            # after the run).  No bookkeeping — the simulation is over,
            # and a *later* run's telemetry session may be active, so a
            # release here would count scheduler passes into it.
            teardown = True
            raise
        finally:
            if not teardown:
                self._release(job, nodes, submit_like)

    def _release(self, job: Job, nodes: tuple[int, ...], held_since: float) -> None:
        self._job_procs.pop(job.job_id, None)
        # The pool record, not the launch-time tuple, is the allocation
        # of record — resizes may have changed it since the job started.
        released = self.pool.release(job.job_id)
        for nid in released:
            node = self.cluster.node(nid)
            if node.running_job == job.job_id:
                node.release()
        self._occupation.record(self.sim.now - job.submit_time)
        self.master_acct.set_tracked(jobs=len(self.pool.running) + len(self.queue))
        if self.estimator is not None and job.end_time is not None:
            self.estimator.observe(job, self.sim.now)
        self._schedule_pass()

    # -- broadcast dispatch ----------------------------------------------------
    def _broadcast(self, kind: MessageKind, targets: t.Sequence[int]) -> BroadcastResult:
        """Deliver ``kind`` to ``targets``; subclasses override routing."""
        p = self.profile
        size = DEFAULT_SIZES[kind]
        root = self.cluster.master.node_id
        n = len(targets)
        # Synchronous slave ack/prolog wait: serial pays per node, a star
        # amortises over its worker pool, a tree only per level.
        if p.launch_structure is LaunchStructure.SERIAL:
            self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * n)
            telemetry.count("rm.master.msgs", n)
            ack_wait = p.launch_ack_s * n
        elif p.launch_structure is LaunchStructure.STAR:
            self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * n)
            telemetry.count("rm.master.msgs", n)
            ack_wait = p.launch_ack_s * n / p.star_concurrency
        elif p.launch_structure is LaunchStructure.TREE:
            # master only seeds the first layer; relays do the rest
            self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * min(p.tree_width, n))
            telemetry.count("rm.master.msgs", min(p.tree_width, n))
            ack_wait = p.launch_ack_s * max(tree_depth_estimate(n, p.tree_width), 1)
        else:
            raise ConfigurationError(
                f"profile {p.name}: {p.launch_structure} needs a subclass override"
            )
        result = self._launch_engine.simulate(root, list(targets), size, self.fabric)
        result.makespan_s += ack_wait
        concurrent = min(len(targets), p.star_concurrency)
        if result.makespan_s > 0:
            self.master_acct.sockets.pulse(concurrent, result.makespan_s)
        tel = telemetry.active()
        if tel is not None:
            tel.count("rm.broadcasts")
            tel.observe("rm.broadcast.makespan_s", result.makespan_s)
            if result.failed:
                tel.count("rm.broadcast.undelivered", len(result.failed))
        return result

    # -- heartbeats ------------------------------------------------------------
    def _heartbeat_loop(self) -> t.Generator:
        p = self.profile
        while True:
            yield self.sim.timeout(p.heartbeat_interval_s)
            if not self.master_down:
                self._heartbeat_round()

    def _heartbeat_round(self) -> None:
        """Cost of one health sweep; subclasses override the satellite path."""
        telemetry.count("rm.heartbeat_rounds")
        p = self.profile
        n = self.cluster.n_nodes
        if p.heartbeat_style is HeartbeatStyle.DIRECT:
            self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * n)
            telemetry.count("rm.master.msgs", n)
        elif p.heartbeat_style is HeartbeatStyle.TREE:
            # seed the fan-out + aggregate the responses
            self.master_acct.charge_cpu(
                p.rpc_cpu_us / 1e6 * p.tree_width + 0.2 * p.rpc_cpu_us / 1e6 * n
            )
            telemetry.count("rm.master.msgs", min(p.tree_width, n))
        else:
            raise ConfigurationError(
                f"profile {p.name}: {p.heartbeat_style} needs a subclass override"
            )
        if p.burst_socket_frac > 0:
            self.master_acct.sockets.pulse(int(p.burst_socket_frac * n), 1.0)

    # -- background user traffic ------------------------------------------------
    def _user_rpc_loop(self) -> t.Generator:
        rng = self.sim.rng.stream(f"{self.rm_name}.user_rpc")
        while True:
            yield self.sim.timeout(rng.exponential(1.0 / self.user_rpc_rate))
            self.master_acct.charge_cpu(self.profile.user_rpc_cpu_ms / 1e3)
            self.master_acct.sockets.pulse(1, self.estimated_response_time())

    def estimated_response_time(self) -> float:
        """User-visible RPC latency under the current master load.

        An M/M/1-style blow-up: service time inflated by 1/(1-ρ) where ρ
        is the recent CPU utilisation — this is what the §II-B
        motivation numbers (27 s responses at 20K+ nodes) come from.
        """
        service = self.profile.user_rpc_cpu_ms / 1e3
        rho = min(self.master_acct.cpu_util.last(), 0.999)
        return service / (1.0 - rho)

    # -- failures -----------------------------------------------------------------
    def _on_failure_event(self, kind: str, node_ids: t.Sequence[int], when: float) -> None:
        # Master/satellite failures carry non-compute ids the scheduler
        # pool does not manage; their handling lives elsewhere.
        if kind == "recover":
            for nid in node_ids:
                if self.pool.has_node(nid):
                    self.pool.mark_up(nid)
            return
        killed: set[int] = set()
        for nid in node_ids:
            if not self.pool.has_node(nid):
                continue
            victim = self.pool.mark_down(nid)
            if victim is None:
                continue
            rec = self.pool.running.get(victim)
            job = rec.job if rec is not None else None
            if (
                job is not None
                and victim not in killed
                and job.malleable
                and job.state is JobState.RUNNING
                and len(rec.node_ids) > job.min_nodes
            ):
                # Malleable job above its floor: contract around the
                # dead node instead of killing the whole job.
                self.pool.shrink_allocation(victim, (nid,))
                job.shrink(self.sim.now, (nid,))
                node = self.cluster.node(nid)
                if node.running_job == job.job_id:
                    node.release()
                self.resize_shrinks += 1
                telemetry.count("sched.shrink.on_failure")
                self._retime(job)
            else:
                killed.add(victim)
        for job_id in killed:
            proc = self._job_procs.get(job_id)
            if proc is not None and proc.is_alive:
                proc.interrupt(cause=f"node failure at {when}")

    # -- reporting ----------------------------------------------------------------
    def report(self, horizon_s: float | None = None) -> RmReport:
        """Collect the run's results (schedule metrics need ``horizon_s``)."""
        sched = (
            ScheduleMetrics.from_jobs(self.jobs, self.pool.n_total, horizon_s=horizon_s)
            if self.jobs
            else None
        )
        return RmReport(
            rm_name=self.rm_name,
            n_nodes=self.cluster.n_nodes,
            master=self.master_acct.summary(),
            satellites=[],
            schedule=sched,
            occupation_mean_s=self._occupation.mean,
            occupation_max_s=self._occupation.max,
            broadcast_mean_s=self._bcast_tally.mean,
            n_broadcasts=self._bcast_tally.n,
        )
