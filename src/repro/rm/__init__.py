"""Resource managers: one job-lifecycle engine, many cost profiles.

The experiments of Section VII compare ESLURM against five production
RMs (Slurm, LSF, SGE, Torque, OpenPBS).  We reproduce them as a single
discrete-event engine (:mod:`repro.rm.base`) parameterised by a
:class:`~repro.rm.profiles.RMProfile` — per-RPC CPU cost, per-node
state size, connection behaviour, heartbeat and broadcast strategy —
so Fig. 7/9's resource-usage orderings *emerge* from message counts ×
unit costs rather than being drawn.

:class:`~repro.rm.centralized.CentralizedRM` is the classical
master-slave engine; :class:`~repro.rm.eslurm.EslurmRM` adds the
satellite layer (Section III): dynamic satellite allocation (Eq. 1),
the Fig. 2 satellite state machine, round-robin failover with master
takeover, and FP-Tree broadcasting.
"""

from repro.rm.accounting import DaemonAccounting
from repro.rm.base import ResourceManager, RmReport
from repro.rm.centralized import CentralizedRM
from repro.rm.eslurm import EslurmRM
from repro.rm.profiles import RM_PROFILES, RMProfile
from repro.rm.satellite import SatelliteEvent, SatellitePool, SatelliteState

__all__ = [
    "DaemonAccounting",
    "ResourceManager",
    "RmReport",
    "CentralizedRM",
    "EslurmRM",
    "RMProfile",
    "RM_PROFILES",
    "SatellitePool",
    "SatelliteState",
    "SatelliteEvent",
]
