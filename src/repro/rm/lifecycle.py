"""Flat, table-driven FSM job lifecycle — the hot-path twin of
:meth:`repro.rm.base.ResourceManager._run_job`.

The generator lifecycle pays, per job, a bootstrap event, a ``Timeout``
allocation + ``Process._resume`` round-trip per phase, a completion
event, and (on kill/resize) an interrupt event carrying an exception.
At paper scale — 10K jobs over a 16K-node day — that dispatch machinery
*is* the remaining hot path (ROADMAP: "per-event Python dispatch in the
process/generator layer").

:class:`JobLifecycle` replaces all of it with one re-armable
:class:`~repro.simkit.events.Timer` per job and a phase table of plain
bound-method callbacks:

    LAUNCH --timer--> WORK --timer--> (HOLD --timer-->) TERM --timer--> DONE

* **LAUNCH**: launch CPU charged, launch broadcast computed, timer armed
  for the broadcast makespan; on fire the job starts.
* **WORK**: rigid jobs arm one timer for ``effective_runtime_s``;
  malleable jobs arm per-segment timers over a work-conserving budget
  (``n_nodes × effective_runtime_s`` node-seconds, the DMR model) and
  resize retiming is an explicit cancel + re-arm instead of a
  ``ProcessInterrupt`` thrown through the generator.
* **HOLD**: a crashed master cannot process the completion — the job's
  resources stay occupied until the daemon is back (same single-hold
  semantics as the generator: the crash window is checked once, when
  work completes).
* **TERM**: end state decided, terminate broadcast computed, timer armed
  for its makespan; on fire the job finishes and releases.

Kills (node failure, master-crash orphaning) arrive through
:meth:`JobLifecycle.interrupt` — same entry point the generator path
uses — and run synchronously: the pending timer is lazily cancelled and
the job fails/releases immediately, which lands at the same simulated
time as the generator's same-tick URGENT interrupt delivery.
Interrupting a DONE lifecycle is a silent no-op, mirroring the
``triggered`` guard that makes a late generator interrupt delivery
no-op (see :meth:`repro.simkit.process.Process.interrupt`).

The generator path stays selectable (``lifecycle="generator"``) as the
reference implementation; the ``lifecycle-equivalence`` oracle relation
(:mod:`repro.oracle.differential`) proves the two produce identical
per-job start/end times, end states, node assignments and schedule
metrics on seeded workloads, including malleable + failure + crash
scenarios.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError
from repro.network.message import MessageKind
from repro.sched.job import Job, JobState
from repro.simkit.events import Timer

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rm.base import ResourceManager

#: interrupt cause the engine uses to retime a malleable job's work
#: loop after a grow/shrink — anything else kills the job
RESIZE_CAUSE = "resize"

# Phase indices — the FSM table in ``_TRANSITIONS`` is keyed on these.
LAUNCH, WORK, HOLD, TERM, DONE = range(5)
PHASE_NAMES = ("launch", "work", "hold", "term", "done")

#: below this many node-seconds a malleable work budget counts as spent
#: (same epsilon as the generator loop's ``while work > 1e-9``)
_WORK_EPS = 1e-9


class JobLifecycle:
    """One job's flattened lifecycle on the kernel's timer lane.

    API-compatible with the :class:`~repro.simkit.process.Process` the
    engine used to store in ``_job_procs``: the failure/crash/resize
    paths only touch :attr:`is_alive` and :meth:`interrupt`, so they
    drive either implementation unchanged.
    """

    __slots__ = (
        "rm",
        "job",
        "nodes",
        "phase",
        "timer",
        "submit_like",
        "work",
        "seg_start",
        "seg_width",
        "end_state",
    )

    def __init__(self, rm: "ResourceManager", job: Job, nodes: tuple[int, ...]) -> None:
        self.rm = rm
        self.job = job
        self.nodes = nodes
        self.phase = LAUNCH
        self.timer: Timer | None = None
        self.submit_like = rm.sim.now  # resources held from this instant
        # Malleable work-segment state (work-conservation bookkeeping).
        self.work = 0.0
        self.seg_start = 0.0
        self.seg_width = 1
        self.end_state: JobState | None = None

    # -- Process-compatible surface ------------------------------------
    @property
    def is_alive(self) -> bool:
        """True until the job has finished/failed and released."""
        return self.phase != DONE

    @property
    def name(self) -> str:
        return f"job{self.job.job_id}"

    def interrupt(self, cause: t.Any = None) -> None:
        """Kill the job — or retime its work segment on a resize.

        Synchronous, unlike the generator's deferred URGENT delivery;
        both land at the same simulated time.  A DONE lifecycle ignores
        the call (the generator's late delivery no-ops the same way via
        the ``triggered`` guard).
        """
        if self.phase == DONE:
            return
        if cause == RESIZE_CAUSE and self.phase == WORK and self.job.malleable:
            self._retime_work()
            return
        self._kill()

    # -- lifecycle entry -----------------------------------------------
    def begin(self) -> None:
        """Charge launch CPU, fire the launch broadcast, arm its timer."""
        rm = self.rm
        p = rm.profile
        rm.master_acct.charge_cpu(
            p.launch_cpu_ms / 1e3 + p.launch_cpu_per_node_us / 1e6 * len(self.nodes)
        )
        launch = rm._broadcast(MessageKind.JOB_LAUNCH, self.nodes)
        rm._bcast_tally.record(launch.makespan_s)
        self._arm(launch.makespan_s)

    # -- timer plumbing ------------------------------------------------
    def _arm(self, delay: float) -> None:
        timer = self.timer
        if timer is None or timer.cancelled:
            # First phase, or the previous timer was lazily cancelled
            # (resize retime): its stale heap entry forbids re-arming the
            # same object, so a fresh one replaces it (see Timer.arm).
            timer = self.rm.sim.timer(self._on_timer, label=f"job{self.job.job_id}")
            self.timer = timer
        timer.arm(delay)

    def _on_timer(self) -> None:
        _TRANSITIONS[self.phase](self)

    # -- phase transitions ---------------------------------------------
    def _on_launched(self) -> None:
        rm, job = self.rm, self.job
        job.start(rm.sim.now, self.nodes)
        rm.master_acct.set_tracked(jobs=len(rm.pool.running) + len(rm.queue))
        self.phase = WORK
        if job.malleable:
            self.work = float(job.n_nodes) * job.effective_runtime_s
            rm._resize_ok.add(job.job_id)
            self._arm_work_segment()
        else:
            self._arm(job.effective_runtime_s)

    def _arm_work_segment(self) -> None:
        """One interruptible segment: burns ``width`` node-seconds per
        second of the remaining budget at the current allocation."""
        job = self.job
        self.seg_width = max(len(job.allocated_nodes), 1)
        self.seg_start = self.rm.sim.now
        self._arm(self.work / self.seg_width)

    def _retime_work(self) -> None:
        """A grow/shrink landed mid-segment: deduct what the old width
        burned, then restart the segment at the new width — the explicit
        form of the generator's ``ProcessInterrupt(RESIZE_CAUSE)``."""
        rm = self.rm
        self.work -= (rm.sim.now - self.seg_start) * self.seg_width
        timer = self.timer
        if timer is not None and timer.pending and not timer.cancelled:
            timer.cancel()
        if self.work > _WORK_EPS:
            self._arm_work_segment()
        else:
            # The old width finished the budget exactly at the resize
            # instant — proceed as the generator loop's exit does.
            self.work = 0.0
            self._end_work()

    def _on_work_done(self) -> None:
        self.work = 0.0
        self._end_work()

    def _end_work(self) -> None:
        rm, job = self.rm, self.job
        if job.malleable:
            rm._resize_ok.discard(job.job_id)
        # A crashed master cannot process the completion: the job's
        # resources stay occupied until the daemon is back.
        if rm.master_down:
            self.phase = HOLD
            self._arm(rm._crashed_until - rm.sim.now)
            return
        self._start_terminate()

    def _on_hold_done(self) -> None:
        self._start_terminate()

    def _start_terminate(self) -> None:
        rm, job = self.rm, self.job
        self.end_state = JobState.TIMEOUT if job.will_timeout else JobState.COMPLETED
        # Resizes may have changed the allocation since launch.
        term_targets = job.allocated_nodes or self.nodes
        term = rm._broadcast(MessageKind.JOB_TERMINATE, term_targets)
        rm._bcast_tally.record(term.makespan_s)
        self.phase = TERM
        self._arm(term.makespan_s)

    def _on_term_done(self) -> None:
        rm, job = self.rm, self.job
        job.finish(rm.sim.now, t.cast(JobState, self.end_state))
        self.phase = DONE
        rm._release(job, self.nodes, self.submit_like)

    def _on_done(self) -> None:  # pragma: no cover - table completeness
        raise SimulationError(f"timer fired on finished lifecycle {self.name!r}")

    # -- kill path -----------------------------------------------------
    def _kill(self) -> None:
        """Node failure / master crash killed the job mid-flight."""
        rm, job = self.rm, self.job
        if self.phase == WORK and job.malleable:
            rm._resize_ok.discard(job.job_id)
        timer = self.timer
        if timer is not None and timer.pending and not timer.cancelled:
            timer.cancel()
        self.phase = DONE
        if job.state is JobState.RUNNING:
            job.finish(rm.sim.now, JobState.FAILED)
        elif job.state is JobState.PENDING:
            job.state = JobState.FAILED
            job.end_time = rm.sim.now
        rm._release(job, self.nodes, self.submit_like)

    # -- snapshot identity ---------------------------------------------
    def snapshot_state(self) -> dict[str, t.Any]:
        """Structural state for :mod:`repro.snapshot` capture digests.

        Replay-stable: phases, budgets and segment marks are functions
        of simulated time only, so a rebuilt world paused at the same
        event boundary reports byte-identical lifecycle state.
        """
        timer = self.timer
        return {
            "phase": PHASE_NAMES[self.phase],
            "nodes": list(self.nodes),
            "work": self.work,
            "seg_start": self.seg_start,
            "seg_width": self.seg_width,
            "end_state": None if self.end_state is None else self.end_state.name,
            "timer": None if timer is None else timer.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobLifecycle {self.name!r} {PHASE_NAMES[self.phase]}>"


#: the FSM table: phase index -> transition run when the phase's timer fires
_TRANSITIONS: tuple[t.Callable[[JobLifecycle], None], ...] = (
    JobLifecycle._on_launched,
    JobLifecycle._on_work_done,
    JobLifecycle._on_hold_done,
    JobLifecycle._on_term_done,
    JobLifecycle._on_done,
)
