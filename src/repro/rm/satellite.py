"""Satellite nodes: state machine, pool, Eq. 1 allocation, failover.

Satellite semantics from Section III:

* satellites are stateless bidirectional buffers between master and
  slaves; they relay broadcasts and aggregate responses;
* the master tracks each satellite through the state machine of Fig. 2
  / Table II (UNKNOWN, RUNNING, BUSY, FAULT, DOWN driven by BT-*/HB-*
  events, SHUTDOWN, and a 20-minute FAULT timeout);
* only RUNNING satellites receive broadcast tasks;
* Eq. 1 picks how many satellites relay a broadcast to ``s`` slaves::

      N = 1          if s <= w
          ceil(s/w)  if w < s < m·w
          m          if s >= m·w

* a satellite failing mid-task is retried on the next satellite in
  round-robin order; after ``max_reallocations`` (2) the master takes
  the task over itself.
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass

from repro.cluster.node import Node
from repro.cluster.spec import Cluster
from repro.errors import ConfigurationError
from repro.rm.accounting import DaemonAccounting
from repro.rm.profiles import RMProfile
from repro.simkit.core import Simulator
from repro.telemetry import facade as telemetry

#: FAULT -> DOWN after this long without recovering (Table II: >= 20 min).
FAULT_TIMEOUT_S = 20 * 60.0


class SatelliteState(enum.Enum):
    UNKNOWN = "unknown"
    RUNNING = "running"
    BUSY = "busy"
    FAULT = "fault"
    DOWN = "down"


class SatelliteEvent(enum.Enum):
    BT_START = "bt-start"  # a broadcast task was assigned
    BT_SUCCESS = "bt-success"
    BT_FAILURE = "bt-failure"
    HB_SUCCESS = "hb-success"
    HB_FAILURE = "hb-failure"
    SHUTDOWN = "shutdown"
    TIMEOUT = "timeout"


#: Observer of one state-machine step: ``(daemon, old, event, new)``.
#: The chaos invariant layer subscribes here to audit every transition.
TransitionObserver = t.Callable[
    ["SatelliteDaemon", "SatelliteState", "SatelliteEvent", "SatelliteState"], None
]

#: (state, event) -> next state.  Unlisted pairs keep the state.
_TRANSITIONS: dict[tuple[SatelliteState, SatelliteEvent], SatelliteState] = {
    (SatelliteState.UNKNOWN, SatelliteEvent.HB_SUCCESS): SatelliteState.RUNNING,
    (SatelliteState.UNKNOWN, SatelliteEvent.HB_FAILURE): SatelliteState.FAULT,
    (SatelliteState.RUNNING, SatelliteEvent.BT_START): SatelliteState.BUSY,
    (SatelliteState.RUNNING, SatelliteEvent.HB_FAILURE): SatelliteState.FAULT,
    (SatelliteState.BUSY, SatelliteEvent.BT_SUCCESS): SatelliteState.RUNNING,
    (SatelliteState.BUSY, SatelliteEvent.BT_FAILURE): SatelliteState.FAULT,
    (SatelliteState.BUSY, SatelliteEvent.HB_FAILURE): SatelliteState.FAULT,
    (SatelliteState.FAULT, SatelliteEvent.HB_SUCCESS): SatelliteState.RUNNING,
    (SatelliteState.FAULT, SatelliteEvent.TIMEOUT): SatelliteState.DOWN,
}


@dataclass
class SatelliteStats:
    """Operational counters behind Table VI."""

    tasks_received: int = 0
    nodes_in_tasks: int = 0
    tasks_failed: int = 0

    @property
    def avg_nodes_per_task(self) -> float:
        return self.nodes_in_tasks / self.tasks_received if self.tasks_received else 0.0


class SatelliteDaemon:
    """One satellite: node handle + state machine + accounting."""

    def __init__(self, sim: Simulator, node: Node, profile: RMProfile) -> None:
        self.sim = sim
        self.node = node
        self.state = SatelliteState.UNKNOWN
        self.acct = DaemonAccounting(sim, profile, f"satellite.{node.name}")
        self.stats = SatelliteStats()
        self._fault_since: float | None = None
        #: transition audit hooks (empty outside chaos/invariant runs)
        self.transition_observers: list[TransitionObserver] = []

    @property
    def fault_since(self) -> float | None:
        """When the current FAULT spell began (None outside FAULT)."""
        return self._fault_since

    def handle(self, event: SatelliteEvent) -> SatelliteState:
        """Apply one event; returns the new state."""
        old = self.state
        if event is SatelliteEvent.SHUTDOWN:
            new = SatelliteState.DOWN
            self._fault_since = None
        else:
            new = _TRANSITIONS.get((old, event), old)
            if new is SatelliteState.FAULT and old is not SatelliteState.FAULT:
                self._fault_since = self.sim.now
            elif new is not SatelliteState.FAULT:
                self._fault_since = None
        self.state = new
        for observer in self.transition_observers:
            observer(self, old, event, new)
        return new

    def heartbeat(self) -> None:
        """Master-driven health check: emits HB events from liveness and
        escalates a long FAULT to DOWN (Table II's TIMEOUT)."""
        if self.state is SatelliteState.DOWN:
            return
        if self.node.responsive:
            self.handle(SatelliteEvent.HB_SUCCESS)
        else:
            self.handle(SatelliteEvent.HB_FAILURE)
        if (
            self.state is SatelliteState.FAULT
            and self._fault_since is not None
            and self.sim.now - self._fault_since >= FAULT_TIMEOUT_S
        ):
            self.handle(SatelliteEvent.TIMEOUT)

    def revive(self) -> None:
        """Administrator intervention for a DOWN satellite."""
        self.node.recover()
        self.state = SatelliteState.UNKNOWN
        self._fault_since = None


class SatellitePool:
    """The master's view of all satellites: allocation and failover."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        profile: RMProfile,
        width: int | None = None,
        max_reallocations: int = 2,
    ) -> None:
        if not cluster.satellites:
            raise ConfigurationError("ESLURM needs at least one satellite node")
        self.sim = sim
        self.cluster = cluster
        self.width = width or profile.tree_width
        self.max_reallocations = max_reallocations
        self.daemons = [SatelliteDaemon(sim, node, profile) for node in cluster.satellites]
        # Satellites keep full cluster state for relaying (Table VI's
        # large satellite vmem): declare it for the memory model.
        for d in self.daemons:
            d.acct.set_tracked(nodes=cluster.n_nodes)
        self._rr = 0
        #: broadcast tasks the master had to execute itself
        self.master_takeovers = 0
        #: Eq. 1 audit hooks, called ``(s, n, width, m)`` per evaluation
        self.eq1_observers: list[t.Callable[[int, int, int, int], None]] = []

    def __len__(self) -> int:
        return len(self.daemons)

    # -- Eq. 1 -------------------------------------------------------------
    def compute_n(self, s: int) -> int:
        """Number of satellites for a broadcast to ``s`` slave nodes."""
        w, m = self.width, len(self.daemons)
        if s <= 0:
            n = 0
        elif s <= w:
            n = 1
        elif s >= m * w:
            n = m
        else:
            n = min(-(-s // w), m)
        tel = telemetry.active()
        if tel is not None:
            tel.count("rm.eq1.evals")
            tel.observe("rm.eq1.satellites", n)
        for observer in self.eq1_observers:
            observer(s, n, w, m)
        return n

    @staticmethod
    def split(targets: t.Sequence[int], n: int) -> list[list[int]]:
        """Equal contiguous partition of the target list into ``n`` parts."""
        if n <= 0:
            return []
        base, extra = divmod(len(targets), n)
        parts = []
        start = 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            parts.append(list(targets[start : start + size]))
            start += size
        return [p for p in parts if p]

    # -- selection & failover ------------------------------------------------
    def heartbeat_all(self) -> None:
        for d in self.daemons:
            d.heartbeat()

    def running(self) -> list[SatelliteDaemon]:
        return [d for d in self.daemons if d.state is SatelliteState.RUNNING]

    def next_running(self) -> SatelliteDaemon | None:
        """Round-robin pick among RUNNING satellites (None if none)."""
        n = len(self.daemons)
        for _ in range(n):
            d = self.daemons[self._rr % n]
            self._rr += 1
            if d.state is SatelliteState.RUNNING:
                return d
        return None

    def assign_task(self, n_target_nodes: int) -> SatelliteDaemon | None:
        """Pick a satellite for a broadcast task, with failover.

        Satellites that turn out dead get BT_FAILURE (-> FAULT) and the
        task moves to the next candidate; after ``max_reallocations``
        failed attempts the caller must let the master take over
        (returns ``None``).
        """
        attempts = 0
        while attempts <= self.max_reallocations:
            d = self.next_running()
            if d is None:
                break
            d.handle(SatelliteEvent.BT_START)
            if d.node.responsive:
                d.stats.tasks_received += 1
                d.stats.nodes_in_tasks += n_target_nodes
                if attempts:
                    telemetry.count("rm.satellite.reallocations", attempts)
                return d
            # Dead despite RUNNING state: failure during the task.
            d.stats.tasks_failed += 1
            d.handle(SatelliteEvent.BT_FAILURE)
            attempts += 1
        if attempts:
            telemetry.count("rm.satellite.reallocations", attempts)
        self.master_takeovers += 1
        telemetry.count("rm.satellite.master_takeovers")
        return None

    def summaries(self) -> list[dict[str, float]]:
        out = []
        for d in self.daemons:
            s = d.acct.summary()
            s["tasks_received"] = float(d.stats.tasks_received)
            s["avg_nodes_per_task"] = d.stats.avg_nodes_per_task
            out.append(s)
        return out
