"""ESLURM: the hierarchical RM with satellites, FP-Tree, and estimation.

Differences from the centralized engine, all per Section III–V:

* **broadcasts** never fan out from the master: the target list is
  split across N satellites (Eq. 1, round-robin over RUNNING ones);
  each satellite builds an FP-Tree over its sub-list and relays.  The
  master only pays for N satellite RPCs and N sockets;
* **satellite failover**: a satellite dying mid-task moves the task to
  the next satellite (at most twice), then the master takes over with
  a plain fan-out tree;
* **heartbeats** follow the same satellite path; their FP-Tree
  evaluation is cached against the cluster's liveness/alert versions
  (failures are rare, heartbeats are not);
* **job wall limits** come from the runtime-estimation framework when
  one is attached (``estimator="auto"`` builds the paper's default).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.spec import Cluster
from repro.estimate.framework import EslurmEstimator, EstimatorConfig
from repro.fptree.constructor import FPTreeBroadcast
from repro.fptree.predictor import FailurePredictor, MonitorAlertPredictor, NullPredictor
from repro.network.broadcast import BroadcastResult, MemoizedBroadcast
from repro.network.message import DEFAULT_SIZES, MessageKind
from repro.network.structures import TreeBroadcast
from repro.rm.base import ResourceManager
from repro.rm.profiles import ESLURM as ESLURM_PROFILE
from repro.rm.profiles import RMProfile
from repro.rm.satellite import SatelliteDaemon, SatelliteEvent, SatellitePool
from repro.simkit.core import Simulator
from repro.telemetry import facade as telemetry

#: Satellites hold relay state for the whole machine but almost no
#: per-job state; their memory constants differ from the master's.
SATELLITE_PROFILE = ESLURM_PROFILE.with_overrides(
    name="eslurm-satellite",
    base_vmem_mb=150.0,
    vmem_per_node_kb=350.0,
    vmem_per_job_kb=0.0,
    vmem_growth_mb_per_day=2.0,
    base_rss_mb=10.0,
    rss_per_node_kb=8.0,
    rss_per_job_kb=0.0,
)


class EslurmRM(ResourceManager):
    """The paper's resource manager (distributed structure + FP-Tree).

    Args:
        sim / cluster: as the base engine; the cluster must have been
            built with ``n_satellites >= 1``.
        profile: defaults to the calibrated ESLURM profile.
        estimator: a runtime estimator, ``"auto"`` for the paper's
            framework with deployment defaults, or ``None`` to schedule
            on user estimates (the FP-Tree-only ablation).
        use_fptree: ``False`` degrades satellite relays to plain trees
            (the paper's "ESLURM without FP-Tree" ablation).
        predictor: failure-prediction plugin for the FP-Tree
            (defaults to the monitoring-alert predictor).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        profile: RMProfile | None = None,
        estimator: t.Any = None,
        use_fptree: bool = True,
        predictor: FailurePredictor | None = None,
        **kwargs: t.Any,
    ) -> None:
        if estimator == "auto":
            # The direct default_rng(seed) derivation is frozen into the
            # golden traces; adopt() makes the stream visible to snapshot
            # getstate/setstate without changing a single draw.
            estimator = EslurmEstimator(
                EstimatorConfig(aea_gate=0.0, k_clusters=40),
                rng=sim.rng.adopt(
                    "eslurm.estimator", np.random.default_rng(sim.rng.seed)
                ),
            )
        super().__init__(sim, cluster, profile or ESLURM_PROFILE, estimator=estimator, **kwargs)
        self.sat_pool = SatellitePool(sim, cluster, SATELLITE_PROFILE)
        self.use_fptree = use_fptree
        if use_fptree:
            self.predictor = predictor or MonitorAlertPredictor(cluster)
        else:
            self.predictor = NullPredictor()
        #: one shared engine so FP-Tree construction statistics (the
        #: leaf-placement experiment of Section VII-A) accumulate; the
        #: inner tree evaluation is memoized against liveness versions.
        self._fp_engine = FPTreeBroadcast(
            self.predictor, width=self.profile.tree_width, memoize=True
        )
        self._takeover_engine = MemoizedBroadcast(TreeBroadcast(width=self.profile.tree_width))
        self._hb_cache_key: tuple[int, int, int] | None = None
        self._hb_cache_makespan = 0.0

    @property
    def fptree_stats(self):
        """Construction statistics (trees built, leaf placements)."""
        return self._fp_engine.stats

    @property
    def fp_constructor(self):
        """The shared FP-Tree constructor (chaos invariants hook here)."""
        return self._fp_engine.constructor

    #: each managed satellite costs the master about this much state,
    #: expressed in compute-node equivalents (Table V's slow growth of
    #: master memory/CPU with the satellite count)
    SATELLITE_NODE_EQUIV = 40

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        super().start()
        self.master_acct.set_tracked(
            nodes=self.cluster.n_nodes
            + self.SATELLITE_NODE_EQUIV * len(self.sat_pool.daemons)
        )
        for d in self.sat_pool.daemons:
            d.acct.start_sampler(self.sample_interval_s)
        # First heartbeat discovers the satellites (UNKNOWN -> RUNNING).
        self.sat_pool.heartbeat_all()

    # -- broadcast path ---------------------------------------------------------
    def _broadcast(self, kind: MessageKind, targets: t.Sequence[int]) -> BroadcastResult:
        size = DEFAULT_SIZES[kind]
        s = len(targets)
        if s == 0:
            return BroadcastResult("eslurm", 0.0, 0)
        n = max(self.sat_pool.compute_n(s), 1)
        parts = self.sat_pool.split(list(targets), n)
        p = self.profile
        # Master work: one RPC per satellite task + the list split.
        self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * len(parts))
        telemetry.count("rm.master.msgs", len(parts))
        dispatch_overhead = 0.001 * len(parts)  # serialised task sends
        makespans: list[float] = []
        failed: list[int] = []
        timeouts = 0
        # Assignment first (satellite state machine + takeovers keep
        # their sequential event order — no sim time passes in between),
        # then every relay tree evaluates in one batched forest walk.
        results: list[BroadcastResult | None] = [None] * len(parts)
        relays: list[tuple[int, SatelliteDaemon, list[int]]] = []
        for i, part in enumerate(parts):
            sat = self.sat_pool.assign_task(len(part))
            if sat is None:
                # No healthy satellite left: master takes the task over.
                res = self._takeover_engine.simulate(
                    self.cluster.master.node_id, part, size, self.fabric
                )
                self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * len(part))
                telemetry.count("rm.master.msgs", min(p.tree_width, len(part)))
                self.master_acct.sockets.pulse(
                    min(p.tree_width, len(part)), max(res.makespan_s, 1e-3)
                )
                results[i] = res
            else:
                # The relay itself cannot fail (liveness was just
                # checked and evaluation advances no sim time), so the
                # BUSY -> RUNNING transition lands here exactly as it
                # did after each sequential relay.
                sat.handle(SatelliteEvent.BT_SUCCESS)
                relays.append((i, sat, part))
        if relays:
            forest = self._fp_engine.simulate_forest(
                [(sat.node.node_id, part) for _, sat, part in relays], size, self.fabric
            )
            for (i, sat, part), res in zip(relays, forest):
                sat.acct.charge_cpu(p.rpc_cpu_us / 1e6 * len(part))
                sat.acct.sockets.pulse(
                    min(p.tree_width, len(part)), max(res.makespan_s, 1e-3)
                )
                results[i] = res
        for res in results:
            assert res is not None
            makespans.append(res.makespan_s)
            failed.extend(res.failed)
            timeouts += res.n_timeouts
        if makespans:
            self.master_acct.sockets.pulse(len(parts), max(max(makespans), 1e-3))
        # Per-level synchronous acks in the satellite relay trees.
        from repro.rm.base import tree_depth_estimate

        ack_wait = p.launch_ack_s * max(
            tree_depth_estimate(max(len(part) for part in parts), p.tree_width), 1
        )
        result = BroadcastResult(
            structure="eslurm-fptree" if self.use_fptree else "eslurm-tree",
            makespan_s=dispatch_overhead + ack_wait + max(makespans, default=0.0),
            n_targets=s,
            failed=tuple(failed),
            n_timeouts=timeouts,
        )
        tel = telemetry.active()
        if tel is not None:
            tel.count("rm.broadcasts")
            tel.observe("rm.broadcast.makespan_s", result.makespan_s)
            tel.observe("rm.broadcast.satellite_tasks", len(parts))
            if result.failed:
                tel.count("rm.broadcast.undelivered", len(result.failed))
        return result

    def _relay(self, sat: SatelliteDaemon, part: list[int], size: int) -> BroadcastResult:
        """One satellite relays ``part`` via its FP-Tree.

        Kept as the single-task form of the forest path in
        :meth:`_broadcast` (chaos/failover tests drive it directly).
        """
        res = self._fp_engine.simulate(sat.node.node_id, part, size, self.fabric)
        sat.acct.charge_cpu(self.profile.rpc_cpu_us / 1e6 * len(part))
        sat.acct.sockets.pulse(
            min(self.profile.tree_width, len(part)), max(res.makespan_s, 1e-3)
        )
        sat.handle(SatelliteEvent.BT_SUCCESS)
        return res

    # -- heartbeats -----------------------------------------------------------------
    def _heartbeat_round(self) -> None:
        telemetry.count("rm.heartbeat_rounds")
        p = self.profile
        self.sat_pool.heartbeat_all()
        running = self.sat_pool.running()
        n_sats = max(len(running), 1)
        # Master side: one RPC per satellite, nothing per slave.
        self.master_acct.charge_cpu(p.rpc_cpu_us / 1e6 * n_sats)
        telemetry.count("rm.master.msgs", n_sats)
        self.master_acct.sockets.pulse(n_sats, 1.0)
        # Satellite side: each relays the sweep over its share of nodes.
        n = self.cluster.n_nodes
        share = n / n_sats
        for d in running:
            d.acct.charge_cpu(p.rpc_cpu_us / 1e6 * share)
            d.acct.sockets.pulse(min(p.tree_width, int(share) or 1), 1.0)
        # FP-Tree makespan for the sweep: cached against liveness/alerts.
        key = (self.cluster.version, self.cluster.monitor.alert_count(), n_sats)
        if key != self._hb_cache_key:
            telemetry.count("rm.heartbeat.fptree_rebuilds")
            targets = self.cluster.compute_ids()
            parts = self.sat_pool.split(targets, n_sats)
            size = DEFAULT_SIZES[MessageKind.HEARTBEAT]
            sweep = self._fp_engine.simulate_forest(
                [(d.node.node_id, part) for d, part in zip(running, parts)],
                size,
                self.fabric,
            )
            self._hb_cache_makespan = max((r.makespan_s for r in sweep), default=0.0)
            self._hb_cache_key = key
        self.last_heartbeat_makespan_s = self._hb_cache_makespan

    # -- reporting ---------------------------------------------------------------------
    def report(self, horizon_s: float | None = None):
        rep = super().report(horizon_s=horizon_s)
        rep.satellites = self.sat_pool.summaries()
        return rep
