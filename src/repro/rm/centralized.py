"""The classical centralized (master-slave) resource manager.

Slurm, LSF, SGE, Torque and OpenPBS are all instances of this class
with their respective profiles — the base engine already implements
the centralized behaviour; this subclass exists to pin the name and to
offer the convenience constructor used throughout the benchmarks.
"""

from __future__ import annotations

import typing as t

from repro.cluster.spec import Cluster
from repro.errors import ConfigurationError
from repro.rm.base import ResourceManager
from repro.rm.profiles import RM_PROFILES, RMProfile
from repro.simkit.core import Simulator


class CentralizedRM(ResourceManager):
    """Master-slave RM; pick the production system via ``profile``."""

    @classmethod
    def from_name(
        cls,
        name: str,
        sim: Simulator,
        cluster: Cluster,
        **kwargs: t.Any,
    ) -> "CentralizedRM":
        """Build e.g. ``CentralizedRM.from_name("slurm", sim, cluster)``."""
        try:
            profile = RM_PROFILES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown RM {name!r}; choose from {sorted(RM_PROFILES)}"
            ) from None
        if name == "eslurm":
            raise ConfigurationError("use repro.rm.eslurm.EslurmRM for the eslurm profile")
        return cls(sim, cluster, profile, **kwargs)
