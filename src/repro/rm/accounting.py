"""Resource-usage accounting for RM daemons.

Fig. 7 and Fig. 9 plot, for the master (and satellite) daemons:
CPU utilisation and cumulative CPU time, virtual and real memory, and
concurrent TCP sockets — sampled once a second over 24 h.  This module
is the in-simulation recorder: the RM engine *charges* CPU for every
action it performs and *declares* its tracked state (nodes, jobs,
queued records), and the accounting turns those into the sampled
series using the daemon's cost profile.

Memory model::

    vmem = base + per_node·nodes + per_job·jobs + growth·elapsed_days
    rss  = rss_base + rss_per_node·nodes + rss_per_job·jobs

The growth term models the heap/cache growth production Slurm exhibits
(the paper watched slurmctld climb to 70 GB in a week on 20K nodes).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.network.sockets import ConnectionTracker
from repro.simkit.monitor import TimeSeries

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rm.profiles import RMProfile
    from repro.simkit.core import Simulator

DAY = 86_400.0


class DaemonAccounting:
    """Tracks one daemon's CPU / memory / socket usage over time."""

    def __init__(self, sim: "Simulator", profile: "RMProfile", owner: str) -> None:
        self.sim = sim
        self.profile = profile
        self.owner = owner
        self.start_time = sim.now
        self.cpu_time_s = 0.0
        self._busy_in_window = 0.0
        self.tracked_nodes = 0
        self.tracked_jobs = 0
        self.sockets = ConnectionTracker(sim, owner)
        self.cpu_util = TimeSeries(f"{owner}.cpu_util")
        self.cpu_series = TimeSeries(f"{owner}.cpu_time")
        self.vmem_series = TimeSeries(f"{owner}.vmem_mb")
        self.rss_series = TimeSeries(f"{owner}.rss_mb")
        self.socket_series = self.sockets.series
        self._sampler_started = False
        self._last_sample = sim.now

    # -- charging ---------------------------------------------------------
    def charge_cpu(self, seconds: float) -> None:
        """Record daemon CPU work (does not advance simulated time)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self.cpu_time_s += seconds
        self._busy_in_window += seconds

    def set_tracked(self, nodes: int | None = None, jobs: int | None = None) -> None:
        """Declare the daemon's current state size."""
        if nodes is not None:
            self.tracked_nodes = nodes
        if jobs is not None:
            self.tracked_jobs = jobs

    # -- instantaneous usage -------------------------------------------------
    def vmem_mb(self) -> float:
        p = self.profile
        days = (self.sim.now - self.start_time) / DAY
        return (
            p.base_vmem_mb
            + p.vmem_per_node_kb * self.tracked_nodes / 1024.0
            + p.vmem_per_job_kb * self.tracked_jobs / 1024.0
            + p.vmem_growth_mb_per_day * days
        )

    def rss_mb(self) -> float:
        p = self.profile
        return (
            p.base_rss_mb
            + p.rss_per_node_kb * self.tracked_nodes / 1024.0
            + p.rss_per_job_kb * self.tracked_jobs / 1024.0
        )

    # -- sampling ------------------------------------------------------------
    def start_sampler(self, interval_s: float = 1.0) -> None:
        """Arm the once-per-``interval`` sampler timer (idempotent).

        The paper samples once a second; benches on long horizons pass a
        coarser interval to keep series sizes manageable.  One re-armed
        :class:`~repro.simkit.events.Timer` replaces the historical
        generator loop — same fire times, no per-sample Timeout.
        """
        if self._sampler_started:
            return
        self._sampler_started = True

        def fire() -> None:
            self.sample()
            timer.arm(interval_s)

        timer = self.sim.timer(fire, label=f"{self.owner}.sampler")
        timer.arm(interval_s)

    def sample(self) -> None:
        """Record one sample of every series at the current time."""
        now = self.sim.now
        window = max(now - self._last_sample, 1e-9)
        util = min(self._busy_in_window / window, 1.0)
        self.cpu_util.record(now, util)
        self.cpu_series.record(now, self.cpu_time_s)
        self.vmem_series.record(now, self.vmem_mb())
        self.rss_series.record(now, self.rss_mb())
        self._busy_in_window = 0.0
        self._last_sample = now

    # -- summaries -------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        return {
            "cpu_time_min": self.cpu_time_s / 60.0,
            "cpu_util_mean": self.cpu_util.mean(),
            "vmem_mb": self.vmem_mb(),
            "rss_mb": self.rss_mb(),
            "sockets_mean": self.sockets.mean(),
            "sockets_peak": self.sockets.peak(),
        }
