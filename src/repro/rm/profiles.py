"""Per-RM cost profiles.

Each production RM the paper compares against behaves differently on
three axes: how much master CPU one slave interaction costs, how much
master state one tracked node/job costs, and how it talks to slaves
(persistent vs burst connections; direct vs tree vs satellite fan-out).
The constants below are calibrated so a 4K-node / 24 h run reproduces
Fig. 7's curves — Slurm's 10 GB of virtual memory, ESLURM's <2 GB vmem
and ~60 MB rss, OpenPBS/SGE's standing connection armies, LSF/Slurm's
1000-connection bursts — and so full-scale runs land in the ranges of
Fig. 9 and Tables V/VI.  Only orderings and ratios are claims; see
EXPERIMENTS.md.
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


class HeartbeatStyle(enum.Enum):
    """Who carries the periodic health-check traffic."""

    DIRECT = "direct"  # master polls every slave itself
    TREE = "tree"  # master seeds a fan-out tree (Slurm-style)
    SATELLITE = "satellite"  # master only talks to satellites (ESLURM)


class LaunchStructure(enum.Enum):
    """How job-launch/termination messages reach the allocated nodes."""

    SERIAL = "serial"  # one RPC after another (early PBS-family)
    STAR = "star"  # bounded pool of concurrent direct RPCs
    TREE = "tree"  # k-ary fan-out tree from the master
    SATELLITE_FPTREE = "satellite-fptree"  # ESLURM: satellites + FP-Tree


@dataclass(frozen=True)
class RMProfile:
    """Cost and behaviour constants of one resource manager.

    CPU costs are *master-daemon* charges; satellite charges reuse
    ``rpc_cpu_us`` on the satellite's own accounting.
    """

    name: str
    # -- CPU ------------------------------------------------------------
    rpc_cpu_us: float  # per slave interaction (heartbeat, status)
    launch_cpu_ms: float  # per job launched (credential build etc.)
    launch_cpu_per_node_us: float  # additional per allocated node
    sched_cpu_ms: float  # per scheduling pass
    user_rpc_cpu_ms: float  # per user request (squeue/sbatch)
    # -- memory -----------------------------------------------------------
    base_vmem_mb: float
    vmem_per_node_kb: float
    vmem_per_job_kb: float
    vmem_growth_mb_per_day: float
    base_rss_mb: float
    rss_per_node_kb: float
    rss_per_job_kb: float
    # -- connections ----------------------------------------------------
    persistent_socket_frac: float  # standing connections, fraction of n
    burst_socket_frac: float  # extra connections during a heartbeat round
    # -- behaviour ----------------------------------------------------------
    heartbeat_style: HeartbeatStyle
    heartbeat_interval_s: float
    launch_structure: LaunchStructure
    #: synchronous slave-side ack/prolog wait per launch RPC.  Serial
    #: launchers (PBS family) pay it once per node — which is what makes
    #: their job occupation time explode with job size in Fig. 7f;
    #: star launchers pay it per node divided by their worker pool;
    #: tree launchers only per level (relays overlap).
    launch_ack_s: float = 0.02
    tree_width: int = 32
    star_concurrency: int = 64
    scheduler_tick_s: float = 30.0
    #: master-daemon crash MTBF expressed in *node-hours*: a master
    #: managing n nodes crashes every crash_node_hours/n hours.  The
    #: paper observed production Slurm at 20K+ nodes crashing every
    #: ~42 h with >90-minute reboots (Sec. II-B); ESLURM "almost never".
    crash_node_hours: float = float("inf")
    reboot_minutes: float = 90.0
    #: probability a user request fails to connect, per 10K managed
    #: nodes (the paper measured ~38 % at 20K+ for production Slurm).
    #: Failed submissions are retried or abandoned — the load shedding
    #: that caves in a centralized RM's utilization at scale.
    submit_fail_per_10k_nodes: float = 0.0

    def __post_init__(self) -> None:
        if self.rpc_cpu_us < 0 or self.heartbeat_interval_s <= 0:
            raise ConfigurationError(f"profile {self.name}: invalid CPU/heartbeat values")
        if not 0.0 <= self.persistent_socket_frac <= 1.0:
            raise ConfigurationError(f"profile {self.name}: invalid socket fraction")
        if self.tree_width < 2 or self.star_concurrency < 1:
            raise ConfigurationError(f"profile {self.name}: invalid fan-out")

    def with_overrides(self, **kw: t.Any) -> "RMProfile":
        return replace(self, **kw)


#: Slurm 20.11: efficient CPU path, but heavyweight per-node state (the
#: 10 GB vmem of Fig. 7c) and bursty fan-out connections.
SLURM = RMProfile(
    name="slurm",
    submit_fail_per_10k_nodes=0.19,
    crash_node_hours=860_000.0,
    reboot_minutes=90.0,
    launch_ack_s=0.015,
    rpc_cpu_us=60.0,
    launch_cpu_ms=8.0,
    launch_cpu_per_node_us=120.0,
    sched_cpu_ms=3.0,
    user_rpc_cpu_ms=1.5,
    base_vmem_mb=350.0,
    vmem_per_node_kb=2400.0,
    vmem_per_job_kb=64.0,
    vmem_growth_mb_per_day=140.0,
    base_rss_mb=60.0,
    rss_per_node_kb=75.0,
    rss_per_job_kb=12.0,
    persistent_socket_frac=0.0,
    burst_socket_frac=0.25,
    heartbeat_style=HeartbeatStyle.TREE,
    heartbeat_interval_s=30.0,
    launch_structure=LaunchStructure.TREE,
)

#: IBM LSF 10: moderate everything, bursty connections.
LSF = RMProfile(
    name="lsf",
    submit_fail_per_10k_nodes=0.25,
    crash_node_hours=700_000.0,
    reboot_minutes=45.0,
    launch_ack_s=0.05,
    rpc_cpu_us=150.0,
    launch_cpu_ms=12.0,
    launch_cpu_per_node_us=250.0,
    sched_cpu_ms=5.0,
    user_rpc_cpu_ms=2.5,
    base_vmem_mb=500.0,
    vmem_per_node_kb=800.0,
    vmem_per_job_kb=96.0,
    vmem_growth_mb_per_day=60.0,
    base_rss_mb=120.0,
    rss_per_node_kb=110.0,
    rss_per_job_kb=16.0,
    persistent_socket_frac=0.0,
    burst_socket_frac=0.3,
    heartbeat_style=HeartbeatStyle.DIRECT,
    heartbeat_interval_s=60.0,
    launch_structure=LaunchStructure.STAR,
)

#: SGE 8.1: chatty protocol, standing connections to every execd.
SGE = RMProfile(
    name="sge",
    submit_fail_per_10k_nodes=0.5,
    crash_node_hours=160_000.0,
    reboot_minutes=30.0,
    launch_ack_s=0.12,
    rpc_cpu_us=700.0,
    launch_cpu_ms=25.0,
    launch_cpu_per_node_us=900.0,
    sched_cpu_ms=15.0,
    user_rpc_cpu_ms=4.0,
    base_vmem_mb=400.0,
    vmem_per_node_kb=500.0,
    vmem_per_job_kb=128.0,
    vmem_growth_mb_per_day=40.0,
    base_rss_mb=150.0,
    rss_per_node_kb=140.0,
    rss_per_job_kb=24.0,
    persistent_socket_frac=1.0,
    burst_socket_frac=0.0,
    heartbeat_style=HeartbeatStyle.DIRECT,
    heartbeat_interval_s=30.0,
    launch_structure=LaunchStructure.SERIAL,
)

#: Torque 6: PBS-family serial launch path, heavy per-RPC cost.
TORQUE = RMProfile(
    name="torque",
    submit_fail_per_10k_nodes=0.45,
    crash_node_hours=220_000.0,
    reboot_minutes=30.0,
    launch_ack_s=0.1,
    rpc_cpu_us=500.0,
    launch_cpu_ms=20.0,
    launch_cpu_per_node_us=800.0,
    sched_cpu_ms=12.0,
    user_rpc_cpu_ms=3.5,
    base_vmem_mb=300.0,
    vmem_per_node_kb=350.0,
    vmem_per_job_kb=96.0,
    vmem_growth_mb_per_day=30.0,
    base_rss_mb=100.0,
    rss_per_node_kb=120.0,
    rss_per_job_kb=20.0,
    persistent_socket_frac=0.4,
    burst_socket_frac=0.2,
    heartbeat_style=HeartbeatStyle.DIRECT,
    heartbeat_interval_s=45.0,
    launch_structure=LaunchStructure.SERIAL,
)

#: OpenPBS 20: like Torque with an even larger standing connection set.
OPENPBS = RMProfile(
    name="openpbs",
    submit_fail_per_10k_nodes=0.4,
    crash_node_hours=260_000.0,
    reboot_minutes=30.0,
    launch_ack_s=0.08,
    rpc_cpu_us=450.0,
    launch_cpu_ms=18.0,
    launch_cpu_per_node_us=700.0,
    sched_cpu_ms=10.0,
    user_rpc_cpu_ms=3.0,
    base_vmem_mb=350.0,
    vmem_per_node_kb=550.0,
    vmem_per_job_kb=112.0,
    vmem_growth_mb_per_day=35.0,
    base_rss_mb=110.0,
    rss_per_node_kb=130.0,
    rss_per_job_kb=20.0,
    persistent_socket_frac=0.8,
    burst_socket_frac=0.1,
    heartbeat_style=HeartbeatStyle.DIRECT,
    heartbeat_interval_s=30.0,
    launch_structure=LaunchStructure.SERIAL,
)

#: ESLURM: the master only ever talks to satellites, keeps a slimmer
#: per-node record, and leaks nothing day over day.
ESLURM = RMProfile(
    name="eslurm",
    submit_fail_per_10k_nodes=0.005,
    crash_node_hours=1e12,
    reboot_minutes=5.0,
    launch_ack_s=0.012,
    rpc_cpu_us=40.0,
    launch_cpu_ms=6.0,
    launch_cpu_per_node_us=8.0,  # master only splits the nodelist
    sched_cpu_ms=3.0,
    user_rpc_cpu_ms=1.2,
    base_vmem_mb=180.0,
    vmem_per_node_kb=430.0,
    vmem_per_job_kb=48.0,
    vmem_growth_mb_per_day=5.0,
    base_rss_mb=8.0,
    rss_per_node_kb=13.0,
    rss_per_job_kb=8.0,
    persistent_socket_frac=0.0,
    burst_socket_frac=0.0,  # bursts hit satellites, not the master
    heartbeat_style=HeartbeatStyle.SATELLITE,
    heartbeat_interval_s=30.0,
    launch_structure=LaunchStructure.SATELLITE_FPTREE,
)

RM_PROFILES: dict[str, RMProfile] = {
    p.name: p for p in (SLURM, LSF, SGE, TORQUE, OPENPBS, ESLURM)
}
