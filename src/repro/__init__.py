"""ESLURM reproduction library.

A full reimplementation-as-simulation of the SC 2022 paper
*Towards Scalable Resource Management for Supercomputers* (Dai et al.):
a hierarchical HPC resource manager (master + satellite + slave nodes),
a failure-prediction-based broadcast tree (FP-Tree), and a
machine-learning job-runtime-estimation framework, together with the
substrates they need (discrete-event kernel, cluster model, network
fabric, schedulers, calibrated workload generators) and the benchmark
harness that regenerates every table and figure in the paper.

Quick start::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(rm="eslurm", n_nodes=1024, seed=7))
    print(result.report.summary())

Top-level names are loaded lazily so that ``import repro.simkit`` does
not pull in the whole library.
"""

from __future__ import annotations

import typing as t

from repro._version import __version__

__all__ = [
    "__version__",
    "SimulationConfig",
    "SimulationResult",
    "TelemetryConfig",
    "run_simulation",
    "quick_cluster",
    "build_rm",
    "run_rm_day",
    "CentralizedRM",
    "EslurmRM",
    "RM_PROFILES",
]

_LAZY: dict[str, tuple[str, str]] = {
    "SimulationConfig": ("repro.api", "SimulationConfig"),
    "SimulationResult": ("repro.api", "SimulationResult"),
    "TelemetryConfig": ("repro.api", "TelemetryConfig"),
    "run_simulation": ("repro.api", "run_simulation"),
    "quick_cluster": ("repro.api", "quick_cluster"),
    "build_rm": ("repro.api", "build_rm"),
    "run_rm_day": ("repro.api", "run_rm_day"),
    "CentralizedRM": ("repro.rm.centralized", "CentralizedRM"),
    "EslurmRM": ("repro.rm.eslurm", "EslurmRM"),
    "RM_PROFILES": ("repro.rm.profiles", "RM_PROFILES"),
}


def __getattr__(name: str) -> t.Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
