"""ESLURM reproduction library.

A full reimplementation-as-simulation of the SC 2022 paper
*Towards Scalable Resource Management for Supercomputers* (Dai et al.):
a hierarchical HPC resource manager (master + satellite + slave nodes),
a failure-prediction-based broadcast tree (FP-Tree), and a
machine-learning job-runtime-estimation framework, together with the
substrates they need (discrete-event kernel, cluster model, network
fabric, schedulers, calibrated workload generators) and the benchmark
harness that regenerates every table and figure in the paper.

Quick start::

    from repro import quick_cluster, EslurmRM, run_rm_day

    cluster = quick_cluster(n_nodes=1024, seed=7)
    report = run_rm_day(EslurmRM, cluster, n_jobs=500, seed=7)
    print(report.summary())

Top-level names are loaded lazily so that ``import repro.simkit`` does
not pull in the whole library.
"""

from __future__ import annotations

import typing as t

from repro._version import __version__

__all__ = [
    "__version__",
    "quick_cluster",
    "run_rm_day",
    "CentralizedRM",
    "EslurmRM",
    "RM_PROFILES",
]

_LAZY: dict[str, tuple[str, str]] = {
    "quick_cluster": ("repro.experiments.harness", "quick_cluster"),
    "run_rm_day": ("repro.experiments.harness", "run_rm_day"),
    "CentralizedRM": ("repro.rm.centralized", "CentralizedRM"),
    "EslurmRM": ("repro.rm.eslurm", "EslurmRM"),
    "RM_PROFILES": ("repro.rm.profiles", "RM_PROFILES"),
}


def __getattr__(name: str) -> t.Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
