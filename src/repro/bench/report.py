"""Render a set of bench payloads as a comparison table.

The report is the human view over ``BENCH_*.json`` files: one row per
scenario with the throughput numbers and the subsystem counters that
distinguish the centralized and hierarchical designs.
"""

from __future__ import annotations

import typing as t

from repro.experiments.reporting import render_table

#: (column header, extractor) pairs, in display order
_COLUMNS: list[tuple[str, t.Callable[[dict[str, t.Any]], t.Any]]] = [
    ("scenario", lambda p: p["name"]),
    ("seed", lambda p: p["seed"]),
    ("events", lambda p: p["events"]),
    ("events/sim-s", lambda p: float(p["events_per_sim_s"])),
    ("peak heap", lambda p: p["peak_heap_depth"]),
    ("net msgs", lambda p: int(p["counters"].get("net.messages", 0))),
    ("broadcasts", lambda p: int(p["counters"].get("rm.broadcasts", 0))),
    ("sched passes", lambda p: int(p["counters"].get("sched.passes", 0))),
    ("jobs done", lambda p: p["schedule"].get("n_completed", 0)),
    ("util", lambda p: float(p["schedule"].get("utilization", 0.0))),
]


def _rows(payloads: t.Sequence[dict[str, t.Any]]) -> list[list[t.Any]]:
    ordered = sorted(payloads, key=lambda p: (p["scenario"]["rm"], p["scenario"]["n_nodes"], p["name"]))
    return [[extract(p) for _, extract in _COLUMNS] for p in ordered]


def render_text(payloads: t.Sequence[dict[str, t.Any]], title: str = "bench matrix") -> str:
    """Fixed-width ASCII report."""
    headers = [h for h, _ in _COLUMNS]
    return render_table(headers, _rows(payloads), title=title)


def render_markdown(payloads: t.Sequence[dict[str, t.Any]], title: str = "Bench matrix") -> str:
    """GitHub-flavoured markdown table."""

    def cell(x: t.Any) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    headers = [h for h, _ in _COLUMNS]
    lines = [f"## {title}", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in _rows(payloads):
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)
