"""The what-if cost artifact (``benchmarks/BENCH_whatif.json``).

The snapshot layer's pitch is economic: answering *"what if X happened
at time t?"* by delta-replay from a snapshot must be measurably cheaper
than rerunning the whole day.  This module records that claim as a
checked-in file on the paper-scale 1024-node tier: one full-day run
(the baseline every gateway ``what-if`` would otherwise pay), then one
warm delta-replay per snapshot cut.

The payload splits into two sections, as the other bench artifacts do:

* ``anchors`` — simulation-deterministic facts (event counts, golden
  trace digest, canonical payload digest, per-cut replay fractions).
  Byte-identical on every host; any drift is a determinism regression.
* ``host`` — wall-clock measurements (full-run wall, per-cut what-if
  wall, speedups).  Informative, not comparable across machines.

``repro bench whatif`` records it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import typing as t
from pathlib import Path

from repro.errors import ConfigurationError

WHATIF_SCHEMA = "repro-bench-whatif/1"

#: repo-relative location of the checked-in what-if cost file
WHATIF_PATH = "benchmarks/BENCH_whatif.json"

#: snapshot cuts as fractions of the day (the gateway's typical spread)
DEFAULT_CUTS = (0.25, 0.5, 0.75)

DAY = 86_400.0


def _payload_digest(payload: dict[str, t.Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()


def run_whatif_bench(
    seed: int = 0,
    rm: str = "eslurm",
    n_nodes: int = 1024,
    n_satellites: int = 2,
    n_jobs: int = 500,
    horizon_s: float = DAY,
    cuts: t.Sequence[float] = DEFAULT_CUTS,
    progress: t.Callable[[str], None] | None = None,
) -> dict[str, t.Any]:
    """Measure full-rerun vs warm delta-replay on one config.

    For each cut ``f`` the base run is advanced to ``f * horizon_s``
    (the cost a gateway amortises across every what-if against that
    base), snapshotted warm, and one ``submit-job`` probe is
    delta-replayed to the horizon under the wall clock.
    """
    from repro.api import SimulationConfig
    from repro.snapshot import SimWorld, SubmitJob, capture, what_if

    for f in cuts:
        if not 0.0 <= f < 1.0:
            raise ConfigurationError(f"cut fractions must lie in [0, 1), got {f}")

    config = SimulationConfig(
        rm=rm,
        n_nodes=n_nodes,
        n_satellites=n_satellites,
        seed=seed,
        n_jobs=n_jobs,
        horizon_s=horizon_s,
    )
    if progress is not None:
        progress(f"whatif bench: full run ({rm}, {n_nodes} nodes, {n_jobs} jobs)")
    full_world = SimWorld(config)
    digest = full_world.attach_trace_digest()
    start = time.perf_counter()
    full_world.run_to_horizon()
    full_wall_s = time.perf_counter() - start
    events_full = full_world.sim.events_processed
    anchors: dict[str, t.Any] = {
        "events_full": events_full,
        "trace_digest": digest.hexdigest(),
        "payload_digest": _payload_digest(full_world.final_payload()),
        "cuts": {},
    }
    host: dict[str, t.Any] = {
        "cpus": os.cpu_count(),
        "full_run_wall_s": round(full_wall_s, 4),
        "cuts": {},
    }
    probe = SubmitJob()
    for f in cuts:
        key = f"{f:g}"
        world = SimWorld(config)
        world.run_until(world.sim.now + f * horizon_s)
        snapshot = capture(world)
        start = time.perf_counter()
        outcome = what_if(snapshot, probe)
        wall_s = time.perf_counter() - start
        anchors["cuts"][key] = {
            "events_at_snapshot": outcome.events_at_snapshot,
            "events_resumed": outcome.events_resumed,
            "events_total": outcome.events_total,
            "fraction_skipped": round(outcome.events_at_snapshot / outcome.events_total, 4),
            "probe_started": bool(outcome.probe.get("started")),
        }
        host["cuts"][key] = {
            "whatif_wall_s": round(wall_s, 4),
            "speedup_vs_full": round(full_wall_s / wall_s, 2) if wall_s else 0.0,
        }
        if progress is not None:
            progress(
                f"whatif bench: cut {key} — replayed {outcome.events_resumed} of "
                f"{outcome.events_total} events in {wall_s:.3f}s "
                f"(full run {full_wall_s:.3f}s)"
            )
    cheaper = all(
        entry["whatif_wall_s"] < host["full_run_wall_s"]
        for entry in host["cuts"].values()
    )
    return {
        "schema": WHATIF_SCHEMA,
        "seed": seed,
        "config": {
            "rm": rm,
            "n_nodes": n_nodes,
            "n_satellites": n_satellites,
            "n_jobs": n_jobs,
            "horizon_s": horizon_s,
            "perturbation": probe.to_wire(),
        },
        "anchors": anchors,
        "host": host,
        "whatif_cheaper_than_rerun": cheaper,
    }


def dump_whatif(payload: dict[str, t.Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def load_whatif(path: str | Path) -> dict[str, t.Any]:
    """Read + sanity-check a what-if cost file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != WHATIF_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {WHATIF_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    anchors = payload.get("anchors")
    if not isinstance(anchors, dict) or not anchors.get("cuts"):
        raise ConfigurationError(f"{path}: what-if file has no snapshot cuts")
    return payload


def render_whatif(payload: dict[str, t.Any]) -> str:
    """The cut/events/wall/speedup table (also the README table)."""
    config = payload["config"]
    host = payload["host"]
    lines = [
        f"what-if delta-replay — {config['rm']}, {config['n_nodes']} nodes, "
        f"{config['n_jobs']} jobs, seed {payload['seed']}",
        f"full run: {payload['anchors']['events_full']} events, "
        f"{host['full_run_wall_s']:.3f}s wall",
        f"{'cut':>6}  {'skipped':>8}  {'replayed':>9}  {'wall_s':>8}  {'speedup':>8}",
    ]
    for key in sorted(payload["anchors"]["cuts"], key=float):
        anchor = payload["anchors"]["cuts"][key]
        wall = host["cuts"][key]
        lines.append(
            f"{key:>6}  {anchor['fraction_skipped']:>7.0%}  "
            f"{anchor['events_resumed']:>9}  {wall['whatif_wall_s']:>8.3f}  "
            f"{wall['speedup_vs_full']:>7.2f}x"
        )
    return "\n".join(lines)
