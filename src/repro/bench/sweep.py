"""The sweep-scaling artifact (``benchmarks/BENCH_sweep.json``).

The matrix bench files freeze per-scenario simulation payloads; the
paper-scale baseline freezes single-run wall times.  This module owns
the third artifact: one file recording the wall time of the *whole*
scenario matrix at several ``--jobs`` levels, with the serial run as
the baseline — the scaling curve of the sweep engine itself — plus a
digest proving the merged payloads were byte-identical at every level.
``repro bench sweep`` records it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import typing as t
from pathlib import Path

from repro.bench.runner import MatrixSweep, run_matrix_sweep
from repro.bench.scenarios import SCENARIOS
from repro.errors import ConfigurationError

SWEEP_SCHEMA = "repro-bench-sweep/1"

#: repo-relative location of the checked-in sweep-scaling file
SWEEP_PATH = "benchmarks/BENCH_sweep.json"

#: jobs levels the scaling table records (serial baseline first)
DEFAULT_JOBS_LEVELS = (1, 2, 4)


def sweep_digest(sweep: MatrixSweep) -> str:
    """SHA-256 over the concatenated canonical payload bytes, in matrix
    order — equal digests mean byte-identical ``BENCH_*.json`` files."""
    digest = hashlib.sha256()
    for result in sweep.results:
        digest.update(result.to_json().encode())
    return digest.hexdigest()


def run_sweep_baseline(
    jobs_levels: t.Sequence[int] = DEFAULT_JOBS_LEVELS,
    names: t.Sequence[str] | None = None,
    seed: int = 0,
    progress: t.Callable[[str], None] | None = None,
) -> dict[str, t.Any]:
    """Run the matrix at each jobs level; return the scaling payload.

    The serial level (``jobs=1``) must be present — it is the baseline
    every speedup is computed against.  Each level's merged output is
    digest-checked against the serial run; a mismatch is a determinism
    bug and raises.
    """
    levels = list(dict.fromkeys(int(j) for j in jobs_levels))
    if 1 not in levels:
        levels.insert(0, 1)
    levels.sort()
    chosen = list(SCENARIOS) if names is None else list(names)
    runs: dict[str, t.Any] = {}
    serial_digest: str | None = None
    serial_wall: float | None = None
    for jobs in levels:
        if progress is not None:
            progress(f"-- sweep at jobs={jobs} ({len(chosen)} scenarios)")
        start = time.perf_counter()
        sweep = run_matrix_sweep(names=chosen, seed=seed, jobs=jobs, progress=progress)
        wall_s = time.perf_counter() - start
        if not sweep.ok:
            failed = [f.task_id for f in sweep.failures]
            raise ConfigurationError(f"sweep at jobs={jobs} had failed cells: {failed}")
        digest = sweep_digest(sweep)
        counters = sweep.merged_telemetry()["counters"]
        if jobs == 1:
            serial_digest, serial_wall = digest, wall_s
        elif digest != serial_digest:
            raise ConfigurationError(
                f"sweep at jobs={jobs} is not byte-identical to the serial run "
                f"({digest[:12]} != {(serial_digest or '')[:12]})"
            )
        runs[str(jobs)] = {
            "wall_s": round(wall_s, 3),
            "speedup_vs_serial": round((serial_wall or wall_s) / wall_s, 3)
            if wall_s
            else 0.0,
            "digest": digest,
            "events_total": int(counters.get("sim.events", 0)),
        }
    return {
        "schema": SWEEP_SCHEMA,
        "seed": seed,
        "scenarios": chosen,
        "host_cpus": os.cpu_count(),
        "runs": runs,
    }


def dump_sweep(payload: dict[str, t.Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def load_sweep(path: str | Path) -> dict[str, t.Any]:
    """Read + sanity-check a sweep-scaling file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SWEEP_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {SWEEP_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    runs = payload.get("runs")
    if not isinstance(runs, dict) or "1" not in runs:
        raise ConfigurationError(f"{path}: sweep file has no serial (jobs=1) run")
    return payload


def render_sweep(payload: dict[str, t.Any]) -> str:
    """The jobs/wall/speedup scaling table (also the README table)."""
    lines = [
        f"sweep scaling — {len(payload['scenarios'])} scenarios, "
        f"seed {payload['seed']}, {payload['host_cpus']} host cpu(s)",
        f"{'jobs':>6}  {'wall_s':>9}  {'speedup':>8}  byte-identical",
    ]
    serial = payload["runs"]["1"]
    for jobs in sorted(payload["runs"], key=int):
        run = payload["runs"][jobs]
        identical = "yes" if run["digest"] == serial["digest"] else "NO"
        lines.append(
            f"{jobs:>6}  {run['wall_s']:>9.2f}  {run['speedup_vs_serial']:>7.2f}x  {identical}"
        )
    return "\n".join(lines)
