"""The paper-scale wall-time baseline (``benchmarks/BENCH_paper_scale.json``).

The matrix bench files freeze *simulation-deterministic* payloads; wall
time is deliberately excluded there because it breaks byte-identity.
This module owns the complementary artifact: one checked-in file
recording, per paper-scale tier (1K / 4K / 16K nodes, 10K jobs), both
the deterministic anchors (event counts at the recording seed) and the
recorded host wall time.  ``repro bench compare`` re-runs tiers fresh
and judges them against it:

* deterministic anchors must match **exactly** at the same seed — a
  mismatch means behaviour changed, not performance;
* wall time may not regress beyond the tolerance (default +25 %);
  being *faster* than baseline always passes.

A tier record may carry its own ``"tolerance"`` overriding the default:
the minutes-long 65K/131K tiers wander more with host load than the
seconds-long trio, so they ship with a wider fence instead of forcing
the whole file to the loosest setting.
"""

from __future__ import annotations

import json
import typing as t
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.runner import BenchResult, run_bench
from repro.bench.scenarios import PAPER_SCALE
from repro.errors import ConfigurationError

BASELINE_SCHEMA = "repro-bench-paper-scale/1"

#: repo-relative location of the checked-in baseline
BASELINE_PATH = "benchmarks/BENCH_paper_scale.json"

#: wall-time regression tolerance the CI smoke uses
DEFAULT_TOLERANCE = 0.25

#: wall-fence attempts: a tier whose *first* wall is over the fence is
#: re-run and judged on the best of this many runs, so a transiently
#: loaded host cannot trip the fence spuriously (deterministic anchors
#: are still compared on the first run only — they cannot flake)
DEFAULT_BEST_OF = 3


def build_baseline(results: t.Sequence[BenchResult]) -> dict[str, t.Any]:
    """Baseline payload from freshly-run tier results."""
    tiers: dict[str, t.Any] = {}
    for result in results:
        spec = result.scenario
        tiers[spec.name] = {
            "seed": result.seed,
            "n_nodes": spec.n_nodes,
            "n_jobs": spec.n_jobs,
            "horizon_s": spec.horizon_s,
            "events": result.payload["events"],
            "events_per_sim_s": result.payload["events_per_sim_s"],
            "peak_heap_depth": result.payload["peak_heap_depth"],
            "host_wall_s": round(result.host_wall_s, 3),
        }
    return {"schema": BASELINE_SCHEMA, "tiers": tiers}


def dump_baseline(baseline: dict[str, t.Any]) -> str:
    return json.dumps(baseline, sort_keys=True, indent=2) + "\n"


def load_baseline(path: str | Path) -> dict[str, t.Any]:
    """Read + sanity-check a baseline file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    tiers = payload.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        raise ConfigurationError(f"{path}: baseline has no tiers")
    for name, tier in tiers.items():
        for key in ("seed", "events", "host_wall_s"):
            if key not in tier:
                raise ConfigurationError(f"{path}: tier {name!r} missing {key!r}")
    return payload


@dataclass
class TierComparison:
    """Verdict for one tier of a baseline comparison."""

    name: str
    ok: bool
    baseline_wall_s: float
    fresh_wall_s: float
    notes: list[str] = field(default_factory=list)

    def line(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        ratio = (
            self.fresh_wall_s / self.baseline_wall_s if self.baseline_wall_s else float("inf")
        )
        detail = "; ".join(self.notes) if self.notes else "within tolerance"
        return (
            f"[{status}] {self.name:<14} wall {self.fresh_wall_s:7.2f}s "
            f"vs baseline {self.baseline_wall_s:7.2f}s ({ratio:5.2f}x) — {detail}"
        )


def _check_anchors(tier: dict[str, t.Any], result: BenchResult) -> tuple[bool, list[str]]:
    """Deterministic-anchor verdict (first run only; cannot flake)."""
    notes: list[str] = []
    ok = True
    if result.seed == tier["seed"]:
        # Same seed: the deterministic anchors must match bit-for-bit.
        for key in ("events", "peak_heap_depth"):
            if key in tier and result.payload[key] != tier[key]:
                ok = False
                notes.append(
                    f"{key} changed: baseline {tier[key]}, fresh {result.payload[key]} "
                    "(behaviour drift, re-record the baseline deliberately)"
                )
    else:
        notes.append(f"seed differs (baseline {tier['seed']}, fresh {result.seed}): "
                     "determinism anchors skipped")
    return ok, notes


def _judge_walls(
    tier: dict[str, t.Any], walls: t.Sequence[float], tolerance: float
) -> tuple[bool, float, list[str]]:
    """Wall-fence verdict on the best (minimum) of the recorded walls."""
    notes: list[str] = []
    baseline_wall = float(tier["host_wall_s"])
    tolerance = float(tier.get("tolerance", tolerance))
    limit = baseline_wall * (1.0 + tolerance)
    best_wall = min(walls)
    ok = best_wall <= limit
    if not ok:
        best_of = f"best of {len(walls)} runs " if len(walls) > 1 else ""
        notes.append(
            f"wall regression: {best_of}{best_wall:.2f}s > {limit:.2f}s "
            f"(baseline {baseline_wall:.2f}s +{tolerance:.0%})"
        )
    elif len(walls) > 1:
        notes.append(
            f"wall within fence on best of {len(walls)} runs "
            f"(first run {walls[0]:.2f}s was over — host load, not a regression)"
        )
    elif best_wall < baseline_wall * (1.0 - tolerance):
        notes.append("faster than baseline beyond tolerance — consider re-recording")
    return ok, best_wall, notes


def compare_tier(
    tier: dict[str, t.Any],
    result: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TierComparison:
    """Judge one fresh result against its baseline tier (single run)."""
    anchors_ok, notes = _check_anchors(tier, result)
    wall_ok, best_wall, wall_notes = _judge_walls(tier, [result.host_wall_s], tolerance)
    return TierComparison(
        name=result.scenario.name,
        ok=anchors_ok and wall_ok,
        baseline_wall_s=float(tier["host_wall_s"]),
        fresh_wall_s=best_wall,
        notes=notes + wall_notes,
    )


def compare_baseline(
    baseline: dict[str, t.Any],
    names: t.Sequence[str] | None = None,
    seed: int | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    progress: t.Callable[[str], None] | None = None,
    best_of: int = DEFAULT_BEST_OF,
) -> list[TierComparison]:
    """Re-run tiers fresh and compare each against the baseline.

    The wall fence is judged on the best of up to ``best_of`` runs:
    extra runs happen only when the first one lands over the fence, so
    the happy path stays one run per tier while a loaded host gets two
    more chances before the verdict is a regression.  Deterministic
    anchors are compared on the first run only.

    Args:
        baseline: payload from :func:`load_baseline`.
        names: tier subset (default: every tier in the file).
        seed: override the per-tier recording seed (skips exact anchors).
        tolerance: wall-time regression allowance.
        progress: per-tier status callback.
        best_of: maximum wall-fence attempts per tier (min 1).
    """
    tiers = baseline["tiers"]
    chosen = list(tiers) if names is None else list(names)
    comparisons = []
    for name in chosen:
        tier = tiers.get(name)
        if tier is None:
            raise ConfigurationError(
                f"tier {name!r} not in baseline; choose from {sorted(tiers)}"
            )
        if name not in PAPER_SCALE:
            raise ConfigurationError(f"tier {name!r} is not a paper-scale scenario")
        run_seed = tier["seed"] if seed is None else seed
        result = run_bench(name, seed=run_seed)
        anchors_ok, anchor_notes = _check_anchors(tier, result)
        walls = [result.host_wall_s]
        limit = float(tier["host_wall_s"]) * (1.0 + float(tier.get("tolerance", tolerance)))
        while min(walls) > limit and len(walls) < max(1, best_of):
            if progress is not None:
                progress(
                    f"[....] {name:<14} wall {walls[-1]:7.2f}s over fence — "
                    f"re-running ({len(walls) + 1}/{max(1, best_of)})"
                )
            walls.append(run_bench(name, seed=run_seed).host_wall_s)
        wall_ok, best_wall, wall_notes = _judge_walls(tier, walls, tolerance)
        comparison = TierComparison(
            name=name,
            ok=anchors_ok and wall_ok,
            baseline_wall_s=float(tier["host_wall_s"]),
            fresh_wall_s=best_wall,
            notes=anchor_notes + wall_notes,
        )
        if progress is not None:
            progress(comparison.line())
        comparisons.append(comparison)
    return comparisons
