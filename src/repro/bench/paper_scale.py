"""The paper-scale wall-time baseline (``benchmarks/BENCH_paper_scale.json``).

The matrix bench files freeze *simulation-deterministic* payloads; wall
time is deliberately excluded there because it breaks byte-identity.
This module owns the complementary artifact: one checked-in file
recording, per paper-scale tier (1K / 4K / 16K nodes, 10K jobs), both
the deterministic anchors (event counts at the recording seed) and the
recorded host wall time.  ``repro bench compare`` re-runs tiers fresh
and judges them against it:

* deterministic anchors must match **exactly** at the same seed — a
  mismatch means behaviour changed, not performance;
* wall time may not regress beyond the tolerance (default +25 %);
  being *faster* than baseline always passes.
"""

from __future__ import annotations

import json
import typing as t
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.runner import BenchResult, run_bench
from repro.bench.scenarios import PAPER_SCALE
from repro.errors import ConfigurationError

BASELINE_SCHEMA = "repro-bench-paper-scale/1"

#: repo-relative location of the checked-in baseline
BASELINE_PATH = "benchmarks/BENCH_paper_scale.json"

#: wall-time regression tolerance the CI smoke uses
DEFAULT_TOLERANCE = 0.25


def build_baseline(results: t.Sequence[BenchResult]) -> dict[str, t.Any]:
    """Baseline payload from freshly-run tier results."""
    tiers: dict[str, t.Any] = {}
    for result in results:
        spec = result.scenario
        tiers[spec.name] = {
            "seed": result.seed,
            "n_nodes": spec.n_nodes,
            "n_jobs": spec.n_jobs,
            "horizon_s": spec.horizon_s,
            "events": result.payload["events"],
            "events_per_sim_s": result.payload["events_per_sim_s"],
            "peak_heap_depth": result.payload["peak_heap_depth"],
            "host_wall_s": round(result.host_wall_s, 3),
        }
    return {"schema": BASELINE_SCHEMA, "tiers": tiers}


def dump_baseline(baseline: dict[str, t.Any]) -> str:
    return json.dumps(baseline, sort_keys=True, indent=2) + "\n"


def load_baseline(path: str | Path) -> dict[str, t.Any]:
    """Read + sanity-check a baseline file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    tiers = payload.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        raise ConfigurationError(f"{path}: baseline has no tiers")
    for name, tier in tiers.items():
        for key in ("seed", "events", "host_wall_s"):
            if key not in tier:
                raise ConfigurationError(f"{path}: tier {name!r} missing {key!r}")
    return payload


@dataclass
class TierComparison:
    """Verdict for one tier of a baseline comparison."""

    name: str
    ok: bool
    baseline_wall_s: float
    fresh_wall_s: float
    notes: list[str] = field(default_factory=list)

    def line(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        ratio = (
            self.fresh_wall_s / self.baseline_wall_s if self.baseline_wall_s else float("inf")
        )
        detail = "; ".join(self.notes) if self.notes else "within tolerance"
        return (
            f"[{status}] {self.name:<14} wall {self.fresh_wall_s:7.2f}s "
            f"vs baseline {self.baseline_wall_s:7.2f}s ({ratio:5.2f}x) — {detail}"
        )


def compare_tier(
    tier: dict[str, t.Any],
    result: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TierComparison:
    """Judge one fresh result against its baseline tier."""
    notes: list[str] = []
    ok = True
    if result.seed == tier["seed"]:
        # Same seed: the deterministic anchors must match bit-for-bit.
        for key in ("events", "peak_heap_depth"):
            if key in tier and result.payload[key] != tier[key]:
                ok = False
                notes.append(
                    f"{key} changed: baseline {tier[key]}, fresh {result.payload[key]} "
                    "(behaviour drift, re-record the baseline deliberately)"
                )
    else:
        notes.append(f"seed differs (baseline {tier['seed']}, fresh {result.seed}): "
                     "determinism anchors skipped")
    baseline_wall = float(tier["host_wall_s"])
    limit = baseline_wall * (1.0 + tolerance)
    if result.host_wall_s > limit:
        ok = False
        notes.append(
            f"wall regression: {result.host_wall_s:.2f}s > {limit:.2f}s "
            f"(baseline {baseline_wall:.2f}s +{tolerance:.0%})"
        )
    elif result.host_wall_s < baseline_wall * (1.0 - tolerance):
        notes.append("faster than baseline beyond tolerance — consider re-recording")
    return TierComparison(
        name=result.scenario.name,
        ok=ok,
        baseline_wall_s=baseline_wall,
        fresh_wall_s=result.host_wall_s,
        notes=notes,
    )


def compare_baseline(
    baseline: dict[str, t.Any],
    names: t.Sequence[str] | None = None,
    seed: int | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    progress: t.Callable[[str], None] | None = None,
) -> list[TierComparison]:
    """Re-run tiers fresh and compare each against the baseline.

    Args:
        baseline: payload from :func:`load_baseline`.
        names: tier subset (default: every tier in the file).
        seed: override the per-tier recording seed (skips exact anchors).
        tolerance: wall-time regression allowance.
        progress: per-tier status callback.
    """
    tiers = baseline["tiers"]
    chosen = list(tiers) if names is None else list(names)
    comparisons = []
    for name in chosen:
        tier = tiers.get(name)
        if tier is None:
            raise ConfigurationError(
                f"tier {name!r} not in baseline; choose from {sorted(tiers)}"
            )
        if name not in PAPER_SCALE:
            raise ConfigurationError(f"tier {name!r} is not a paper-scale scenario")
        result = run_bench(name, seed=tier["seed"] if seed is None else seed)
        comparison = compare_tier(tier, result, tolerance=tolerance)
        if progress is not None:
            progress(comparison.line())
        comparisons.append(comparison)
    return comparisons
