"""The fixed bench scenario matrix.

The matrix crosses the paper's structural comparison (centralized Slurm
vs ESLURM) with the machine sizes of Section VII (1K / 4K / 16K nodes)
and the failure injector on/off — twelve scenarios that exercise every
instrumented subsystem: the event loop, the broadcast fabric, satellite
allocation, the scheduler, and (for ESLURM) the runtime estimator.

Scenario runs are sized to finish in seconds each, not to reproduce the
paper's absolute numbers: a bench file is a *regression anchor* — the
same scenario at the same seed must produce the same JSON, and future
perf PRs compare events/sec and per-subsystem counters against it.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.api import SimulationConfig, TelemetryConfig
from repro.errors import ConfigurationError
from repro.workload.synthetic import WorkloadConfig

DAY = 86_400.0

#: simulated horizon of every matrix scenario (4 h keeps the largest
#: machine under a minute of host time while still crossing dozens of
#: heartbeat and scheduler cycles)
HORIZON_S = 4 * 3600.0


@dataclass(frozen=True)
class BenchScenario:
    """One cell of the matrix.

    ``malleable_fraction`` / ``placement`` select the elastic-job
    protocol and the node-placement policy; both default to the rigid/
    first-fit setting so every pre-existing ``BENCH_*.json`` anchor
    stays byte-identical.
    """

    name: str
    rm: str
    n_nodes: int
    n_satellites: int
    failures: bool
    n_jobs: int
    horizon_s: float = HORIZON_S
    malleable_fraction: float = 0.0
    placement: str = "first-fit"

    def workload(self) -> WorkloadConfig:
        """Jobs paced to land inside the horizon (chaos-harness pacing)."""
        return WorkloadConfig(
            jobs_per_day=self.n_jobs * DAY / (0.6 * self.horizon_s),
            max_nodes=max(1, self.n_nodes // 4),
            malleable_fraction=self.malleable_fraction,
            name=f"bench-{self.name}",
        )

    def simulation_config(self, seed: int) -> SimulationConfig:
        return SimulationConfig(
            rm=self.rm,
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            seed=seed,
            failures=self.failures,
            n_jobs=self.n_jobs,
            horizon_s=self.horizon_s,
            workload=self.workload(),
            estimator="auto" if self.rm == "eslurm" else None,
            telemetry=TelemetryConfig(enabled=True),
            placement=self.placement,
            malleable=self.malleable_fraction > 0.0,
        )

    @property
    def file_stem(self) -> str:
        """``BENCH_<name>`` with filesystem-friendly separators."""
        return "BENCH_" + self.name.replace("-", "_")


def _matrix() -> dict[str, BenchScenario]:
    scenarios = {}
    for rm in ("slurm", "eslurm"):
        for n_nodes in (1024, 4096, 16_384):
            for failures in (False, True):
                name = f"{rm}-{n_nodes}" + ("-failures" if failures else "")
                scenarios[name] = BenchScenario(
                    name=name,
                    rm=rm,
                    n_nodes=n_nodes,
                    # ESLURM satellite pools grow with the machine (Eq. 1's m)
                    n_satellites=max(2, n_nodes // 2048),
                    failures=failures,
                    # the generator spreads submissions diurnally over a
                    # 24 h day, so roughly horizon/day of these land in
                    # the window — 600 yields ~100 scheduled jobs
                    n_jobs=600,
                )
    return scenarios


#: name -> scenario, insertion-ordered smallest-first per RM
SCENARIOS: dict[str, BenchScenario] = _matrix()

#: the scenario ``make bench-smoke`` runs (smallest, deterministic machine)
SMOKE_SCENARIO = "slurm-1024"


#: the paper-scale machine sizes: the Section VII trio plus the
#: ROADMAP's next order of magnitude (65K / 131K nodes)
PAPER_TIER_SIZES = (1024, 4096, 16_384, 65_536, 131_072)


def _paper_scale() -> dict[str, BenchScenario]:
    tiers = {}
    for n_nodes in PAPER_TIER_SIZES:
        name = f"paper-{n_nodes}"
        tiers[name] = BenchScenario(
            name=name,
            rm="eslurm",
            n_nodes=n_nodes,
            n_satellites=max(2, n_nodes // 2048),
            failures=True,
            n_jobs=10_000,
            horizon_s=DAY,
        )
    # Small-step variant of the 65K tier for CI (``make bench-100k-smoke``):
    # the full machine is built — so the array-backed node state and the
    # event kernel are exercised at scale — but over the 4 h matrix
    # horizon with a matching slice of the workload, keeping the smoke
    # run seconds-long where the full tier is --slow territory.
    tiers["paper-65536-smoke"] = BenchScenario(
        name="paper-65536-smoke",
        rm="eslurm",
        n_nodes=65_536,
        n_satellites=32,
        failures=True,
        n_jobs=2_000,
        horizon_s=HORIZON_S,
    )
    # Elastic and topology-aware variants of the smallest tier: same
    # machine and workload volume, but with half the jobs malleable
    # (resp. the topology-aware placement policy) so the malleability
    # protocol and placement scoring have their own wall-time anchors.
    tiers["paper-1024-malleable"] = BenchScenario(
        name="paper-1024-malleable",
        rm="eslurm",
        n_nodes=1024,
        n_satellites=2,
        failures=True,
        n_jobs=10_000,
        horizon_s=DAY,
        malleable_fraction=0.5,
    )
    tiers["paper-1024-topology"] = BenchScenario(
        name="paper-1024-topology",
        rm="eslurm",
        n_nodes=1024,
        n_satellites=2,
        failures=True,
        n_jobs=10_000,
        horizon_s=DAY,
        placement="topology",
    )
    return tiers


#: The paper-scale tiers: ESLURM with failure injection driving 10K jobs
#: over one simulated day at the Section VII machine sizes.  Unlike the
#: matrix above these are sized like the paper's own workload, so they
#: anchor *wall-time* regressions (``repro bench compare``), not just
#: event-count determinism.
PAPER_SCALE: dict[str, BenchScenario] = _paper_scale()

#: the tier CI's paper-scale smoke compares against the checked-in baseline
PAPER_SMOKE_SCENARIO = "paper-1024"

#: the tier ``repro bench run --profile`` defaults to (full machine)
PAPER_FULL_SCENARIO = "paper-16384"


def get_scenario(name: str) -> BenchScenario:
    scenario = SCENARIOS.get(name) or PAPER_SCALE.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown bench scenario {name!r}; choose from "
            f"{sorted([*SCENARIOS, *PAPER_SCALE])}"
        )
    return scenario
