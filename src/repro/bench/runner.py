"""Execute bench scenarios and freeze their deterministic results.

``run_bench`` runs one scenario under a telemetry session and splits
the outcome in two: a *payload* (simulation-deterministic, what goes
into ``BENCH_<name>.json`` byte-for-byte) and *host* facts (wall time,
span timings) that are printed but never written, because they would
break the same-seed byte-identity the perf trajectory depends on.
"""

from __future__ import annotations

import gc
import json
import time
import typing as t
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.api import run_simulation
from repro.bench.scenarios import SCENARIOS, BenchScenario, get_scenario
from repro.bench.schema import SCHEMA, is_deterministic_metric, validate_payload


@dataclass(frozen=True)
class BenchResult:
    """One executed scenario: the frozen payload plus host-side facts."""

    scenario: BenchScenario
    seed: int
    payload: dict[str, t.Any]
    host_wall_s: float
    host_metrics: dict[str, t.Any]

    @property
    def file_name(self) -> str:
        return f"{self.scenario.file_stem}.json"

    def to_json(self) -> str:
        """Canonical byte-stable rendering of the payload."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"


def _split_metrics(
    snapshot: t.Mapping[str, dict[str, t.Any]],
) -> tuple[dict[str, t.Any], dict[str, t.Any]]:
    """(deterministic, host) halves of a telemetry snapshot section."""
    deterministic = {k: v for k, v in snapshot.items() if is_deterministic_metric(k)}
    host = {k: v for k, v in snapshot.items() if not is_deterministic_metric(k)}
    return deterministic, host


def run_bench(scenario: str | BenchScenario, seed: int = 0) -> BenchResult:
    """Run one scenario; returns its validated result."""
    spec = scenario if isinstance(scenario, BenchScenario) else get_scenario(scenario)
    # Flush earlier runs' garbage now: a dead simulation finalised
    # mid-run must not emit anything into this run's telemetry session.
    gc.collect()
    start = time.perf_counter()
    result = run_simulation(spec.simulation_config(seed))
    host_wall_s = time.perf_counter() - start
    snapshot = result.telemetry
    assert snapshot is not None  # telemetry is always on for bench runs
    counters, host_counters = _split_metrics(snapshot["counters"])
    gauges, host_gauges = _split_metrics(snapshot["gauges"])
    histograms, host_histograms = _split_metrics(snapshot["histograms"])
    events = int(counters.get("sim.events", 0))
    sim_time_s = float(counters.pop("sim.time_s", spec.horizon_s))
    peak_heap = int(gauges.get("sim.heap.peak", {}).get("max", 0))
    schedule = asdict(result.report.schedule) if result.report.schedule else {}
    payload: dict[str, t.Any] = {
        "schema": SCHEMA,
        "name": spec.name,
        "seed": seed,
        "scenario": {
            "rm": spec.rm,
            "n_nodes": spec.n_nodes,
            "n_satellites": spec.n_satellites,
            "failures": spec.failures,
            "n_jobs": spec.n_jobs,
            "horizon_s": spec.horizon_s,
        },
        "sim_time_s": sim_time_s,
        "events": events,
        "events_per_sim_s": events / sim_time_s if sim_time_s else 0.0,
        "peak_heap_depth": peak_heap,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "master": result.report.master,
        "schedule": schedule,
    }
    validate_payload(payload)
    return BenchResult(
        scenario=spec,
        seed=seed,
        payload=payload,
        host_wall_s=host_wall_s,
        host_metrics={
            "counters": host_counters,
            "gauges": host_gauges,
            "histograms": host_histograms,
        },
    )


def profile_bench(
    scenario: str | BenchScenario, seed: int = 0, top: int = 25
) -> tuple[BenchResult, str]:
    """:func:`run_bench` under ``cProfile``; returns ``(result, report)``.

    The report is the top-``top`` functions by cumulative time.  Note
    the profiler itself inflates wall time severalfold, so the
    ``host_wall_s`` of a profiled run is *not* comparable with baseline
    files recorded by plain runs — use it to find hot spots, not to
    judge regressions.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_bench(scenario, seed=seed)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()


def write_bench_file(result: BenchResult, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / result.file_name
    path.write_text(result.to_json())
    return path


def run_matrix(
    names: t.Sequence[str] | None = None,
    seed: int = 0,
    out_dir: str | Path | None = None,
    progress: t.Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run scenarios (all by default), optionally writing their files.

    Args:
        names: scenario names; ``None`` runs the whole matrix.
        seed: master seed for every run.
        out_dir: where to write ``BENCH_*.json`` (``None`` skips writing).
        progress: per-scenario status callback (e.g. ``print``).
    """
    chosen = list(SCENARIOS) if names is None else list(names)
    results = []
    for name in chosen:
        result = run_bench(name, seed=seed)
        if out_dir is not None:
            path = write_bench_file(result, out_dir)
            where = f" -> {path}"
        else:
            where = ""
        if progress is not None:
            progress(
                f"{name:<24} {result.payload['events']:>9} events  "
                f"host {result.host_wall_s:7.2f}s{where}"
            )
        results.append(result)
    return results


def load_bench_file(path: str | Path) -> dict[str, t.Any]:
    """Read + schema-validate one ``BENCH_*.json``."""
    payload = json.loads(Path(path).read_text())
    validate_payload(payload)
    return payload
