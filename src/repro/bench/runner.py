"""Execute bench scenarios and freeze their deterministic results.

``run_bench`` runs one scenario under a telemetry session and splits
the outcome in two: a *payload* (simulation-deterministic, what goes
into ``BENCH_<name>.json`` byte-for-byte) and *host* facts (wall time,
span timings) that are printed but never written, because they would
break the same-seed byte-identity the perf trajectory depends on.
"""

from __future__ import annotations

import gc
import json
import time
import typing as t
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.api import run_simulation
from repro.bench.scenarios import SCENARIOS, BenchScenario, get_scenario
from repro.bench.schema import SCHEMA, is_deterministic_metric, validate_payload


@dataclass(frozen=True)
class BenchResult:
    """One executed scenario: the frozen payload plus host-side facts."""

    scenario: BenchScenario
    seed: int
    payload: dict[str, t.Any]
    host_wall_s: float
    host_metrics: dict[str, t.Any]

    @property
    def file_name(self) -> str:
        return f"{self.scenario.file_stem}.json"

    def to_json(self) -> str:
        """Canonical byte-stable rendering of the payload."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"


def _split_metrics(
    snapshot: t.Mapping[str, dict[str, t.Any]],
) -> tuple[dict[str, t.Any], dict[str, t.Any]]:
    """(deterministic, host) halves of a telemetry snapshot section."""
    deterministic = {k: v for k, v in snapshot.items() if is_deterministic_metric(k)}
    host = {k: v for k, v in snapshot.items() if not is_deterministic_metric(k)}
    return deterministic, host


def run_bench(scenario: str | BenchScenario, seed: int = 0) -> BenchResult:
    """Run one scenario; returns its validated result."""
    spec = scenario if isinstance(scenario, BenchScenario) else get_scenario(scenario)
    # Flush earlier runs' garbage now: a dead simulation finalised
    # mid-run must not emit anything into this run's telemetry session.
    gc.collect()
    start = time.perf_counter()
    result = run_simulation(spec.simulation_config(seed))
    host_wall_s = time.perf_counter() - start
    snapshot = result.telemetry
    assert snapshot is not None  # telemetry is always on for bench runs
    counters, host_counters = _split_metrics(snapshot["counters"])
    gauges, host_gauges = _split_metrics(snapshot["gauges"])
    histograms, host_histograms = _split_metrics(snapshot["histograms"])
    events = int(counters.get("sim.events", 0))
    sim_time_s = float(counters.pop("sim.time_s", spec.horizon_s))
    peak_heap = int(gauges.get("sim.heap.peak", {}).get("max", 0))
    schedule = asdict(result.report.schedule) if result.report.schedule else {}
    scenario_fields: dict[str, t.Any] = {
        "rm": spec.rm,
        "n_nodes": spec.n_nodes,
        "n_satellites": spec.n_satellites,
        "failures": spec.failures,
        "n_jobs": spec.n_jobs,
        "horizon_s": spec.horizon_s,
    }
    # Elastic/placement knobs appear only when set, so every bench file
    # recorded before they existed stays byte-identical.
    if spec.malleable_fraction > 0.0:
        scenario_fields["malleable_fraction"] = spec.malleable_fraction
    if spec.placement != "first-fit":
        scenario_fields["placement"] = spec.placement
    payload: dict[str, t.Any] = {
        "schema": SCHEMA,
        "name": spec.name,
        "seed": seed,
        "scenario": scenario_fields,
        "sim_time_s": sim_time_s,
        "events": events,
        "events_per_sim_s": events / sim_time_s if sim_time_s else 0.0,
        "peak_heap_depth": peak_heap,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "master": result.report.master,
        "schedule": schedule,
    }
    validate_payload(payload)
    return BenchResult(
        scenario=spec,
        seed=seed,
        payload=payload,
        host_wall_s=host_wall_s,
        host_metrics={
            "counters": host_counters,
            "gauges": host_gauges,
            "histograms": host_histograms,
        },
    )


def profile_bench(
    scenario: str | BenchScenario, seed: int = 0, top: int = 25
) -> tuple[BenchResult, str]:
    """:func:`run_bench` under ``cProfile``; returns ``(result, report)``.

    The report is the top-``top`` functions by cumulative time.  Note
    the profiler itself inflates wall time severalfold, so the
    ``host_wall_s`` of a profiled run is *not* comparable with baseline
    files recorded by plain runs — use it to find hot spots, not to
    judge regressions.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_bench(scenario, seed=seed)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()


def write_bench_file(result: BenchResult, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / result.file_name
    path.write_text(result.to_json())
    return path


@dataclass
class MatrixSweep:
    """Outcome of one (possibly parallel) run over the scenario matrix."""

    results: list[BenchResult]
    #: failed cells (crash-contained; the rest of the sweep completed)
    failures: list["TaskResult"]
    jobs: int
    wall_s: float

    @property
    def ok(self) -> bool:
        return not self.failures

    def merged_telemetry(self) -> dict[str, dict[str, t.Any]]:
        """Cross-run telemetry aggregation, folded in matrix order.

        Counters sum and histograms fold element-wise (order-free);
        gauges fold last-write by matrix position — so the merge is a
        pure function of the scenario list, identical at any ``-j``.
        """
        from repro.parallel.merge import merge_snapshots

        return merge_snapshots([r.payload for r in self.results])


def _result_from_cell(value: dict[str, t.Any]) -> BenchResult:
    """Rebuild a :class:`BenchResult` from a sweep cell's plain dict."""
    return BenchResult(
        scenario=get_scenario(value["scenario"]),
        seed=value["seed"],
        payload=value["payload"],
        host_wall_s=value["host_wall_s"],
        host_metrics=value["host_metrics"],
    )


def run_matrix_sweep(
    names: t.Sequence[str] | None = None,
    seed: int = 0,
    out_dir: str | Path | None = None,
    progress: t.Callable[[str], None] | None = None,
    jobs: int = 1,
) -> MatrixSweep:
    """Run scenarios as a sweep; failed cells are contained, not fatal.

    ``jobs=1`` executes inline — the serial path; ``jobs>1`` fans the
    cells out over spawn-based workers.  Either way the returned
    results sit in matrix order and each ``BENCH_*.json`` is
    byte-identical to what a serial run writes, because every cell is
    a fully seeded, self-contained simulation.
    """
    from repro.parallel.pool import Task, TaskResult, run_tasks

    chosen = list(SCENARIOS) if names is None else list(names)
    for name in chosen:
        get_scenario(name)  # fail fast on unknown names, pre-spawn
    tasks = [
        Task(id=name, kind="bench", spec={"scenario": name, "seed": seed})
        for name in chosen
    ]

    def on_cell(task_result: TaskResult) -> None:
        if task_result.ok:
            result = _result_from_cell(task_result.value)
            where = ""
            if out_dir is not None:
                where = f" -> {write_bench_file(result, out_dir)}"
            if progress is not None:
                progress(
                    f"{result.scenario.name:<24} {result.payload['events']:>9} events  "
                    f"host {result.host_wall_s:7.2f}s{where}"
                )
        elif progress is not None:
            progress(f"{task_result.task_id:<24} FAILED after "
                     f"{task_result.attempts} attempt(s)")

    start = time.perf_counter()
    outcomes = run_tasks(tasks, jobs=jobs, progress=on_cell)
    wall_s = time.perf_counter() - start
    return MatrixSweep(
        results=[_result_from_cell(o.value) for o in outcomes if o.ok],
        failures=[o for o in outcomes if not o.ok],
        jobs=jobs,
        wall_s=wall_s,
    )


def run_matrix(
    names: t.Sequence[str] | None = None,
    seed: int = 0,
    out_dir: str | Path | None = None,
    progress: t.Callable[[str], None] | None = None,
    jobs: int = 1,
) -> list[BenchResult]:
    """Run scenarios (all by default), optionally writing their files.

    Args:
        names: scenario names; ``None`` runs the whole matrix.
        seed: master seed for every run.
        out_dir: where to write ``BENCH_*.json`` (``None`` skips writing).
        progress: per-scenario status callback (e.g. ``print``).
        jobs: sweep worker processes (1 = inline serial path, 0 = cpu
            autodetect); see :func:`run_matrix_sweep`.

    Raises:
        SweepError: when any cell failed even after its retry (use
            :func:`run_matrix_sweep` to get partial results instead).
    """
    from repro.parallel.pool import SweepError

    sweep = run_matrix_sweep(
        names=names, seed=seed, out_dir=out_dir, progress=progress, jobs=jobs
    )
    if not sweep.ok:
        details = "; ".join(
            f"{f.task_id}: {(f.error or 'unknown').splitlines()[-1]}"
            for f in sweep.failures
        )
        raise SweepError(f"{len(sweep.failures)} bench cell(s) failed — {details}")
    return sweep.results


def load_bench_file(path: str | Path) -> dict[str, t.Any]:
    """Read + schema-validate one ``BENCH_*.json``."""
    payload = json.loads(Path(path).read_text())
    validate_payload(payload)
    return payload
