"""Performance-benchmark harness: fixed scenario matrix over the RMs.

``repro bench run --all --seed 0`` executes every scenario in
:mod:`repro.bench.scenarios` and writes one deterministic
``BENCH_<name>.json`` per scenario (schema in :mod:`repro.bench.schema`);
``repro bench report`` renders the files as a text or markdown table.
"""

from repro.bench.paper_scale import (
    BASELINE_PATH,
    DEFAULT_BEST_OF,
    DEFAULT_TOLERANCE,
    TierComparison,
    build_baseline,
    compare_baseline,
    dump_baseline,
    load_baseline,
)
from repro.bench.report import render_markdown, render_text
from repro.bench.runner import (
    BenchResult,
    MatrixSweep,
    load_bench_file,
    profile_bench,
    run_bench,
    run_matrix,
    run_matrix_sweep,
    write_bench_file,
)
from repro.bench.sweep import (
    SWEEP_PATH,
    SWEEP_SCHEMA,
    dump_sweep,
    load_sweep,
    render_sweep,
    run_sweep_baseline,
    sweep_digest,
)
from repro.bench.whatif import (
    WHATIF_PATH,
    WHATIF_SCHEMA,
    dump_whatif,
    load_whatif,
    render_whatif,
    run_whatif_bench,
)
from repro.bench.scenarios import (
    PAPER_FULL_SCENARIO,
    PAPER_SCALE,
    PAPER_SMOKE_SCENARIO,
    SCENARIOS,
    SMOKE_SCENARIO,
    BenchScenario,
    get_scenario,
)
from repro.bench.schema import SCHEMA, is_deterministic_metric, validate_payload

__all__ = [
    "BASELINE_PATH",
    "DEFAULT_BEST_OF",
    "DEFAULT_TOLERANCE",
    "PAPER_FULL_SCENARIO",
    "PAPER_SCALE",
    "PAPER_SMOKE_SCENARIO",
    "SCENARIOS",
    "SMOKE_SCENARIO",
    "SCHEMA",
    "SWEEP_PATH",
    "SWEEP_SCHEMA",
    "WHATIF_PATH",
    "WHATIF_SCHEMA",
    "BenchResult",
    "BenchScenario",
    "MatrixSweep",
    "TierComparison",
    "build_baseline",
    "compare_baseline",
    "dump_baseline",
    "dump_sweep",
    "dump_whatif",
    "get_scenario",
    "is_deterministic_metric",
    "load_baseline",
    "load_bench_file",
    "load_sweep",
    "load_whatif",
    "profile_bench",
    "render_markdown",
    "render_sweep",
    "render_text",
    "render_whatif",
    "run_bench",
    "run_matrix",
    "run_matrix_sweep",
    "run_sweep_baseline",
    "run_whatif_bench",
    "sweep_digest",
    "validate_payload",
    "write_bench_file",
]
