"""The ``BENCH_*.json`` schema: layout, determinism rules, validation.

A bench file is the deterministic slice of one scenario run:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "name": "eslurm-4096-failures",
      "seed": 0,
      "scenario": {"rm": "...", "n_nodes": 4096, "n_satellites": 2,
                   "failures": true, "n_jobs": 120, "horizon_s": 14400.0},
      "sim_time_s": 14400.0,
      "events": 123456,
      "events_per_sim_s": 8.57,
      "peak_heap_depth": 321,
      "counters": {"net.messages": 9876, "...": 0},
      "gauges": {"sched.queue_depth": {"last": 0, "min": 0, "max": 9, "n": 1}},
      "histograms": {"rm.broadcast.makespan_s": {"count": 1, "sum": 0.1,
                     "min": 0.1, "max": 0.1, "mean": 0.1, "buckets": {}}},
      "master": {"cpu_time_min": 1.0},
      "schedule": {"n_jobs": 120, "utilization": 0.5}
    }

Two same-seed runs must produce byte-identical files, so everything in
the payload derives from *simulated* quantities.  Host-clock metrics
(span wall times, wall-per-sim-second) are namespaced ``host.`` by the
telemetry layer and filtered out here; they appear in run summaries on
stdout instead.
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError

SCHEMA = "repro-bench/1"

#: top-level keys every bench payload must carry, with their types
REQUIRED_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "name": str,
    "seed": int,
    "scenario": dict,
    "sim_time_s": (int, float),
    "events": int,
    "events_per_sim_s": (int, float),
    "peak_heap_depth": int,
    "counters": dict,
    "gauges": dict,
    "histograms": dict,
    "master": dict,
    "schedule": dict,
}

REQUIRED_SCENARIO_FIELDS = ("rm", "n_nodes", "n_satellites", "failures", "n_jobs", "horizon_s")


def is_deterministic_metric(name: str) -> bool:
    """Whether a metric may appear in a bench file."""
    return not name.startswith("host.")


def validate_payload(payload: t.Mapping[str, t.Any]) -> None:
    """Raise :class:`ConfigurationError` on any schema deviation."""
    problems: list[str] = []
    for key, types in REQUIRED_FIELDS.items():
        if key not in payload:
            problems.append(f"missing field {key!r}")
        elif not isinstance(payload[key], types):
            problems.append(f"field {key!r} has type {type(payload[key]).__name__}")
    if not problems and payload["schema"] != SCHEMA:
        problems.append(f"schema is {payload['schema']!r}, expected {SCHEMA!r}")
    if not problems:
        for key in REQUIRED_SCENARIO_FIELDS:
            if key not in payload["scenario"]:
                problems.append(f"missing scenario field {key!r}")
    if not problems:
        for section in ("counters", "gauges", "histograms"):
            for metric in payload[section]:
                if not is_deterministic_metric(metric):
                    problems.append(f"non-deterministic metric {metric!r} in {section}")
    if problems:
        raise ConfigurationError(
            "invalid bench payload: " + "; ".join(problems)
        )
