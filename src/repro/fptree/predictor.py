"""Failure-prediction plugins for the FP-Tree constructor.

The paper implements failure prediction as a *plugin* so that
alternative predictors can be dropped in (Section IV-C).  We mirror that
with a tiny protocol — ``predict(candidates) -> set of node ids`` — and
three implementations:

* :class:`MonitorAlertPredictor` — the production one: a node is
  predicted failed iff the monitoring/diagnostic subsystem has an
  active alert for it (the over-prediction principle: every alert
  counts, because a wrong prediction only demotes a node to a leaf);
* :class:`OraclePredictor` — reads the true down set from the cluster,
  an upper bound used in ablations;
* :class:`StaticSetPredictor` — a fixed set, for tests and worked
  examples.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import Cluster


class FailurePredictor(t.Protocol):
    """Protocol every predictor plugin implements."""

    def predict(self, candidates: t.Sequence[int]) -> set[int]:
        """Subset of ``candidates`` expected to fail soon."""
        ...  # pragma: no cover - protocol body


class MonitorAlertPredictor:
    """Predicts failure for every node with an active monitoring alert."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def predict(self, candidates: t.Sequence[int]) -> set[int]:
        return self.cluster.monitor.predicted_failed(among=candidates)


class OraclePredictor:
    """Perfect knowledge of the current down set (ablation upper bound)."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def predict(self, candidates: t.Sequence[int]) -> set[int]:
        down = self.cluster.down_ids()
        return {nid for nid in candidates if nid in down}


class StaticSetPredictor:
    """A fixed predicted-failed set (tests, documentation examples)."""

    def __init__(self, predicted: t.Iterable[int]) -> None:
        self.predicted = set(predicted)

    def predict(self, candidates: t.Sequence[int]) -> set[int]:
        return {nid for nid in candidates if nid in self.predicted}


class NullPredictor:
    """Predicts nothing — turns the FP-Tree back into a plain tree
    (the paper's "ESLURM without FP-Tree" ablation)."""

    def predict(self, candidates: t.Sequence[int]) -> set[int]:
        return set()
