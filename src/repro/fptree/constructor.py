"""The FP-Tree constructor: leaf location + prediction + rearranging.

Workflow (paper Fig. 3/4): on every communication task the constructor

1. computes which positions of the task's nodelist become leaves
   (:func:`repro.fptree.tree.leaf_positions`);
2. asks the predictor plugin which of the participating nodes are
   expected to fail;
3. rearranges the nodelist so predicted-failed nodes occupy leaf
   positions and healthy nodes occupy inner positions, preserving the
   original relative order within each class (:func:`rearrange`, O(n)).

The rearranged list is then fed to the ordinary k-ary tree engine —
the FP-Tree is *only* a list permutation, never a different topology.
"""

from __future__ import annotations

import typing as t
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.fptree.predictor import FailurePredictor
from repro.fptree.tree import leaf_positions
from repro.network.broadcast import BroadcastResult, BroadcastStructure, MemoizedBroadcast
from repro.network.structures import TreeBroadcast

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import NetworkFabric


def rearrange(
    nodelist: t.Sequence[int],
    leaf_idx: t.Collection[int],
    predicted_failed: t.Collection[int],
) -> list[int]:
    """Place predicted-failed nodes on leaf positions (paper Fig. 4c).

    Walks positions in order; a leaf position preferentially takes the
    next node from the predicted-failed pool, an inner position from the
    healthy pool, falling back to the other pool when one runs dry.
    Both pools preserve the input order, so when nothing is predicted
    the output equals the input.  O(n).
    """
    if not predicted_failed:
        # Documented identity: with nothing predicted both pools drain
        # in input order, so the output equals the input.
        return list(nodelist)
    predicted = set(predicted_failed)
    leaves = set(leaf_idx)
    failed_pool: deque[int] = deque(nid for nid in nodelist if nid in predicted)
    healthy_pool: deque[int] = deque(nid for nid in nodelist if nid not in predicted)
    out: list[int] = []
    for pos in range(len(nodelist)):
        if pos in leaves:
            pool, alt = failed_pool, healthy_pool
        else:
            pool, alt = healthy_pool, failed_pool
        out.append(pool.popleft() if pool else alt.popleft())
    return out


@dataclass
class ConstructionStats:
    """Bookkeeping for the paper's placement experiment (Section VII-A)."""

    trees_built: int = 0
    nodes_placed: int = 0
    predicted_total: int = 0
    predicted_on_leaves: int = 0

    @property
    def leaf_placement_ratio(self) -> float:
        """Fraction of predicted-failed nodes that landed on leaves
        (the paper reports 81.7 % for *actually failed* nodes)."""
        if self.predicted_total == 0:
            return 1.0
        return self.predicted_on_leaves / self.predicted_total


#: Construction audit hook: ``(targets, ordered, leaf_idx, predicted)``.
ConstructObserver = t.Callable[
    [t.Sequence[int], t.Sequence[int], t.Sequence[int], t.AbstractSet[int]], None
]


class FPTreeConstructor:
    """Builds FP-ordered nodelists for a given tree width.

    Construction is memoized on ``(targets, predicted-set)`` — the
    issue-mandated (nodelist, width, alert-set) key, with width fixed
    per instance.  Steady-state broadcasts over recurring node sets
    (heartbeat shares between alert changes) skip the leaf-location and
    rearrangement passes entirely; hits still replay the construction
    statistics and audit observers so the Section VII-A bookkeeping is
    indistinguishable from a cache-free run.
    """

    _MEMO_MAX = 64

    def __init__(self, predictor: FailurePredictor, width: int = 32) -> None:
        if width < 2:
            raise ConfigurationError("tree width must be >= 2")
        self.predictor = predictor
        self.width = width
        self.stats = ConstructionStats()
        #: rearrangement audit hooks (chaos invariants; empty otherwise)
        self.construct_observers: list[ConstructObserver] = []
        self._memo: "OrderedDict[tuple, tuple[list[int], list[int], int]]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0

    def construct(self, root: int, targets: t.Sequence[int]) -> list[int]:
        """Return the rearranged *target* list for ``[root] + targets``.

        The root (the satellite) always keeps position 0; only target
        positions 1..n are permuted.
        """
        if not targets:
            return []
        predicted = self.predictor.predict(targets)
        if not predicted and not self.construct_observers:
            # Nothing to rearrange and nobody auditing: the output is
            # the input (rearrange's documented identity).  Skip the
            # leaf walk and memo bookkeeping — steady-state broadcasts
            # with no live alerts are the overwhelmingly common case,
            # and keeping them out of the memo leaves its 64 slots to
            # the orderings that were actually worth caching.
            ordered = list(targets)
            self._record(ordered, predicted, 0)
            return ordered
        key = (tuple(targets), frozenset(predicted))
        entry = self._memo.get(key)
        if entry is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            ordered, leaf_idx, on_leaves = entry
            self._record(ordered, predicted, on_leaves)
            for observer in self.construct_observers:
                observer(targets, ordered, leaf_idx, predicted)
            return list(ordered)
        self.memo_misses += 1
        n = len(targets) + 1  # including the root position
        # Leaf positions within the full nodelist; drop position 0 (root
        # can only be a leaf for n == 1, excluded above) and shift to
        # target-list indexing.
        leaf_idx = [p - 1 for p in leaf_positions(n, self.width) if p > 0]
        ordered = rearrange(list(targets), leaf_idx, predicted)
        on_leaves = self._count_on_leaves(ordered, leaf_idx, predicted)
        self._record(ordered, predicted, on_leaves)
        for observer in self.construct_observers:
            observer(targets, ordered, leaf_idx, predicted)
        if len(self._memo) >= self._MEMO_MAX:
            self._memo.popitem(last=False)
        self._memo[key] = (ordered, leaf_idx, on_leaves)
        return list(ordered)

    @staticmethod
    def _count_on_leaves(ordered: list[int], leaf_idx: list[int], predicted: set[int]) -> int:
        if not predicted:
            return 0
        leaves = set(leaf_idx)
        return sum(1 for pos, nid in enumerate(ordered) if nid in predicted and pos in leaves)

    def _record(self, ordered: list[int], predicted: set[int], on_leaves: int) -> None:
        st = self.stats
        st.trees_built += 1
        st.nodes_placed += len(ordered)
        st.predicted_total += len(predicted)
        st.predicted_on_leaves += on_leaves


class FPTreeBroadcast(BroadcastStructure):
    """Tree broadcast over an FP-rearranged nodelist.

    Drop-in comparable with the engines of
    :mod:`repro.network.structures`; the Fig. 8 experiments sweep these
    side by side.
    """

    name = "fp-tree"

    def __init__(
        self,
        predictor: FailurePredictor,
        width: int = 32,
        per_target_root_s: float = 0.0,
        memoize: bool = False,
    ) -> None:
        """``memoize=True`` wraps the inner tree engine in a
        :class:`~repro.network.broadcast.MemoizedBroadcast` keyed on the
        *rearranged* nodelist — evaluation over a recurring FP ordering
        is then cached against the cluster's liveness version."""
        self.constructor = FPTreeConstructor(predictor, width)
        engine: BroadcastStructure = TreeBroadcast(width, per_target_root_s=per_target_root_s)
        self._engine = MemoizedBroadcast(engine) if memoize else engine

    @property
    def width(self) -> int:
        return self.constructor.width

    @property
    def stats(self) -> ConstructionStats:
        return self.constructor.stats

    def simulate(
        self,
        root: int,
        targets: t.Sequence[int],
        size_bytes: int,
        fabric: "NetworkFabric",
        record_arrivals: bool = False,
    ) -> BroadcastResult:
        ordered = self.constructor.construct(root, targets)
        result = self._engine.simulate(root, ordered, size_bytes, fabric, record_arrivals)
        return BroadcastResult(
            structure=self.name,
            makespan_s=result.makespan_s,
            n_targets=result.n_targets,
            failed=result.failed,
            n_timeouts=result.n_timeouts,
            arrivals=result.arrivals,
        )

    def simulate_forest(
        self,
        tasks: t.Sequence[tuple[int, t.Sequence[int]]],
        size_bytes: int,
        fabric: "NetworkFabric",
    ) -> list[BroadcastResult]:
        """FP-construct every part, then batch-evaluate the forest.

        Construction stays per tree (stats, memo, and audit observers
        are per nodelist); only the tree evaluation is shared.
        """
        ordered_tasks = [
            (root, self.constructor.construct(root, targets)) for root, targets in tasks
        ]
        results = self._engine.simulate_forest(ordered_tasks, size_bytes, fabric)
        return [
            BroadcastResult(
                structure=self.name,
                makespan_s=r.makespan_s,
                n_targets=r.n_targets,
                failed=r.failed,
                n_timeouts=r.n_timeouts,
                arrivals=r.arrivals,
            )
            for r in results
        ]
