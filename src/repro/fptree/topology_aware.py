"""Topology-aware base ordering for communication trees.

Section IV-E: systems that optimise trees with physical topology can
build the topology-aware tree *first* and then fine-tune it with the
FP-Tree constructor — because few nodes are predicted failed (<2 % in
production), the rearrangement barely perturbs the topology-aware
ordering while still demoting the risky nodes to leaves.

``topology_aware_order`` produces that base ordering: nodes grouped by
rack, then chassis, then board, so tree subtrees align with physical
domains and most traffic stays rack-local.
"""

from __future__ import annotations

import typing as t

from repro.cluster.topology import Topology


def topology_aware_order(node_ids: t.Sequence[int], topology: Topology) -> list[int]:
    """Sort nodes by (rack, chassis, board, id).

    A stable hierarchical grouping: contiguous slices of the result
    share racks/chassis, so the contiguous-chunk tree construction maps
    subtrees onto physical locality domains.
    """
    return sorted(node_ids, key=lambda nid: (*topology.coordinates(nid), nid))
