"""FP-Tree: the failure-prediction-based communication tree (Section IV).

The paper's construction has three O(n) components (Fig. 4):

1. **Leaf-nodes location** — simulate the recursive grouping of the
   k-ary tree to find which *positions* of a nodelist become leaves
   (:func:`repro.fptree.tree.leaf_positions`, Eq. 2's recursion);
2. **Failure-node prediction** — a plugin that returns the subset of
   nodes expected to fail (:mod:`repro.fptree.predictor`), driven by the
   monitoring subsystem's alert stream with deliberate over-prediction;
3. **Nodelist rearranging** — place predicted-failed nodes on leaf
   positions and healthy nodes on inner positions, preserving relative
   order within each class (:func:`repro.fptree.constructor.rearrange`).

:class:`~repro.fptree.constructor.FPTreeConstructor` wires the three
together; :class:`~repro.fptree.constructor.FPTreeBroadcast` is the
resulting broadcast structure, directly comparable with the engines in
:mod:`repro.network.structures`.

Names are re-exported lazily: :mod:`repro.network.structures` shares the
tree-construction helpers in :mod:`repro.fptree.tree`, so an eager
import here would be circular.
"""

from __future__ import annotations

import typing as t

__all__ = [
    "TreeNode",
    "build_tree",
    "leaf_positions",
    "tree_depth",
    "rearrange",
    "FPTreeConstructor",
    "FPTreeBroadcast",
    "FailurePredictor",
    "MonitorAlertPredictor",
    "NullPredictor",
    "OraclePredictor",
    "StaticSetPredictor",
    "topology_aware_order",
]

_LAZY: dict[str, str] = {
    "TreeNode": "repro.fptree.tree",
    "build_tree": "repro.fptree.tree",
    "leaf_positions": "repro.fptree.tree",
    "tree_depth": "repro.fptree.tree",
    "rearrange": "repro.fptree.constructor",
    "FPTreeConstructor": "repro.fptree.constructor",
    "FPTreeBroadcast": "repro.fptree.constructor",
    "FailurePredictor": "repro.fptree.predictor",
    "MonitorAlertPredictor": "repro.fptree.predictor",
    "NullPredictor": "repro.fptree.predictor",
    "OraclePredictor": "repro.fptree.predictor",
    "StaticSetPredictor": "repro.fptree.predictor",
    "topology_aware_order": "repro.fptree.topology_aware",
}


def __getattr__(name: str) -> t.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.fptree' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)
