"""K-ary communication-tree construction by recursive list grouping.

The paper's procedure (Section IV-B): the satellite node holds the full
participant list; it splits the *rest* of the list into ``w`` contiguous
groups, the first element of each group becomes a first-layer child, and
each child repeats the procedure on its group.  Because every node uses
the same deterministic grouping, *a node's position in the initial list
fully determines its position in the tree* — which is exactly what lets
the FP-Tree constructor control tree placement purely by rearranging the
list (Section IV-D/E).

``leaf_positions`` reproduces the paper's "simulate the construction,
collect leaf locations" step without materialising the tree; its cost
recurrence is Eq. 2, i.e. Θ(n).
"""

from __future__ import annotations

import contextlib
import typing as t
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class VisitCounter:
    """Counts recursion steps of the tree walks.

    Tests install one via :func:`count_visits` to assert the paper's
    O(n) construction-cost claim (Eq. 2) — a quadratic regression shows
    up as a superlinear visit count long before it shows up as wall
    time.
    """

    __slots__ = ("visits",)

    def __init__(self) -> None:
        self.visits = 0


_counter: VisitCounter | None = None


@contextlib.contextmanager
def count_visits(counter: VisitCounter | None = None) -> t.Iterator[VisitCounter]:
    """Install ``counter`` (created if omitted) for the with-block."""
    global _counter
    counter = counter if counter is not None else VisitCounter()
    previous, _counter = _counter, counter
    try:
        yield counter
    finally:
        _counter = previous


def _visit() -> None:
    if _counter is not None:
        _counter.visits += 1


@dataclass
class TreeNode:
    """One vertex of a built communication tree."""

    node_id: int
    children: list["TreeNode"] = field(default_factory=list)

    def is_leaf(self) -> bool:
        return not self.children

    def iter_nodes(self) -> t.Iterator["TreeNode"]:
        """Pre-order traversal."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaf_ids(self) -> list[int]:
        return [n.node_id for n in self.iter_nodes() if n.is_leaf()]

    def size(self) -> int:
        return sum(1 for _ in self.iter_nodes())


def _check_width(width: int) -> None:
    if width < 2:
        raise ConfigurationError(f"tree width must be >= 2, got {width}")


def _chunk_bounds(lo: int, hi: int, width: int) -> list[tuple[int, int]]:
    """Split range [lo, hi) into <= width contiguous non-empty chunks.

    Balanced like ``numpy.array_split``: the first ``n % width`` chunks
    get one extra element.  Deterministic, so every node in the real
    system would compute identical groupings.
    """
    n = hi - lo
    if n <= 0:
        return []
    k = min(width, n)
    base, extra = divmod(n, k)
    bounds = []
    start = lo
    for i in range(k):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def build_tree(nodelist: t.Sequence[int], width: int) -> TreeNode:
    """Build the k-ary communication tree for ``nodelist``.

    ``nodelist[0]`` is the root (the satellite node in ESLURM); the rest
    are grouped recursively.  Raises on an empty list.
    """
    _check_width(width)
    if not nodelist:
        raise ConfigurationError("cannot build a tree from an empty nodelist")

    def rec(lo: int, hi: int) -> TreeNode:
        # nodelist[lo] is the subtree root; (lo, hi) holds its descendants.
        _visit()
        root = TreeNode(nodelist[lo])
        for c_lo, c_hi in _chunk_bounds(lo + 1, hi, width):
            root.children.append(rec(c_lo, c_hi))
        return root

    return rec(0, len(nodelist))


#: (n, width) -> leaf positions.  Trees are pure functions of list
#: length and width, and the same handful of shapes recurs thousands of
#: times (heartbeat shares, common job sizes), so this is the cheapest
#: memo in the whole broadcast path.  Bypassed while a VisitCounter is
#: installed so cost-claim tests still measure the real recursion.
_leaf_memo: dict[tuple[int, int], tuple[int, ...]] = {}
_LEAF_MEMO_MAX = 512


def leaf_positions(n: int, width: int) -> list[int]:
    """Indices of ``nodelist`` positions that become leaves of the tree.

    Equivalent to ``build_tree(range(n), width).leaf_ids()`` but without
    constructing nodes — the paper's O(n) "Leaf-nodes Location" pass.
    """
    _check_width(width)
    if n < 0:
        raise ConfigurationError("n cannot be negative")
    if _counter is None:
        cached = _leaf_memo.get((n, width))
        if cached is not None:
            return list(cached)
    leaves: list[int] = []

    def rec(lo: int, hi: int) -> None:
        _visit()
        if hi - lo == 1:  # no descendants: position lo is a leaf
            leaves.append(lo)
            return
        for c_lo, c_hi in _chunk_bounds(lo + 1, hi, width):
            rec(c_lo, c_hi)

    if n:
        rec(0, n)
    if _counter is None:
        if len(_leaf_memo) >= _LEAF_MEMO_MAX:
            _leaf_memo.clear()
        _leaf_memo[(n, width)] = tuple(leaves)
    return leaves


def tree_depth(n: int, width: int) -> int:
    """Depth (root = 0) of the tree built over ``n`` list entries."""
    _check_width(width)
    if n <= 0:
        return 0

    def rec(lo: int, hi: int) -> int:
        if hi - lo == 1:
            return 0
        return 1 + max(rec(c_lo, c_hi) for c_lo, c_hi in _chunk_bounds(lo + 1, hi, width))

    return rec(0, n)


def children_bounds(lo: int, hi: int, width: int) -> list[tuple[int, int]]:
    """Public alias of the grouping step for engines that walk the
    implicit tree over index ranges instead of building it."""
    return _chunk_bounds(lo + 1, hi, width)
