"""PREP: runtime prediction by job running path [Zhou et al., ICPP'21].

PREP groups jobs by the *path of the executable they run* and trains a
model per group.  Production traces rarely expose full paths; following
the paper's insight — the path identifies "the same application" — we
key groups on the job name (the executable), which like a real path is
shared across users, and keep an exponentially weighted runtime summary
per group with a global fallback.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.sched.job import Job


@dataclass
class _GroupStats:
    ewma: float
    n: int


class PrepEstimator:
    """Per-path (executable name) exponentially weighted runtime models."""

    name = "prep"

    def __init__(self, decay: float = 0.3, min_group: int = 2) -> None:
        #: weight of the newest observation in the group EWMA
        self.decay = decay
        self.min_group = min_group
        self._groups: dict[str, _GroupStats] = {}
        self._global_ewma: float | None = None

    @staticmethod
    def _key(job: Job) -> str:
        return job.name

    def observe(self, job: Job, now: float) -> None:
        key = self._key(job)
        stats = self._groups.get(key)
        if stats is None:
            self._groups[key] = _GroupStats(ewma=job.runtime_s, n=1)
        else:
            stats.ewma = (1 - self.decay) * stats.ewma + self.decay * job.runtime_s
            stats.n += 1
        if self._global_ewma is None:
            self._global_ewma = job.runtime_s
        else:
            self._global_ewma = (1 - self.decay) * self._global_ewma + self.decay * job.runtime_s

    def estimate(self, job: Job, now: float) -> float | None:
        stats = self._groups.get(self._key(job))
        if stats is not None and stats.n >= self.min_group:
            return stats.ewma
        if stats is not None:  # one observation: still better than nothing
            return stats.ewma
        return self._global_ewma
