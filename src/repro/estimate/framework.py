"""The ESLURM job-runtime-estimation framework (Section V, Fig. 6).

Three cooperating modules, exactly as in the paper:

* **Estimation model generator** — every ``refresh_interval`` (default
  15 h, chosen from the job-correlation decay of Fig. 5b) it takes the
  last ``window`` jobs (default 700, from the job-ID-gap decay of
  Fig. 5c), clusters them with K-means++ (K by the elbow method, or a
  fixed K — the paper lands on 15), and trains one ε-SVR per cluster
  in log-runtime space.
* **Real-time estimation module** — event-driven: encodes a newly
  submitted job, matches the nearest cluster, predicts, multiplies by
  the slack α (Eq. 3, default 1.05) to penalise underestimation, and
  *gates on AEA*: when the user supplied an estimate, the model's
  value is used only if the matched cluster's average estimation
  accuracy exceeds ``aea_gate`` (90 %).
* **Record module** — on job completion, scores the model's (pre-slack)
  estimate with Eq. 4 and updates the owning cluster's running AEA
  (Eq. 5).
"""

from __future__ import annotations

import typing as t
from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.estimate.features import FeatureEncoder
from repro.estimate.kmeans import KMeans, elbow_k
from repro.estimate.metrics import estimation_accuracy
from repro.estimate.svr import SVR
from repro.sched.job import Job
from repro.telemetry import facade as telemetry

HOUR = 3600.0


@dataclass(frozen=True)
class EstimatorConfig:
    """Tunables of the ESLURM estimation framework.

    Defaults are the paper's production settings; ``slack`` is swept in
    Table VIII and ``window`` / ``refresh_interval_s`` are exposed to
    administrators just as the paper describes.
    """

    window: int = 700
    refresh_interval_s: float = 15 * HOUR
    #: the paper's elbow method gave K = 15 on its production trace; K
    #: should track the number of distinct job groups in the window
    #: (sweep it when the workload has many more applications).
    k_clusters: int | None = 15  # None -> elbow method
    k_max: int = 25
    slack: float = 1.05
    aea_gate: float = 0.90
    min_history: int = 30
    min_cluster_size: int = 3
    #: also retrain after this many completions, whichever comes first —
    #: keeps early models from going stale while history is still short.
    refresh_jobs: int = 50
    #: upward bias, in per-cluster log-residual standard deviations —
    #: tight clusters barely move, noisy clusters get a safety margin.
    #: This is the statistically-grounded half of "penalise
    #: underestimation"; Eq. 3's slack α is the flat half.
    q_sigma: float = 1.0
    #: lower bound on the per-cluster residual scale used for the
    #: uplift: in-sample residuals understate out-of-sample spread, and
    #: an uplift of zero would leave ~50 % of predictions underestimates.
    resid_floor: float = 0.1

    def __post_init__(self) -> None:
        if self.window < self.min_history or self.min_history < 2:
            raise ConfigurationError("window must hold at least min_history >= 2 jobs")
        if self.refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        if self.k_clusters is not None and self.k_clusters < 1:
            raise ConfigurationError("k_clusters must be >= 1")
        if self.slack < 1.0:
            raise ConfigurationError("slack must be >= 1 (it penalises underestimates)")
        if not 0.0 <= self.aea_gate <= 1.0:
            raise ConfigurationError("aea_gate must be a probability")


@dataclass
class _ClusterModel:
    svr: SVR | None  # None when the cluster was too small to train
    fallback_s: float  # mean runtime of cluster members
    resid_std: float = 0.0  # log-space training residual std
    #: log-space envelope of the cluster's training runtimes; a cluster
    #: model must not extrapolate beyond (a margin around) what it saw —
    #: RBF kernels decay to a meaningless constant far from the data.
    y_lo: float = 0.0
    y_hi: float = 50.0


class EslurmEstimator:
    """The paper's estimator; implements the online estimator protocol."""

    name = "eslurm"

    def __init__(self, config: EstimatorConfig | None = None, rng: np.random.Generator | None = None) -> None:
        self.config = config or EstimatorConfig()
        self.rng = rng or np.random.default_rng(0)
        self._history: deque[Job] = deque(maxlen=self.config.window)
        self._last_train: float | None = None
        self._encoder: FeatureEncoder | None = None
        self._kmeans: KMeans | None = None
        self._models: list[_ClusterModel] = []
        self._name_route: dict[str, int] = {}
        #: record-module side memory: per-name runtime EWMA, updated on
        #: every completion.  Bridges the gap between a new application's
        #: first completions and the next model generation — the
        #: real-time module is event-driven, the generator is periodic.
        self._name_ewma: dict[str, float] = {}
        # Record-module state: per-cluster EA accumulators (Eq. 5).
        self._aea_sum: list[float] = []
        self._aea_n: list[int] = []
        #: job_id -> (cluster, pre-slack model estimate) awaiting completion
        self._pending: dict[int, tuple[int, float]] = {}
        self._jobs_since_train = 0
        self.trainings = 0

    # -- estimation model generator -----------------------------------------
    def _should_retrain(self, now: float) -> bool:
        if len(self._history) < self.config.min_history:
            return False
        if self._last_train is None:
            return True
        return (
            now - self._last_train >= self.config.refresh_interval_s
            or self._jobs_since_train >= self.config.refresh_jobs
        )

    def _retrain(self, now: float) -> None:
        jobs = list(self._history)
        encoder = FeatureEncoder().fit(jobs)
        X = encoder.transform(jobs)
        y = np.log1p([j.runtime_s for j in jobs])
        with telemetry.span("estimate.kmeans_fit"):
            if self.config.k_clusters is not None:
                k = min(self.config.k_clusters, len(jobs))
            else:
                k = elbow_k(X, k_max=self.config.k_max, rng=self.rng)
            kmeans = KMeans(k, rng=self.rng).fit(X)
        labels = kmeans.labels_
        models: list[_ClusterModel] = []
        # RBF width from the *global* standardised feature scale; deriving
        # it from within-cluster variance makes tight clusters blind to
        # any point outside their hull.  The 10x factor sharpens the
        # kernel enough to separate different job names that share a
        # cluster (their hash signatures differ in a few dimensions).
        gamma = 10.0 / X.shape[1]
        with telemetry.span("estimate.svr_fit"):
            for c in range(kmeans.n_clusters):
                mask = labels == c
                members = int(mask.sum())
                fallback = float(np.expm1(y[mask].mean())) if members else 1.0
                if members >= self.config.min_cluster_size:
                    svr = SVR(gamma=gamma).fit(X[mask], y[mask])
                    resid_std = float(np.std(y[mask] - svr.predict(X[mask])))
                else:
                    svr = None
                    resid_std = float(np.std(y[mask])) if members > 1 else 0.0
                y_lo = float(y[mask].min()) if members else 0.0
                y_hi = float(y[mask].max()) if members else 50.0
                models.append(
                    _ClusterModel(svr, max(fallback, 1.0), resid_std, y_lo=y_lo, y_hi=y_hi)
                )
        # Cluster routing for known job names: the categorical part of
        # "match the closest cluster".  Each name seen in the window maps
        # to the cluster holding the majority of its training jobs; a
        # name absent from the map is one the model has never seen.
        name_votes: dict[str, Counter] = {}
        for job, label in zip(jobs, labels):
            name_votes.setdefault(job.name, Counter())[int(label)] += 1
        name_route = {name: votes.most_common(1)[0][0] for name, votes in name_votes.items()}
        self._encoder = encoder
        self._kmeans = kmeans
        self._models = models
        self._name_route = name_route
        # Fresh clusters start with optimistic-but-unproven accuracy: the
        # paper seeds AEA from the previous generation's cluster scores;
        # we carry the global mean forward as each new cluster's prior.
        prior = self.average_estimation_accuracy()
        self._aea_sum = [prior] * kmeans.n_clusters
        self._aea_n = [1] * kmeans.n_clusters
        self._last_train = now
        self._jobs_since_train = 0
        self.trainings += 1
        telemetry.count("estimate.trainings")

    # -- real-time estimation module --------------------------------------
    def estimate(self, job: Job, now: float) -> float | None:
        """Estimate at submission (Eq. 3's slack applied).

        Returns ``None`` before any model exists *and* the user gave no
        estimate; otherwise the gated choice between model and user.
        """
        if self._should_retrain(now):
            with telemetry.span("estimate.retrain"):
                self._retrain(now)
        if self._kmeans is None or self._encoder is None:
            return job.user_estimate_s
        x = self._encoder.transform_one(job)
        routed = self._name_route.get(job.name)
        if routed is None:
            # A name absent from the last model generation.  Prefer the
            # record module's running per-name memory (it learns from the
            # very first completion); else the user, else the global mean.
            ewma = self._name_ewma.get(job.name)
            if ewma is not None:
                raw = ewma * float(np.exp(self.config.q_sigma * self.config.resid_floor))
                self._pending[job.job_id] = (-1, raw)
                job.model_estimate_s = raw
                return raw * self.config.slack
            if job.user_estimate_s is not None:
                return job.user_estimate_s
            return float(np.mean([j.runtime_s for j in self._history])) * self.config.slack
        cluster = routed if routed < len(self._models) else self._kmeans.predict_one(x)
        model = self._models[cluster]
        uplift = self.config.q_sigma * max(model.resid_std, self.config.resid_floor)
        if model.svr is not None:
            log_pred = model.svr.predict_one(x)
            log_pred = float(np.clip(log_pred, model.y_lo - 0.5, model.y_hi + 0.5))
            raw = float(np.expm1(log_pred + uplift))
        else:
            raw = model.fallback_s * float(np.exp(uplift))
        raw = max(raw, 1.0)
        self._pending[job.job_id] = (cluster, raw)
        job.model_estimate_s = raw
        slacked = raw * self.config.slack  # Eq. 3
        if job.user_estimate_s is None:
            return slacked
        return slacked if self.cluster_aea(cluster) > self.config.aea_gate else job.user_estimate_s

    # -- record module -----------------------------------------------------
    def observe(self, job: Job, now: float) -> None:
        """Completed job: extend history, score pending estimate (Eq. 4/5)."""
        self._history.append(job)
        self._jobs_since_train += 1
        prev = self._name_ewma.get(job.name)
        self._name_ewma[job.name] = (
            job.runtime_s if prev is None else 0.7 * prev + 0.3 * job.runtime_s
        )
        pending = self._pending.pop(job.job_id, None)
        if pending is None:
            return
        cluster, raw = pending
        if 0 <= cluster < len(self._aea_sum):
            ea = estimation_accuracy(raw, job.runtime_s)
            self._aea_sum[cluster] += ea
            self._aea_n[cluster] += 1
            tel = telemetry.active()
            if tel is not None:
                tel.count("estimate.aea_updates")
                tel.observe("estimate.aea", ea)

    # -- accuracy bookkeeping ----------------------------------------------
    def cluster_aea(self, cluster: int) -> float:
        """Eq. 5 for one cluster."""
        if cluster >= len(self._aea_sum) or self._aea_n[cluster] == 0:
            raise EstimationError(f"no AEA data for cluster {cluster}")
        return self._aea_sum[cluster] / self._aea_n[cluster]

    def average_estimation_accuracy(self) -> float:
        """Mean AEA across clusters (0.8 prior before any data)."""
        total_n = sum(self._aea_n)
        if total_n == 0:
            return 0.8
        return sum(self._aea_sum) / total_n

    @property
    def trained(self) -> bool:
        return self._kmeans is not None
