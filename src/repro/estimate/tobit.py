"""Tobit (censored) regression and the TRIP estimator.

TRIP [Fan et al., CLUSTER'17] observes that training data for runtime
prediction is *right-censored*: a job killed at its wall limit reveals
only that its true runtime exceeded the limit.  Tobit regression fits a
linear Gaussian latent model by maximum likelihood with exactly that
censoring structure::

    y*_i = x_i·w + b + ε,   ε ~ N(0, σ²)
    y_i  = min(y*_i, c_i),  censored iff y*_i ≥ c_i

Uncensored points contribute the normal density, censored points the
upper-tail survival.  Optimised with L-BFGS over (w, b, log σ).
"""

from __future__ import annotations

import typing as t
from collections import deque

import numpy as np
from scipy.optimize import minimize
from scipy.stats import norm

from repro.errors import EstimationError
from repro.estimate.features import FeatureEncoder
from repro.sched.job import Job


class TobitRegressor:
    """Linear regression under right-censoring, fitted by MLE."""

    def __init__(self, max_iter: int = 200) -> None:
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.sigma_: float = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray, censored: np.ndarray | None = None) -> "TobitRegressor":
        """Fit on observations ``y`` with a boolean ``censored`` mask
        (``True`` where ``y`` is a lower bound on the latent value)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise EstimationError("fit needs matching non-empty X, y")
        if censored is None:
            censored = np.zeros(len(y), dtype=bool)
        censored = np.asarray(censored, dtype=bool).ravel()
        if censored.shape != y.shape:
            raise EstimationError("censored mask must match y")
        n, d = X.shape
        # OLS warm start.
        Xb = np.column_stack([X, np.ones(n)])
        w0, *_ = np.linalg.lstsq(Xb, y, rcond=None)
        resid = y - Xb @ w0
        sigma0 = max(float(resid.std()), 1e-3)
        theta0 = np.concatenate([w0, [np.log(sigma0)]])
        obs = ~censored

        def nll(theta: np.ndarray) -> float:
            w, b, log_s = theta[:d], theta[d], theta[d + 1]
            s = np.exp(log_s)
            mu = X @ w + b
            ll = 0.0
            if obs.any():
                ll += norm.logpdf(y[obs], loc=mu[obs], scale=s).sum()
            if censored.any():
                ll += norm.logsf(y[censored], loc=mu[censored], scale=s).sum()
            return -ll

        res = minimize(nll, theta0, method="L-BFGS-B", options={"maxiter": self.max_iter})
        theta = res.x
        self.coef_ = theta[:d]
        self.intercept_ = float(theta[d])
        self.sigma_ = float(np.exp(theta[d + 1]))
        return self

    @property
    def fitted(self) -> bool:
        return self.coef_ is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise EstimationError("TobitRegressor not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.coef_ + self.intercept_


class TripEstimator:
    """TRIP: Tobit regression over a sliding window, online protocol.

    Censoring comes from the wall limit: jobs whose believed limit
    truncated them are marked censored at ``limit_s``.
    """

    name = "trip"

    def __init__(self, window: int = 700, refit_every: int = 50, min_history: int = 30) -> None:
        self.window = window
        self.refit_every = refit_every
        self.min_history = min_history
        self._history: deque[Job] = deque(maxlen=window)
        self._since_fit = 0
        self._model: TobitRegressor | None = None
        self._encoder: FeatureEncoder | None = None

    def observe(self, job: Job, now: float) -> None:
        self._history.append(job)
        self._since_fit += 1
        if len(self._history) >= self.min_history and (
            self._model is None or self._since_fit >= self.refit_every
        ):
            self._refit()

    def _refit(self) -> None:
        jobs = list(self._history)
        encoder = FeatureEncoder().fit(jobs)
        X = encoder.transform(jobs)
        # Observed runtime is truncated at the wall limit; mark those
        # rows censored so the MLE treats them as lower bounds.
        observed = np.array([min(j.runtime_s, j.limit_s) for j in jobs])
        censored = np.array([j.runtime_s >= j.limit_s for j in jobs])
        y = np.log1p(observed)
        model = TobitRegressor()
        model.fit(X, y, censored=censored)
        self._model = model
        self._encoder = encoder
        self._since_fit = 0

    def estimate(self, job: Job, now: float) -> float | None:
        if self._model is None or self._encoder is None:
            return None
        x = self._encoder.transform_one(job)
        pred = float(self._model.predict(x[None, :])[0])
        # The latent model is Gaussian in log space; report the implied
        # lognormal mean (this is also TRIP's anti-underestimation lever).
        return max(float(np.expm1(pred + 0.5 * self._model.sigma_**2)), 1.0)
