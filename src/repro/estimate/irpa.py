"""IRPA: integrated runtime prediction (Wu et al.).

An ensemble averaging three regressors — random forest, SVR, and
Bayesian ridge — each fitted on the same sliding history window in
log-runtime space.  Reuses the windowed online adapter machinery.
"""

from __future__ import annotations

import typing as t
from collections import deque

import numpy as np

from repro.estimate.features import FeatureEncoder
from repro.estimate.forest import RandomForestRegressor
from repro.estimate.ridge import BayesianRidge
from repro.estimate.svr import SVR
from repro.sched.job import Job


class IrpaEstimator:
    """RF + SVR + Bayesian-ridge ensemble over a sliding window."""

    name = "irpa"

    def __init__(
        self,
        window: int = 700,
        refit_every: int = 50,
        min_history: int = 30,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.window = window
        self.refit_every = refit_every
        self.min_history = min_history
        self.rng = rng or np.random.default_rng(0)
        self._history: deque[Job] = deque(maxlen=window)
        self._since_fit = 0
        self._models: list[t.Any] = []
        self._encoder: FeatureEncoder | None = None
        self._resid_var = 0.0

    def observe(self, job: Job, now: float) -> None:
        self._history.append(job)
        self._since_fit += 1
        if len(self._history) >= self.min_history and (
            not self._models or self._since_fit >= self.refit_every
        ):
            self._refit()

    def _refit(self) -> None:
        jobs = list(self._history)
        encoder = FeatureEncoder().fit(jobs)
        X = encoder.transform(jobs)
        y = np.log1p([j.runtime_s for j in jobs])
        models = [
            RandomForestRegressor(n_estimators=20, rng=self.rng),
            SVR(),
            BayesianRidge(),
        ]
        for m in models:
            m.fit(X, y)
        ens = np.mean([m.predict(X) for m in models], axis=0)
        self._resid_var = float(np.var(y - ens))
        self._models = models
        self._encoder = encoder
        self._since_fit = 0

    def estimate(self, job: Job, now: float) -> float | None:
        if not self._models or self._encoder is None:
            return None
        x = self._encoder.transform_one(job)[None, :]
        preds = [float(m.predict(x)[0]) for m in self._models]
        # Median-to-mean correction in log space (see baselines).
        return max(float(np.expm1(np.mean(preds) + 0.5 * self._resid_var)), 1.0)
