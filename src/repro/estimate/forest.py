"""Random-forest regression, from scratch.

A baseline of Fig. 11b and one third of IRPA's ensemble.  CART-style
regression trees (variance-reduction splits over quantile candidate
thresholds), bagged over bootstrap resamples with per-split random
feature subsets.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with variance-reduction splits.

    Args:
        max_depth: depth cap.
        min_samples_leaf: smallest allowed leaf.
        max_features: features examined per split (``None`` = all).
        rng: numpy Generator for feature sub-sampling.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
        n_thresholds: int = 8,
    ) -> None:
        if max_depth < 1 or min_samples_leaf < 1:
            raise EstimationError("invalid tree hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self.n_thresholds = n_thresholds
        self._root: _TreeNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] == 0 or X.shape[0] != y.shape[0]:
            raise EstimationError("fit needs matching non-empty X, y")
        self._root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        n = len(y)
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf or np.ptp(y) < 1e-12:
            return node
        n_feat = X.shape[1]
        k = self.max_features or n_feat
        feats = self.rng.choice(n_feat, size=min(k, n_feat), replace=False)
        best_gain, best_feat, best_thr = 0.0, -1, 0.0
        parent_sse = float(((y - y.mean()) ** 2).sum())
        for f in feats:
            col = X[:, f]
            qs = np.linspace(0.05, 0.95, self.n_thresholds)
            for thr in np.unique(np.quantile(col, qs)):
                mask = col <= thr
                nl = int(mask.sum())
                if nl < self.min_samples_leaf or n - nl < self.min_samples_leaf:
                    continue
                yl, yr = y[mask], y[~mask]
                sse = float(((yl - yl.mean()) ** 2).sum() + ((yr - yr.mean()) ** 2).sum())
                gain = parent_sse - sse
                if gain > best_gain:
                    best_gain, best_feat, best_thr = gain, int(f), float(thr)
        if best_feat < 0:
            return node
        mask = X[:, best_feat] <= best_thr
        node.feature = best_feat
        node.threshold = best_thr
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise EstimationError("tree not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class RandomForestRegressor:
    """Bagged regression trees with random feature subsets.

    Args:
        n_estimators: trees in the forest.
        max_depth / min_samples_leaf: per-tree limits.
        max_features: per-split feature budget (default √d).
        rng: numpy Generator; forests are fully deterministic given it.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise EstimationError("need at least one tree")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._trees: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] == 0 or X.shape[0] != y.shape[0]:
            raise EstimationError("fit needs matching non-empty X, y")
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))
        self._trees = []
        for _ in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)  # bootstrap
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=self.rng,
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    @property
    def fitted(self) -> bool:
        return bool(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise EstimationError("forest not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.mean([t.predict(X) for t in self._trees], axis=0)

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x[None, :])[0])
