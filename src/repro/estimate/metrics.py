"""Estimation-accuracy metrics (Eq. 4/5) and the replay evaluator.

``EA`` for one job (Eq. 4)::

    EA_i = t_p/t_r   if t_p < t_r   (underestimate)
           t_r/t_p   otherwise       (overestimate)

``AEA`` (Eq. 5) is the plain mean of EA over jobs; ``UR`` is the
fraction of underestimates — the dangerous direction, since a job
running past an underestimated wall limit is killed.

``evaluate_estimator`` replays a trace through any online estimator:
each job is *estimated* at its submission event and *observed* at its
completion event, with both event streams interleaved in time order so
models can never peek at a future completion.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.sched.job import Job


class RuntimeEstimator(t.Protocol):
    """Protocol every runtime-estimation model implements."""

    name: str

    def estimate(self, job: Job, now: float) -> float | None:
        """Predicted runtime in seconds at submission, or ``None`` when
        the model has nothing to say yet."""
        ...  # pragma: no cover - protocol body

    def observe(self, job: Job, now: float) -> None:
        """Ingest one completed job (actual runtime now known)."""
        ...  # pragma: no cover - protocol body


def estimation_accuracy(t_p: float, t_r: float) -> float:
    """Eq. 4 for one job; in (0, 1], 1 = exact."""
    if t_p <= 0 or t_r <= 0:
        raise EstimationError("EA needs positive predicted and actual runtimes")
    return t_p / t_r if t_p < t_r else t_r / t_p


@dataclass
class EstimatorReport:
    """Replay outcome for one estimator."""

    name: str
    n_jobs: int
    n_estimated: int
    aea: float
    underestimate_rate: float
    mean_abs_error_s: float

    def row(self) -> str:
        return (
            f"{self.name:<12} AEA={self.aea:5.1%}  UR={self.underestimate_rate:5.1%}  "
            f"MAE={self.mean_abs_error_s:8.1f}s  ({self.n_estimated}/{self.n_jobs} estimated)"
        )


def evaluate_estimator(
    estimator: RuntimeEstimator,
    jobs: t.Sequence[Job],
    warmup: int = 0,
) -> EstimatorReport:
    """Replay ``jobs`` through ``estimator`` and score its estimates.

    Completion events are placed at ``submit_time + runtime_s`` (jobs
    replayed as if started immediately), keeping the causal order
    between what a model may learn and what it must predict.

    Args:
        estimator: any :class:`RuntimeEstimator`.
        jobs: trace in any order; sorted internally by submit time.
        warmup: skip the first ``warmup`` submissions when scoring
            (models still observe them).
    """
    ordered = sorted(jobs, key=lambda j: j.submit_time)
    events: list[tuple[float, int, int, Job]] = []
    for i, job in enumerate(ordered):
        events.append((job.submit_time, 1, i, job))  # estimate
        events.append((job.submit_time + job.runtime_s, 0, i, job))  # observe first on ties
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    eas: list[float] = []
    errors: list[float] = []
    n_under = 0
    n_estimated = 0
    for when, kind, i, job in events:
        if kind == 0:
            estimator.observe(job, now=when)
            continue
        pred = estimator.estimate(job, now=when)
        if pred is None or i < warmup:
            continue
        n_estimated += 1
        eas.append(estimation_accuracy(pred, job.runtime_s))
        errors.append(abs(pred - job.runtime_s))
        if pred < job.runtime_s:
            n_under += 1
    return EstimatorReport(
        name=getattr(estimator, "name", type(estimator).__name__),
        n_jobs=len(ordered),
        n_estimated=n_estimated,
        aea=float(np.mean(eas)) if eas else 0.0,
        underestimate_rate=n_under / n_estimated if n_estimated else 0.0,
        mean_abs_error_s=float(np.mean(errors)) if errors else 0.0,
    )
