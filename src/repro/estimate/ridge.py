"""Bayesian ridge regression (evidence approximation), from scratch.

One third of IRPA's ensemble.  The classic MacKay iterative scheme:
alternate between the posterior mean/covariance of the weights and
point estimates of the noise precision (α) and weight precision (λ)
until the effective number of parameters stabilises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError


class BayesianRidge:
    """Linear regression with automatic ridge strength.

    Args:
        max_iter: evidence-maximisation iterations.
        tol: convergence threshold on the weight change.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-6) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.alpha_: float = 1.0  # noise precision
        self.lambda_: float = 1.0  # weight precision

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BayesianRidge":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise EstimationError("fit needs matching non-empty X, y")
        # Centre so the intercept drops out of the evidence iterations.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n, d = Xc.shape
        XtX = Xc.T @ Xc
        Xty = Xc.T @ yc
        eigvals = np.linalg.eigvalsh(XtX)
        alpha, lam = 1.0, 1.0
        w = np.zeros(d)
        for _ in range(self.max_iter):
            A = alpha * XtX + lam * np.eye(d)
            w_new = alpha * np.linalg.solve(A, Xty)
            gamma = float((alpha * eigvals / (alpha * eigvals + lam)).sum())
            resid = yc - Xc @ w_new
            rss = float(resid @ resid)
            lam = gamma / max(float(w_new @ w_new), 1e-12)
            alpha = max(n - gamma, 1e-12) / max(rss, 1e-12)
            if np.linalg.norm(w_new - w) < self.tol * max(1.0, np.linalg.norm(w_new)):
                w = w_new
                break
            w = w_new
        self.coef_ = w
        self.intercept_ = y_mean - float(x_mean @ w)
        self.alpha_ = alpha
        self.lambda_ = lam
        return self

    @property
    def fitted(self) -> bool:
        return self.coef_ is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise EstimationError("BayesianRidge not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.coef_ + self.intercept_

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x[None, :])[0])
