"""Simple estimation baselines: user estimates, Last-2, and windowed
batch-model adapters.

* :class:`UserEstimator` — pass the user's own wall-time request
  through (the "User" series of Fig. 11b: low accuracy, ~0 UR);
* :class:`Last2Estimator` — Tsafrir et al.'s system-generated
  prediction: the mean of the same user's last two actual runtimes;
* :class:`WindowedModelEstimator` — adapts any batch ``fit/predict``
  regressor (SVR, random forest, ...) to the online protocol by
  refitting on a sliding history window every N observations; this is
  how the "SVM" and "RandomForest" rows of Fig. 11b are produced.
"""

from __future__ import annotations

import typing as t
from collections import deque

import numpy as np

from repro.errors import EstimationError
from repro.estimate.features import FeatureEncoder
from repro.sched.job import Job


class UserEstimator:
    """Echo the user-submitted estimate."""

    name = "user"

    def estimate(self, job: Job, now: float) -> float | None:
        return job.user_estimate_s

    def observe(self, job: Job, now: float) -> None:  # noqa: D401 - nothing to learn
        """User estimates do not learn."""


class Last2Estimator:
    """Mean of the same user's last two actual runtimes [Tsafrir 2007]."""

    name = "last-2"

    def __init__(self) -> None:
        self._history: dict[str, deque[float]] = {}

    def estimate(self, job: Job, now: float) -> float | None:
        past = self._history.get(job.user)
        if not past:
            return job.user_estimate_s  # fall back before any history
        return float(np.mean(past))

    def observe(self, job: Job, now: float) -> None:
        self._history.setdefault(job.user, deque(maxlen=2)).append(job.runtime_s)


class _BatchModel(t.Protocol):
    def fit(self, X: np.ndarray, y: np.ndarray) -> t.Any: ...  # pragma: no cover
    def predict(self, X: np.ndarray) -> np.ndarray: ...  # pragma: no cover


class WindowedModelEstimator:
    """Online adapter around a batch regressor.

    Keeps a sliding window of completed jobs; refits the model every
    ``refit_every`` observations.  Targets are learned in log-space
    (runtimes are heavy-tailed) and predictions clamped positive.

    Args:
        model_factory: builds a fresh regressor for each refit.
        name: report label.
        window: history size (jobs).
        refit_every: observations between refits.
        min_history: observations required before the first fit.
    """

    def __init__(
        self,
        model_factory: t.Callable[[], _BatchModel],
        name: str,
        window: int = 700,
        refit_every: int = 50,
        min_history: int = 30,
    ) -> None:
        if window < min_history or min_history < 2:
            raise EstimationError("window must hold at least min_history >= 2 jobs")
        self.name = name
        self.model_factory = model_factory
        self.window = window
        self.refit_every = refit_every
        self.min_history = min_history
        self._history: deque[Job] = deque(maxlen=window)
        self._since_fit = 0
        self._model: _BatchModel | None = None
        self._encoder: FeatureEncoder | None = None
        self._resid_var = 0.0

    def observe(self, job: Job, now: float) -> None:
        self._history.append(job)
        self._since_fit += 1
        if len(self._history) >= self.min_history and (
            self._model is None or self._since_fit >= self.refit_every
        ):
            self._refit()

    def _refit(self) -> None:
        jobs = list(self._history)
        encoder = FeatureEncoder().fit(jobs)
        X = encoder.transform(jobs)
        y = np.log1p([j.runtime_s for j in jobs])
        model = self.model_factory()
        model.fit(X, y)
        self._resid_var = float(np.var(y - model.predict(X)))
        self._model = model
        self._encoder = encoder
        self._since_fit = 0

    def estimate(self, job: Job, now: float) -> float | None:
        if self._model is None or self._encoder is None:
            return None
        x = self._encoder.transform_one(job)
        pred = float(self._model.predict(x[None, :])[0])
        # Log-space models predict the conditional *median*; correct to
        # the lognormal mean so estimates are not systematically low.
        return max(float(np.expm1(pred + 0.5 * self._resid_var)), 1.0)


def svm_estimator(window: int = 700) -> WindowedModelEstimator:
    """Fig. 11b's "SVM" row: one global SVR, no clustering."""
    from repro.estimate.svr import SVR

    return WindowedModelEstimator(SVR, name="svm", window=window)


def random_forest_estimator(window: int = 700, seed: int = 0) -> WindowedModelEstimator:
    """Fig. 11b's "RandomForest" row."""
    from repro.estimate.forest import RandomForestRegressor

    def factory() -> RandomForestRegressor:
        return RandomForestRegressor(n_estimators=15, rng=np.random.default_rng(seed))

    return WindowedModelEstimator(factory, name="random-forest", window=window, refit_every=100)
