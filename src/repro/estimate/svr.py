"""ε-insensitive support vector regression, from scratch.

Solves the standard SVR dual with the bias absorbed into the kernel
(adding a constant term to K), which removes the equality constraint
and leaves a smooth box-constrained QP over (α, α*)::

    min_{α,α* ∈ [0,C]}  ½ (α-α*)ᵀ K̃ (α-α*) - yᵀ(α-α*) + ε·1ᵀ(α+α*)

solved with scipy's L-BFGS-B.  Predictions are
``f(x) = Σ (αᵢ-α*ᵢ) K̃(xᵢ, x)``.  RBF and linear kernels; per-cluster
training sets in the paper's framework are a few hundred samples, well
within dense-kernel territory.
"""

from __future__ import annotations

import typing as t

import numpy as np
from scipy.optimize import minimize

from repro.errors import EstimationError


def _rbf(
    X: np.ndarray, Y: np.ndarray, gamma: float, y_sq: np.ndarray | None = None
) -> np.ndarray:
    if y_sq is None:
        y_sq = (Y * Y).sum(axis=1)[None, :]
    d = (X * X).sum(axis=1)[:, None] - 2.0 * X @ Y.T + y_sq
    return np.exp(-gamma * np.maximum(d, 0.0))


class SVR:
    """ε-SVR with RBF (default) or linear kernel.

    Args:
        C: box constraint (regularisation inverse).
        epsilon: width of the insensitive tube.
        kernel: ``"rbf"`` or ``"linear"``.
        gamma: RBF width; ``None`` uses 1 / (n_features · var(X)), the
            'scale' heuristic.
        bias_term: constant added to the kernel to absorb the intercept.
    """

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.05,
        kernel: str = "rbf",
        gamma: float | None = None,
        bias_term: float = 1.0,
        max_iter: int = 300,
    ) -> None:
        if C <= 0 or epsilon < 0:
            raise EstimationError("C must be positive and epsilon non-negative")
        if kernel not in ("rbf", "linear", "rbf+linear"):
            raise EstimationError(f"unknown kernel {kernel!r}")
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.bias_term = bias_term
        self.max_iter = max_iter
        self._X: np.ndarray | None = None
        self._X_sq: np.ndarray | None = None
        self._beta: np.ndarray | None = None
        self._gamma_eff: float = 1.0
        self._y_mean: float = 0.0

    # -- kernels ---------------------------------------------------------
    def _kernel(
        self, X: np.ndarray, Y: np.ndarray, y_sq: np.ndarray | None = None
    ) -> np.ndarray:
        if self.kernel == "rbf":
            K = _rbf(X, Y, self._gamma_eff, y_sq)
        elif self.kernel == "linear":
            K = X @ Y.T / max(X.shape[1], 1)
        else:  # rbf+linear: local memory plus global (scaling) trends
            K = _rbf(X, Y, self._gamma_eff, y_sq) + 0.3 * (X @ Y.T) / max(X.shape[1], 1)
        return K + self.bias_term

    # -- fit ------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise EstimationError("fit needs matching non-empty X, y")
        n = X.shape[0]
        if self.gamma is None:
            var = X.var()
            self._gamma_eff = 1.0 / (X.shape[1] * var) if var > 1e-12 else 1.0
        else:
            self._gamma_eff = self.gamma
        # Centre the target: with the bias absorbed into the kernel, an
        # uncentred target forces a large constant component Σβ whose
        # far-field value is unconstrained; centring makes predictions
        # far from the data revert to the training mean instead.
        self._y_mean = float(y.mean())
        y = y - self._y_mean
        K = self._kernel(X, X)
        eps = self.epsilon
        C = self.C

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            a, a_star = theta[:n], theta[n:]
            beta = a - a_star
            Kb = K @ beta
            val = 0.5 * beta @ Kb - y @ beta + eps * (a.sum() + a_star.sum())
            grad = np.concatenate([Kb - y + eps, -Kb + y + eps])
            return val, grad

        theta0 = np.zeros(2 * n)
        res = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            bounds=[(0.0, C)] * (2 * n),
            options={"maxiter": self.max_iter},
        )
        theta = res.x
        self._beta = theta[:n] - theta[n:]
        self._X = X
        # Support-vector row norms, reused by every prediction — the
        # submit-path predict_one is the estimator's hot loop.
        self._X_sq = (X * X).sum(axis=1)[None, :]
        return self

    @property
    def fitted(self) -> bool:
        return self._beta is not None

    @property
    def n_support(self) -> int:
        """Number of support vectors (non-negligible dual coefficients)."""
        if self._beta is None:
            raise EstimationError("SVR not fitted")
        return int((np.abs(self._beta) > 1e-8).sum())

    # -- predict ------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._beta is None or self._X is None:
            raise EstimationError("SVR not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self._kernel(X, self._X, self._X_sq) @ self._beta + self._y_mean

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x[None, :])[0])
