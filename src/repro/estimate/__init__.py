"""Job runtime estimation (Section V) and every baseline of Fig. 11b.

The ESLURM framework (:mod:`repro.estimate.framework`) combines:

* unsupervised clustering of a recent-history window (K-means++, elbow
  method, Section V-A) — :mod:`repro.estimate.kmeans`;
* one ε-SVR per cluster — :mod:`repro.estimate.svr`;
* a slack multiplier α penalising underestimation (Eq. 3);
* per-cluster average-estimation-accuracy (AEA) bookkeeping (Eq. 4/5)
  that gates whether the model's estimate overrides the user's.

Baselines (:mod:`repro.estimate.baselines`, :mod:`~repro.estimate.irpa`,
:mod:`~repro.estimate.tobit`, :mod:`~repro.estimate.prep`): user
estimates, Last-2, a single global SVR ("SVM"), random forest, IRPA
(RF + SVR + Bayesian ridge ensemble), TRIP (Tobit regression), and PREP
(path-cluster models).  All models — including the substrate learners in
:mod:`~repro.estimate.forest` and :mod:`~repro.estimate.ridge` — are
implemented from scratch on numpy/scipy.
"""

from repro.estimate.baselines import (
    Last2Estimator,
    UserEstimator,
    WindowedModelEstimator,
    random_forest_estimator,
    svm_estimator,
)
from repro.estimate.features import FeatureEncoder
from repro.estimate.forest import RandomForestRegressor
from repro.estimate.framework import EslurmEstimator, EstimatorConfig
from repro.estimate.irpa import IrpaEstimator
from repro.estimate.kmeans import KMeans, elbow_k
from repro.estimate.metrics import estimation_accuracy, evaluate_estimator
from repro.estimate.prep import PrepEstimator
from repro.estimate.ridge import BayesianRidge
from repro.estimate.svr import SVR
from repro.estimate.tobit import TobitRegressor, TripEstimator

__all__ = [
    "FeatureEncoder",
    "KMeans",
    "elbow_k",
    "SVR",
    "RandomForestRegressor",
    "BayesianRidge",
    "TobitRegressor",
    "UserEstimator",
    "Last2Estimator",
    "WindowedModelEstimator",
    "svm_estimator",
    "random_forest_estimator",
    "IrpaEstimator",
    "TripEstimator",
    "PrepEstimator",
    "EslurmEstimator",
    "EstimatorConfig",
    "estimation_accuracy",
    "evaluate_estimator",
]
