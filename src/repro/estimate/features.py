"""Feature encoding for runtime estimation (Table IV).

The paper's five features: job name, user name, required nodes,
required cores, and submission time (hour of day).  Categorical
features (name, user) are encoded with *signed feature hashing* — a
fixed-width vector of ±1 components drawn from salted stable hashes —
so that identical strings share a signature and different strings are
nearly orthogonal.  This is what lets Euclidean K-means form name-pure
clusters, which is the backbone of the paper's clustering + per-cluster
SVR design.  Node/core counts are log-scaled (job sizes are heavy
tailed); the hour of day is encoded cyclically (23:00 and 00:00 should
be near each other — long jobs cluster in the 18:00–24:00 window).
"""

from __future__ import annotations

import math
import typing as t
import zlib

import numpy as np

from repro.errors import EstimationError
from repro.sched.job import Job

#: hash-signature widths
NAME_DIMS = 6
USER_DIMS = 3
#: numeric features: log-nodes, log-cores, sin(hour), cos(hour)
NUMERIC_DIMS = 4
#: Encoded feature dimensionality.
N_FEATURES = NAME_DIMS + USER_DIMS + NUMERIC_DIMS

#: post-standardisation group weights: the job name is the paper's
#: dominant locality signal, so it gets the largest share of the
#: distance budget in clustering and kernels.
_WEIGHTS = np.concatenate(
    [
        np.full(NAME_DIMS, 1.5),
        np.full(USER_DIMS, 1.0),
        np.full(NUMERIC_DIMS, 0.7),
    ]
)

_TWO_PI = 2.0 * math.pi


#: signature cache: names/users recur constantly (the paper's 89.2 %
#: repeat rate) and the signatures are pure functions of the string.
_HASH_CACHE: dict[tuple[str, int], np.ndarray] = {}
_HASH_CACHE_MAX = 4096


def _signed_hash_vector(text: str, dims: int) -> np.ndarray:
    """Deterministic ±1 signature of a string (salted stable hashes)."""
    key = (text, dims)
    cached = _HASH_CACHE.get(key)
    if cached is not None:
        return cached
    data = text.encode("utf-8")
    bits = np.empty(dims)
    for i in range(dims):
        h = zlib.crc32(data, i + 1)
        bits[i] = 1.0 if h & 1 else -1.0
    bits.setflags(write=False)  # shared across callers via the cache
    if len(_HASH_CACHE) >= _HASH_CACHE_MAX:
        _HASH_CACHE.clear()
    _HASH_CACHE[key] = bits
    return bits


def submission_hour(job: Job) -> int:
    """Hour-of-day (0-23) of a job's submission time."""
    return int(job.submit_time // 3600) % 24


class FeatureEncoder:
    """Encodes jobs into fixed-length numeric vectors and standardises.

    ``fit`` learns per-dimension mean/std on a training set; callers
    must fit before transforming (clusters and kernels are scale
    sensitive).  Group weights are applied after standardisation.
    """

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @staticmethod
    def raw(job: Job) -> np.ndarray:
        """Unstandardised feature vector for one job (Table IV)."""
        hour = submission_hour(job)
        angle = _TWO_PI * hour / 24.0
        numeric = np.array(
            [
                math.log2(job.n_nodes + 1),
                math.log2(job.n_nodes * job.cores_per_node + 1),
                math.sin(angle),
                math.cos(angle),
            ]
        )
        return np.concatenate(
            [
                _signed_hash_vector(job.name, NAME_DIMS),
                _signed_hash_vector(job.user, USER_DIMS),
                numeric,
            ]
        )

    @classmethod
    def raw_matrix(cls, jobs: t.Sequence[Job]) -> np.ndarray:
        if not jobs:
            return np.empty((0, N_FEATURES))
        return np.stack([cls.raw(j) for j in jobs])

    # -- standardisation --------------------------------------------------
    def fit(self, jobs: t.Sequence[Job]) -> "FeatureEncoder":
        if not jobs:
            raise EstimationError("cannot fit encoder on an empty job set")
        X = self.raw_matrix(jobs)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0  # constant dimensions pass through
        self._std = std
        return self

    @property
    def fitted(self) -> bool:
        return self._mean is not None

    def transform(self, jobs: t.Sequence[Job]) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise EstimationError("encoder not fitted")
        return (self.raw_matrix(jobs) - self._mean) / self._std * _WEIGHTS

    def transform_one(self, job: Job) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise EstimationError("encoder not fitted")
        return (self.raw(job) - self._mean) / self._std * _WEIGHTS

    def fit_transform(self, jobs: t.Sequence[Job]) -> np.ndarray:
        return self.fit(jobs).transform(jobs)
