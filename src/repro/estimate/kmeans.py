"""K-means++ clustering and the elbow method (Section V-A).

From-scratch implementation on numpy: careful seeding per Arthur &
Vassilvitskii (k-means++), Lloyd iterations with empty-cluster
re-seeding, and the classical elbow criterion the paper uses to pick
K (the knee of the inertia curve via maximum distance to the chord).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import EstimationError


def _pairwise_sq_dist(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Squared euclidean distances, shape (n_samples, n_centers)."""
    # (x - c)^2 = x.x - 2 x.c + c.c ; clip the tiny negatives from fp error
    d = (
        (X * X).sum(axis=1)[:, None]
        - 2.0 * X @ C.T
        + (C * C).sum(axis=1)[None, :]
    )
    return np.maximum(d, 0.0)


class KMeans:
    """K-means with k-means++ initialisation.

    Args:
        n_clusters: K.
        max_iter: Lloyd iteration cap.
        tol: relative centre-shift convergence threshold.
        rng: numpy Generator (deterministic experiments pass a seeded one).
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_clusters < 1:
            raise EstimationError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.rng = rng or np.random.default_rng(0)
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("nan")
        self.n_iter_: int = 0

    # -- k-means++ seeding -------------------------------------------------
    def _init_centers(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = self.n_clusters
        centers = np.empty((k, X.shape[1]))
        first = int(self.rng.integers(n))
        centers[0] = X[first]
        closest = _pairwise_sq_dist(X, centers[:1]).ravel()
        for i in range(1, k):
            total = closest.sum()
            if total <= 0:  # all points coincide with chosen centers
                idx = int(self.rng.integers(n))
            else:
                probs = closest / total
                idx = int(self.rng.choice(n, p=probs))
            centers[i] = X[idx]
            closest = np.minimum(closest, _pairwise_sq_dist(X, centers[i : i + 1]).ravel())
        return centers

    # -- Lloyd ------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise EstimationError("fit needs a non-empty 2-D array")
        # Clamp K to the number of *distinct* rows, not just the number of
        # rows: with duplicates (common for short runtime-history windows
        # where many jobs share a wall time) K > n_distinct leaves clusters
        # that can never own a point, and the empty-cluster re-seed loop
        # thrashes without converging.
        n_distinct = np.unique(X, axis=0).shape[0]
        k = min(self.n_clusters, n_distinct)
        self.n_clusters = k
        centers = self._init_centers(X)
        for it in range(self.max_iter):
            d = _pairwise_sq_dist(X, centers)
            labels = d.argmin(axis=1)
            new_centers = np.empty_like(centers)
            for j in range(k):
                members = X[labels == j]
                if len(members) == 0:
                    # Re-seed an empty cluster at the worst-served point.
                    new_centers[j] = X[d.min(axis=1).argmax()]
                else:
                    new_centers[j] = members.mean(axis=0)
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            self.n_iter_ = it + 1
            if shift <= self.tol * max(1.0, np.linalg.norm(centers)):
                break
        d = _pairwise_sq_dist(X, centers)
        self.labels_ = d.argmin(axis=1)
        self.inertia_ = float(d.min(axis=1).sum())
        self.centers_ = centers
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centre labels for new points."""
        if self.centers_ is None:
            raise EstimationError("KMeans not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return _pairwise_sq_dist(X, self.centers_).argmin(axis=1)

    def predict_one(self, x: np.ndarray) -> int:
        return int(self.predict(x[None, :])[0])


def elbow_k(
    X: np.ndarray,
    k_max: int = 25,
    rng: np.random.Generator | None = None,
) -> int:
    """Pick K with the elbow method (max distance to the inertia chord).

    Fits K-means for k = 1..k_max and returns the k whose inertia point
    is farthest from the straight line joining the endpoints of the
    inertia curve — the classical geometric knee.
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if n == 0:
        raise EstimationError("elbow_k needs data")
    # Same distinct-sample clamp as KMeans.fit: sweeping k past the number
    # of distinct rows overflows K relative to the data (every extra k
    # repeats the same zero-improvement inertia and can crown a bogus
    # elbow at the duplicated tail).
    k_max = min(k_max, np.unique(X, axis=0).shape[0])
    rng = rng or np.random.default_rng(0)
    ks = np.arange(1, k_max + 1)
    inertias = np.array([KMeans(int(k), rng=rng).fit(X).inertia_ for k in ks])
    if k_max == 1:
        return 1
    # Distance from each (k, inertia) point to the chord, after scaling
    # both axes to [0, 1] so units do not dominate.
    x = (ks - ks[0]) / max(ks[-1] - ks[0], 1)
    span = inertias[0] - inertias[-1]
    y = (inertias - inertias[-1]) / span if span > 0 else np.zeros_like(inertias)
    # Chord from (0, y[0]) to (1, y[-1]) i.e. (0,1)->(1,0): distance ~ x + y - 1
    dist = np.abs(x + y - 1.0) / np.sqrt(2.0)
    return int(ks[dist.argmax()])
