"""The gateway's wire protocol: lifecycle states and error bodies.

A submitted request moves through a small, strictly forward lifecycle::

    submit -> QUEUED -> RUNNING -> DONE
                  \\            \\-> FAILED
                   \\-> CANCELLED

plus two submit-time short-circuits that never enter the queue: a cache
hit completes the ticket as DONE immediately, and a digest already in
flight *coalesces* — the new ticket attaches to the running one and
completes with it, so identical concurrent requests cost one execution.

Error responses share one JSON shape, ``{"error": ..., "exit_code":
...}``, and the exit codes are the CLI's (:mod:`repro.errors`): the
gateway returns the HTTP twin of the code the CLI would exit with,
which is what keeps the two transports one API.
"""

from __future__ import annotations

import typing as t

from repro.errors import EXIT_BUSY, EXIT_CONFIG, EXIT_INTERNAL, HTTP_STATUS

# -- lifecycle states -------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: every state, in lifecycle order
STATES: tuple[str, ...] = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: states a ticket never leaves
TERMINAL: tuple[str, ...] = (DONE, FAILED, CANCELLED)


def error_body(exit_code: int, message: str, **extra: t.Any) -> dict[str, t.Any]:
    """The one error shape every non-2xx gateway response uses."""
    return {"error": message, "exit_code": exit_code, **extra}


def http_status(exit_code: int) -> int:
    """HTTP status paired with a CLI exit code (500 for unknown codes)."""
    return HTTP_STATUS.get(exit_code, HTTP_STATUS[EXIT_INTERNAL])


def busy_body(queue_size: int, queue_capacity: int) -> dict[str, t.Any]:
    """The structured 429 body a shed request receives.

    Carries the queue state so a client can implement informed backoff
    rather than blind retry.
    """
    return error_body(
        EXIT_BUSY,
        "queue full, request shed",
        queue_size=queue_size,
        queue_capacity=queue_capacity,
        retry=True,
    )


def config_error_body(message: str) -> dict[str, t.Any]:
    """The 400 body for requests that fail envelope validation."""
    return error_body(EXIT_CONFIG, message)
