"""The admission queue: bounded, thread-safe, load-shedding.

This is the gateway's backpressure contract in one class.  Admission is
``try_put`` — it never blocks and never grows the queue past capacity;
when the queue is full the put *fails* and the caller sheds the request
with a structured 429 body (:func:`repro.serve.protocol.busy_body`).
Bounding admission rather than blocking it is what keeps a saturated
gateway responsive: clients get an immediate, informative refusal
instead of an unbounded wait, and memory stays proportional to
``queue_size``, not to offered load.

The consumer side (the executor's dispatcher thread) uses blocking
``get`` with a timeout; ``close()`` wakes any blocked getter so
shutdown never hangs.
"""

from __future__ import annotations

import threading
import typing as t
from collections import deque

T = t.TypeVar("T")


class BoundedQueue(t.Generic[T]):
    """FIFO with hard capacity; full puts fail fast instead of blocking."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: admissions refused because the queue was at capacity
        self.shed = 0

    def try_put(self, item: T) -> bool:
        """Admit ``item`` if there is room; ``False`` means *shed*."""
        with self._cond:
            if self._closed or len(self._items) >= self.capacity:
                self.shed += 1
                return False
            self._items.append(item)
            self._cond.notify()
            return True

    def try_get(self) -> T | None:
        """Non-blocking pop (``None`` when empty)."""
        with self._cond:
            return self._items.popleft() if self._items else None

    def get(self, timeout: float | None = None) -> T | None:
        """Blocking pop; ``None`` on timeout or when closed and empty."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            return self._items.popleft() if self._items else None

    def close(self) -> None:
        """Refuse further admissions and wake blocked getters."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
