"""The gateway: an asyncio HTTP/JSON front end over the executor.

One process serves many concurrent clients.  The asyncio event loop
owns only cheap work — parsing, admission, status lookups, event-stream
tailing — while all simulation runs on the executor's dispatcher thread
(inline mode) or its persistent warm worker pool (pool mode).  The two
sides meet at thread-safe seams: the bounded admission queue, the
session store, and the event bus.

Routes (all JSON bodies; errors use ``{"error", "exit_code"}``)::

    POST   /v1/requests            submit any request envelope
    POST   /v1/<kind>              submit, kind implied by the path
    GET    /v1/requests/<id>       ticket status (+ result when done)
    GET    /v1/requests/<id>/events  NDJSON lifecycle/progress stream
    DELETE /v1/requests/<id>       cancel (QUEUED tickets only)
    GET    /v1/healthz             liveness + lifecycle phase
    GET    /v1/stats               cache / queue / executor counters
    POST   /v1/shutdown            drain admitted work, then stop

``POST`` submissions take ``?wait=1`` to block until the ticket is
terminal and return the full result — the mode the CLI client and the
load-test bench use.  Without it, submission returns ``202`` with the
ticket id immediately.

Backpressure: when the admission queue is full the gateway responds
``429`` with :func:`repro.serve.protocol.busy_body` — it never blocks
the client and never queues unboundedly.  A request whose digest is
cached is answered ``200`` straight from cache; one whose digest is
already in flight coalesces onto it instead of occupying a queue slot.

The HTTP layer is deliberately minimal (HTTP/1.1, one request per
connection, ``Connection: close``): the stdlib has no async HTTP
server, this repo takes no dependencies, and the protocol surface the
gateway needs is small enough to parse directly.
"""

from __future__ import annotations

import asyncio
import json
import typing as t
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from urllib.parse import parse_qs

from repro.api import request_from_wire
from repro.errors import EXIT_INTERNAL, ConfigurationError
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.events import EventBus, event_line
from repro.serve.session import Executor, SessionStore, Ticket

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
             405: "Method Not Allowed", 409: "Conflict",
             429: "Too Many Requests", 500: "Internal Server Error",
             503: "Service Unavailable"}


@dataclass(frozen=True, kw_only=True)
class GatewayConfig:
    """How a gateway is sized.

    Args:
        host / port: bind address (``port=0`` picks a free port; the
            bound port is ``Gateway.port`` after :meth:`Gateway.start`).
        workers: pool workers; ``0`` runs requests inline on the
            dispatcher thread (serial, but streams intra-run progress).
        queue_size: admission queue bound — the backpressure knob.
        cache_size: result-cache capacity (LRU entries).
        store_limit: retained tickets bound — past it the oldest
            settled tickets (and their event streams) are pruned.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    queue_size: int = 32
    cache_size: int = 256
    store_limit: int = 1024


class Gateway:
    """The serve front end; ``start`` → handle traffic → ``stop``."""

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        self.cache = ResultCache(self.config.cache_size)
        self.events = EventBus()
        self.store = SessionStore(limit=self.config.store_limit,
                                  events=self.events)
        # blocking waits (?wait=1, event-stream tailing) get their own
        # pool so many concurrent waiters cannot starve the default
        # executor, which stop()'s drain and other off-loop work use
        self._wait_pool = ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="serve-wait"
        )
        self.executor = Executor(
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            cache=self.cache,
            events=self.events,
        )
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._draining = False
        self.port: int = self.config.port

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` finish admitted work first."""
        self._draining = True
        if drain:
            await asyncio.get_running_loop().run_in_executor(
                None, self.executor.drain
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.executor.stop()
        self._stopped.set()
        # waiters poll in bounded slices and re-check _stopped, so
        # in-flight futures retire promptly
        self._wait_pool.shutdown(wait=False, cancel_futures=True)

    async def serve_forever(self) -> None:
        """Run until a ``POST /v1/shutdown`` completes the drain."""
        await self._stopped.wait()

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _ = request_line.decode("ascii").split(" ", 2)
            except ValueError:
                await self._respond(writer, 400,
                                    protocol.config_error_body("bad request line"))
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length else b""
            path, _, query = target.partition("?")
            params = parse_qs(query)
            await self._route(method, path, params, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - last-resort guard
            try:
                await self._respond(
                    writer, 500,
                    protocol.error_body(EXIT_INTERNAL, f"internal error: {exc}"),
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client went away
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, body: dict[str, t.Any]
    ) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()

    # -- routing ------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        params: dict[str, list[str]],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        from repro.api import REQUEST_KINDS

        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            await self._respond(writer, 404,
                                protocol.error_body(EXIT_INTERNAL, "not found"))
            return
        tail = parts[1:]
        wait = params.get("wait", ["0"])[0] in ("1", "true")

        if tail == ["healthz"] and method == "GET":
            await self._respond(writer, 200, {
                "ok": True,
                "phase": "draining" if self._draining else "serving",
            })
        elif tail == ["stats"] and method == "GET":
            await self._respond(writer, 200, self.stats())
        elif tail == ["shutdown"] and method == "POST":
            await self._respond(writer, 200, {"ok": True, "phase": "draining"})
            asyncio.get_running_loop().create_task(self.stop(drain=True))
        elif tail == ["requests"] and method == "POST":
            await self._submit(writer, body, wait, kind=None)
        elif len(tail) == 1 and tail[0] in REQUEST_KINDS and method == "POST":
            await self._submit(writer, body, wait, kind=tail[0])
        elif len(tail) == 2 and tail[0] == "requests":
            await self._ticket_route(method, tail[1], writer)
        elif (len(tail) == 3 and tail[0] == "requests" and tail[2] == "events"
              and method == "GET"):
            await self._stream_events(tail[1], writer)
        else:
            await self._respond(writer, 404,
                                protocol.error_body(EXIT_INTERNAL, "not found"))

    async def _ticket_route(
        self, method: str, ticket_id: str, writer: asyncio.StreamWriter
    ) -> None:
        ticket = self.store.get(ticket_id)
        if ticket is None:
            await self._respond(
                writer, 404,
                protocol.error_body(EXIT_INTERNAL, f"no such request {ticket_id!r}"),
            )
        elif method == "GET":
            await self._respond(writer, self._ticket_status_code(ticket),
                                ticket.status())
        elif method == "DELETE":
            if self.executor.cancel(ticket):
                await self._respond(writer, 200, ticket.status())
            else:
                await self._respond(
                    writer, 409,
                    protocol.error_body(
                        EXIT_INTERNAL,
                        f"request {ticket_id!r} is {ticket.state}; "
                        "only queued requests can be cancelled",
                    ),
                )
        else:
            await self._respond(writer, 405,
                                protocol.error_body(EXIT_INTERNAL, "method not allowed"))

    @staticmethod
    def _ticket_status_code(ticket: Ticket) -> int:
        return 500 if ticket.state == protocol.FAILED else 200

    # -- submission ---------------------------------------------------------
    async def _submit(
        self,
        writer: asyncio.StreamWriter,
        body: bytes,
        wait: bool,
        kind: str | None,
    ) -> None:
        if self._draining:
            await self._respond(
                writer, 503,
                protocol.error_body(EXIT_INTERNAL, "gateway is draining"),
            )
            return
        try:
            wire = json.loads(body.decode() or "{}")
            if not isinstance(wire, dict):
                raise ConfigurationError("request body must be a JSON object")
            if kind is not None:
                wire.setdefault("kind", kind)
            request = request_from_wire(wire)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400,
                                protocol.config_error_body(f"bad JSON body: {exc}"))
            return
        except ConfigurationError as exc:
            await self._respond(writer, 400, protocol.config_error_body(str(exc)))
            return

        digest = request.digest()
        cached = self.cache.get(digest)
        if cached is not None:
            ticket = self.store.create(request)
            # same ordering contract as Executor._settle: result fields
            # before state, terminal event before done.set()
            ticket.envelope = cached
            ticket.cached = True
            ticket.state = protocol.DONE
            self.events.emit(ticket.id, {"event": protocol.DONE,
                                         "ok": cached["ok"], "cached": True})
            ticket.done.set()
            await self._respond(writer, 200, ticket.status())
            return

        ticket = self.store.create(request)
        outcome = self.executor.submit(ticket)
        if outcome == "busy":
            await self._respond(
                writer, 429,
                protocol.busy_body(len(self.executor.queue),
                                   self.executor.queue.capacity),
            )
            return
        if wait:
            await self._await_ticket(ticket)
            await self._respond(writer, self._ticket_status_code(ticket),
                                ticket.status())
        else:
            await self._respond(writer, 202, ticket.status())

    async def _await_ticket(self, ticket: Ticket) -> None:
        """Block off-loop, in bounded slices, until the ticket settles."""
        loop = asyncio.get_running_loop()
        while not ticket.done.is_set() and not self._stopped.is_set():
            try:
                await loop.run_in_executor(self._wait_pool, ticket.done.wait, 0.5)
            except RuntimeError:  # wait pool shut down mid-request
                break

    # -- event streaming ----------------------------------------------------
    async def _stream_events(
        self, ticket_id: str, writer: asyncio.StreamWriter
    ) -> None:
        ticket = self.store.get(ticket_id)
        if ticket is None:
            await self._respond(
                writer, 404,
                protocol.error_body(EXIT_INTERNAL, f"no such request {ticket_id!r}"),
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        cursor = 0
        terminal = False
        while not terminal and not self._stopped.is_set():
            try:
                batch = await loop.run_in_executor(
                    self._wait_pool, self.events.wait, ticket_id, cursor, 0.25
                )
            except RuntimeError:  # wait pool shut down mid-stream
                break
            for event in batch:
                writer.write(event_line(event))
                if event.get("event") in protocol.TERMINAL:
                    terminal = True
            cursor += len(batch)
            await writer.drain()
            # a settled ticket with nothing more buffered has nothing
            # more to say (its stream may have been pruned) — exit
            # rather than poll forever
            if not batch and not terminal and ticket.done.is_set():
                break

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict[str, t.Any]:
        return {
            "cache": self.cache.stats(),
            "queue": {
                "size": len(self.executor.queue),
                "capacity": self.executor.queue.capacity,
                "shed": self.executor.queue.shed,
            },
            "executor": {
                "workers": self.config.workers,
                "completed": self.executor.completed,
                "failed": self.executor.failed,
                "cancelled": self.executor.cancelled,
                "coalesced": self.executor.coalesced,
            },
            "tickets": len(self.store),
        }


async def run_gateway(config: GatewayConfig | None = None) -> None:
    """Start a gateway and serve until shut down (the CLI entry)."""
    gateway = Gateway(config)
    await gateway.start()
    print(f"repro.serve listening on http://{gateway.config.host}:{gateway.port}/v1/")
    try:
        await gateway.serve_forever()
    finally:
        if not gateway._stopped.is_set():  # e.g. KeyboardInterrupt
            await gateway.stop(drain=False)
