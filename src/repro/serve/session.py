"""Request lifecycle: tickets, the session store, and the executor.

A *ticket* is one client submission: an id, the typed request, its
digest, and a lifecycle state (:mod:`repro.serve.protocol`).  The
*store* allocates sequential ids and resolves status queries.  The
*executor* owns the admission queue and a dispatcher thread that moves
admitted tickets onto compute:

* ``workers == 0`` — inline mode: the dispatcher thread itself calls
  :func:`repro.api.dispatch`, one request at a time, streaming
  intra-run progress lines (telemetry spans, verify relations) into the
  event bus.
* ``workers >= 1`` — pool mode: tickets become ``"serve"`` task cells
  on a persistent warm :class:`repro.parallel.WorkerPool`.  The pool is
  spawned once and reused for the gateway's whole lifetime — the
  amortisation that motivated the persistent-pool refactor — and cell
  crash containment means a poisoned request fails *its* ticket, never
  the gateway.

Identical digests coalesce: if a submitted digest is already queued or
running, the new ticket attaches to the in-flight one and completes
with it, so N identical concurrent requests cost one execution.  Only
QUEUED tickets can be cancelled — a RUNNING cell is already on a
worker and runs to completion.
"""

from __future__ import annotations

import threading
import traceback
import typing as t
from dataclasses import dataclass, field

from repro.api import Request
from repro.errors import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK
from repro.parallel import Task, TaskResult, WorkerPool
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.events import EventBus
from repro.serve.queue import BoundedQueue


@dataclass
class Ticket:
    """One client submission, from accept to terminal state."""

    id: str
    request: Request
    wire: dict[str, t.Any]
    digest: str
    state: str = protocol.QUEUED
    #: the full response envelope once DONE
    envelope: dict[str, t.Any] | None = None
    #: human-readable failure once FAILED
    error: str | None = None
    exit_code: int = EXIT_OK
    #: served straight from cache at submit time
    cached: bool = False
    #: attached to an identical in-flight digest
    coalesced: bool = False
    done: threading.Event = field(default_factory=threading.Event)

    def status(self) -> dict[str, t.Any]:
        """The ``GET /v1/requests/<id>`` body."""
        out: dict[str, t.Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "digest": self.digest,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.envelope is not None:
            out["ok"] = self.envelope["ok"]
            out["result"] = self.envelope["result"]
        if self.error is not None:
            out["error"] = self.error
            out["exit_code"] = self.exit_code
        return out


class SessionStore:
    """Allocates ticket ids and answers status/cancel lookups.

    Retention is bounded: past ``limit`` held tickets, the oldest
    *settled* ones (terminal state, ``done`` set) are pruned and their
    event streams dropped, so a long-running gateway's memory tracks
    active work plus a bounded history window — not total requests
    served.  A pruned id answers 404 thereafter.  In-flight tickets are
    never pruned.
    """

    def __init__(
        self, *, limit: int = 1024, events: EventBus | None = None
    ) -> None:
        if limit < 1:
            raise ValueError("session store limit must be >= 1")
        self.limit = limit
        self._events = events
        self._lock = threading.Lock()
        self._tickets: dict[str, Ticket] = {}
        self._counter = 0
        self.pruned = 0

    def create(self, request: Request) -> Ticket:
        with self._lock:
            self._counter += 1
            ticket = Ticket(
                id=f"r-{self._counter:06d}",
                request=request,
                wire=request.to_wire(),
                digest=request.digest(),
            )
            self._tickets[ticket.id] = ticket
            evicted = self._prune_locked()
        if self._events is not None:
            for ticket_id in evicted:
                self._events.drop(ticket_id)
        return ticket

    def _prune_locked(self) -> list[str]:
        overflow = len(self._tickets) - self.limit
        if overflow <= 0:
            return []
        evicted: list[str] = []
        # insertion order == ticket age; only fully settled tickets go.
        # ``done`` is set strictly after the terminal event is emitted,
        # so dropping the stream here cannot lose a terminal event.
        for ticket_id, ticket in list(self._tickets.items()):
            if len(evicted) >= overflow:
                break
            if ticket.state in protocol.TERMINAL and ticket.done.is_set():
                del self._tickets[ticket_id]
                evicted.append(ticket_id)
        self.pruned += len(evicted)
        return evicted

    def get(self, ticket_id: str) -> Ticket | None:
        with self._lock:
            return self._tickets.get(ticket_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tickets)


class Executor:
    """Moves admitted tickets onto compute and settles their results.

    One dispatcher thread; ``submit``/``cancel`` may be called from any
    thread (the asyncio app calls them from the event loop).
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        queue_size: int = 32,
        cache: ResultCache,
        events: EventBus,
    ) -> None:
        self.workers = workers
        self.queue: BoundedQueue[Ticket] = BoundedQueue(queue_size)
        self.cache = cache
        self.events = events
        self._lock = threading.Lock()
        #: digest -> [primary ticket, coalesced tickets...]
        self._inflight: dict[str, list[Ticket]] = {}
        #: ticket id -> ticket, for cells currently on the pool
        self._running: dict[str, Ticket] = {}
        self._pool: WorkerPool | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.coalesced = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.workers > 0:
            self._pool = WorkerPool(jobs=self.workers)
        self._thread = threading.Thread(
            target=self._run, name="serve-executor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the dispatcher and the pool (does not drain first)."""
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        if self._pool is not None:
            self._pool.close()

    def idle(self) -> bool:
        """Nothing queued and nothing running."""
        with self._lock:
            running = bool(self._running)
        return not running and len(self.queue) == 0

    def drain(self, timeout: float = 60.0, poll_s: float = 0.02) -> bool:
        """Block until idle (all admitted work settled); ``False`` on timeout."""
        deadline = threading.Event()
        waited = 0.0
        while not self.idle():
            if waited >= timeout:
                return False
            deadline.wait(poll_s)
            waited += poll_s
        return True

    # -- producer side (event loop) -----------------------------------------
    def submit(self, ticket: Ticket) -> str:
        """Admit one ticket: ``"queued"``, ``"coalesced"``, or ``"busy"``."""
        with self._lock:
            inflight = self._inflight.get(ticket.digest)
            if inflight is not None:
                ticket.coalesced = True
                inflight.append(ticket)
                self.coalesced += 1
                self.events.emit(
                    ticket.id,
                    {"event": protocol.QUEUED, "coalesced_with": inflight[0].id},
                )
                return "coalesced"
            if not self.queue.try_put(ticket):
                return "busy"
            self._inflight[ticket.digest] = [ticket]
        self.events.emit(ticket.id, {"event": protocol.QUEUED})
        return "queued"

    def cancel(self, ticket: Ticket) -> bool:
        """Cancel a QUEUED ticket; RUNNING and terminal tickets refuse.

        A cancelled ticket detaches from its coalescing group.  If it
        was the group's *primary* (the one physically in the queue),
        the dispatcher promotes the first surviving follower when it
        pulls the dead entry — see :meth:`_claim`.
        """
        with self._lock:
            if ticket.state != protocol.QUEUED:
                return False
            ticket.state = protocol.CANCELLED
            self.cancelled += 1
            group = self._inflight.get(ticket.digest)
            if group is not None and ticket in group:
                group.remove(ticket)
                if not group:
                    del self._inflight[ticket.digest]
        self.events.emit(ticket.id, {"event": protocol.CANCELLED})
        ticket.done.set()
        return True

    # -- dispatcher thread --------------------------------------------------
    def _run(self) -> None:
        if self._pool is None:
            self._run_inline()
        else:
            self._run_pool()

    def _begin(self, ticket: Ticket) -> bool:
        """QUEUED -> RUNNING; ``False`` if the ticket was cancelled."""
        with self._lock:
            if ticket.state != protocol.QUEUED:
                return False
            ticket.state = protocol.RUNNING
        self.events.emit(ticket.id, {"event": protocol.RUNNING})
        return True

    def _claim(self, ticket: Ticket | None) -> Ticket | None:
        """Begin this queue entry — or, if it was cancelled while
        queued, the first follower coalesced behind it (which inherits
        the queue slot the cancelled primary held)."""
        while ticket is not None:
            if self._begin(ticket):
                return ticket
            with self._lock:
                group = self._inflight.get(ticket.digest)
                promoted = group[0] if group else None
            # Cancel + resubmit of a digest leaves a dead queue entry
            # plus a duplicate entry for the new primary; once that
            # primary is claimed it stays group head until it settles,
            # so only follow to a *different* ticket — re-promoting the
            # one that just failed _begin would spin forever.
            ticket = promoted if promoted is not ticket else None
        return None

    def _settle(self, ticket: Ticket, envelope: dict[str, t.Any] | None,
                error: str | None) -> None:
        """Finish the primary ticket and every coalesced follower."""
        if envelope is not None:
            self.cache.put(ticket.digest, envelope)
        settled: list[Ticket] = []
        with self._lock:
            group = self._inflight.pop(ticket.digest, [ticket])
            for member in group:
                if member.state == protocol.CANCELLED:  # pragma: no cover - race
                    continue
                # result fields land before the state flips so a
                # concurrent status() never observes "done" without its
                # envelope; the lock serialises against cancel()
                if envelope is not None:
                    member.envelope = envelope
                    member.exit_code = EXIT_OK if envelope["ok"] else EXIT_FAILURE
                    member.state = protocol.DONE
                    self.completed += 1
                else:
                    member.error = error
                    member.exit_code = EXIT_INTERNAL
                    member.state = protocol.FAILED
                    self.failed += 1
                settled.append(member)
        for member in settled:
            if member.state == protocol.DONE:
                self.events.emit(
                    member.id, {"event": protocol.DONE, "ok": member.envelope["ok"]}
                )
            else:
                self.events.emit(member.id, {"event": protocol.FAILED, "error": error})
            # done is set only after the terminal event: store pruning
            # keys on done.is_set(), so a pruned (dropped) stream has
            # already delivered its terminal event
            member.done.set()

    def _run_inline(self) -> None:
        from repro.api import dispatch

        while not (self._stop.is_set() and len(self.queue) == 0):
            ticket = self._claim(self.queue.get(timeout=0.1))
            if ticket is None:
                continue
            with self._lock:
                self._running[ticket.id] = ticket
            try:
                progress = lambda line, _id=ticket.id: self.events.emit(  # noqa: E731
                    _id, {"event": "progress", "message": line}
                )
                envelope = dispatch(ticket.request, progress=progress).to_wire()
                self._settle(ticket, envelope, None)
            except Exception:
                self._settle(ticket, None, traceback.format_exc(limit=4))
            finally:
                with self._lock:
                    self._running.pop(ticket.id, None)

    def _run_pool(self) -> None:
        pool = t.cast(WorkerPool, self._pool)
        while True:
            moved = False
            while (ticket := self.queue.try_get()) is not None:
                moved = self._feed_pool(pool, ticket) or moved
            with self._lock:
                running = bool(self._running)
            if running:
                for result in pool.poll(timeout=0.1):
                    self._finish_cell(result)
            elif not moved:
                if self._stop.is_set() and len(self.queue) == 0:
                    return
                ticket = self.queue.get(timeout=0.1)
                if ticket is not None:
                    self._feed_pool(pool, ticket)

    def _feed_pool(self, pool: WorkerPool, entry: Ticket) -> bool:
        ticket = self._claim(entry)
        if ticket is None:
            return False
        with self._lock:
            self._running[ticket.id] = ticket
        pool.submit(Task(id=ticket.id, kind="serve", spec={"request": ticket.wire}))
        return True

    def _finish_cell(self, result: TaskResult) -> None:
        with self._lock:
            ticket = self._running.pop(result.task_id, None)
        if ticket is None:  # pragma: no cover - defensive
            return
        if result.ok:
            self._settle(ticket, result.value["response"], None)
        else:
            self._settle(ticket, None, result.error)
