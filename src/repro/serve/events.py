"""Per-request event streams: how progress leaves the gateway.

Every lifecycle transition (queued, running, done, failed, cancelled)
and every progress line becomes one event dict with a per-ticket
monotonic ``seq``.  The bus keeps the full event history per ticket, so
a client that connects to ``GET /v1/requests/<id>/events`` *after* the
request finished still replays the whole stream — there is no race
between execution speed and subscription time.

Events cross the wire as newline-delimited JSON (one canonical-JSON
object per line), the format DESIGN.md §5h specifies.  Producers are
threads (the executor); consumers are either threads (``wait``) or the
asyncio app, which bridges the blocking wait through
``run_in_executor``.

Progress granularity depends on where a request runs: lifecycle events
are always emitted, but intra-run ``progress`` lines (telemetry span
completions, verify's per-relation results) only stream in inline
executor mode (``workers=0``) — a pool worker is a separate process and
its spans cannot be streamed mid-cell, only its final result.
"""

from __future__ import annotations

import json
import threading
import typing as t

from repro.serve import protocol


def event_line(event: dict[str, t.Any]) -> bytes:
    """One NDJSON wire line (canonical JSON + newline)."""
    return (json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n").encode()


class EventBus:
    """Thread-safe per-ticket event history with blocking tail."""

    def __init__(self, history_limit: int = 1024) -> None:
        self.history_limit = history_limit
        self._cond = threading.Condition()
        self._streams: dict[str, list[dict[str, t.Any]]] = {}

    def emit(self, ticket_id: str, event: dict[str, t.Any]) -> None:
        """Append one event to the ticket's stream (assigns ``seq``).

        Past ``history_limit`` further ``progress`` is dropped, but
        terminal events always land: the stream tail loop exits on
        them, so a chatty request must not be able to push its own
        completion off the stream.
        """
        with self._cond:
            stream = self._streams.setdefault(ticket_id, [])
            if (len(stream) < self.history_limit
                    or event.get("event") in protocol.TERMINAL):
                stream.append({"id": ticket_id, "seq": len(stream), **event})
            self._cond.notify_all()

    def events(self, ticket_id: str, start: int = 0) -> list[dict[str, t.Any]]:
        """The ticket's events from index ``start`` (non-blocking)."""
        with self._cond:
            return list(self._streams.get(ticket_id, ())[start:])

    def wait(
        self, ticket_id: str, start: int, timeout: float = 0.25
    ) -> list[dict[str, t.Any]]:
        """Block up to ``timeout`` for events past ``start``; may be ``[]``."""
        with self._cond:
            stream = self._streams.get(ticket_id, ())
            if len(stream) <= start:
                self._cond.wait(timeout)
                stream = self._streams.get(ticket_id, ())
            return list(stream[start:])

    def drop(self, ticket_id: str) -> None:
        with self._cond:
            self._streams.pop(ticket_id, None)
