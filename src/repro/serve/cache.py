"""The result cache: digest-keyed, LRU-bounded, thread-safe.

Every simulation in this repository is a pure function of its request's
``(kind, params)`` — that is what :meth:`repro.api.Request.digest`
canonicalises — so the gateway may serve a repeated digest from cache
and the bytes are *guaranteed* identical to re-running it.  The cache
therefore stores the full response envelope (``{"kind", "digest",
"ok", "result"}``) exactly as :func:`repro.api.dispatch_wire` returned
it, whether it was produced inline or by a pool worker.

Capacity is bounded with least-recently-*used* eviction (a hit
refreshes recency), and the hit/miss/eviction counters feed
``GET /v1/stats`` and the ``BENCH_serve.json`` load-test tier.
"""

from __future__ import annotations

import threading
import typing as t
from collections import OrderedDict


class ResultCache:
    """LRU map from request digest to response envelope."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, t.Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> dict[str, t.Any] | None:
        """The cached envelope for ``digest``, or ``None`` (counted)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def put(self, digest: str, envelope: dict[str, t.Any]) -> None:
        """Store one envelope, evicting the least recently used at cap."""
        with self._lock:
            self._entries[digest] = envelope
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, t.Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 6) if total else 0.0,
            }
