"""The simulation gateway: serve the library over HTTP/JSON.

The ROADMAP's north star is a service under heavy concurrent traffic;
this package is that surface.  A long-running asyncio gateway accepts
the four typed request envelopes (:mod:`repro.api`) from many clients,
queues them onto a persistent warm :class:`repro.parallel.WorkerPool`
(amortising the spawn cost that makes cold ``-j`` lose on small runs),
and serves repeated digests straight from an LRU result cache — sound
because every run is a pure function of ``(config, seed)``.

The six modules, bottom-up:

* :mod:`repro.serve.protocol` — lifecycle states, error bodies, the
  exit-code ↔ HTTP-status table shared with the CLI.
* :mod:`repro.serve.cache` — the digest-keyed LRU result cache.
* :mod:`repro.serve.queue` — bounded admission with load-shedding
  (the backpressure contract).
* :mod:`repro.serve.events` — per-request NDJSON event streams.
* :mod:`repro.serve.session` — tickets, the session store, and the
  executor bridging admission to inline or pooled compute.
* :mod:`repro.serve.app` — the asyncio HTTP front end.

:mod:`repro.serve.loadtest` adds the deterministic load-test bench tier
(``repro bench serve-load`` → ``benchmarks/BENCH_serve.json``).
"""

from repro.serve.app import Gateway, GatewayConfig, run_gateway
from repro.serve.cache import ResultCache
from repro.serve.events import EventBus, event_line
from repro.serve.loadtest import (
    SERVE_PATH,
    SERVE_SCHEMA,
    build_request_mix,
    deterministic_view,
    dump_serve,
    load_serve,
    render_serve,
    run_serve_load,
)
from repro.serve.queue import BoundedQueue
from repro.serve.session import Executor, SessionStore, Ticket

__all__ = [
    "BoundedQueue",
    "EventBus",
    "Executor",
    "Gateway",
    "GatewayConfig",
    "ResultCache",
    "SERVE_PATH",
    "SERVE_SCHEMA",
    "SessionStore",
    "Ticket",
    "build_request_mix",
    "deterministic_view",
    "dump_serve",
    "event_line",
    "load_serve",
    "render_serve",
    "run_gateway",
    "run_serve_load",
]
