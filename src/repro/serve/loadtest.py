"""The serve load-test bench tier (``benchmarks/BENCH_serve.json``).

"Many concurrent clients" becomes a measured claim here: the bench
starts a real gateway in-process, drives it over real HTTP sockets with
``concurrency`` simultaneous clients, and records requests/s, latency
percentiles, and the cache hit rate.

Determinism contract.  The payload has two sections:

* the top level is **simulation-deterministic** — request counts, cache
  hits/misses, shed count, and a digest over every response body.  Two
  runs at the same seed produce byte-identical deterministic sections
  (:func:`deterministic_view` is the comparison key), because the run
  is structured to make concurrency unobservable: *phase 1* submits
  ``n_unique`` all-distinct requests concurrently (distinct digests —
  no hit/coalesce races regardless of interleaving), then after all
  complete, *phase 2* replays the identical mix, which must be served
  entirely from cache with bodies byte-identical to phase 1.
* ``"host"`` holds the wall-clock measurements (requests/s, p50/p99/max
  latency) — real performance numbers, excluded from the identity check
  like every ``host_*`` field in the other bench tiers.

The request mix cycles the four kinds at small, cheap parameter points,
each at its own seed so every digest is distinct.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
import typing as t
from pathlib import Path

from repro.errors import ConfigurationError
from repro.serve.app import Gateway, GatewayConfig

SERVE_SCHEMA = "repro-bench-serve/1"

#: repo-relative location of the checked-in serve load-test file
SERVE_PATH = "benchmarks/BENCH_serve.json"


def build_request_mix(seed: int, n_unique: int) -> list[dict[str, t.Any]]:
    """``n_unique`` distinct wire requests cycling all four kinds.

    Parameter points are chosen cheap (tens of milliseconds each) so
    the bench measures the *gateway*, not the simulator; each request
    gets its own seed, which makes every digest distinct.
    """
    mix: list[dict[str, t.Any]] = []
    for i in range(n_unique):
        s = seed + i
        kind = ("verify", "estimate", "simulate", "chaos")[i % 4]
        if kind == "verify":
            mix.append({"kind": "verify", "seed": s,
                        "layers": ["metamorphic"],
                        "relations": ["relabel-invariance"]})
        elif kind == "estimate":
            mix.append({"kind": "estimate", "seed": s,
                        "n_history": 60, "max_nodes": 16, "job_nodes": 4})
        elif kind == "simulate":
            mix.append({"kind": "simulate", "seed": s, "rm": "slurm",
                        "n_nodes": 32, "n_jobs": 8, "horizon_s": 7200.0})
        else:
            mix.append({"kind": "chaos", "seed": s, "scenario": "flapping-node"})
    return mix


async def _post(
    host: str, port: int, path: str, body: dict[str, t.Any]
) -> tuple[int, dict[str, t.Any], float]:
    """One HTTP POST over a fresh connection; (status, body, latency_s)."""
    start = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode()
        writer.write(
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - server-side close race
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest.decode()), time.perf_counter() - start


async def _drive(
    gateway: Gateway, mix: list[dict[str, t.Any]], concurrency: int
) -> dict[str, t.Any]:
    """Both phases against a started gateway; returns raw observations."""
    host, port = gateway.config.host, gateway.port
    sem = asyncio.Semaphore(concurrency)
    latencies: list[float] = []

    async def one(wire: dict[str, t.Any]) -> tuple[str, dict[str, t.Any]]:
        async with sem:
            status, body, latency = await _post(
                host, port, "/v1/requests?wait=1", wire
            )
        if status != 200:
            raise ConfigurationError(
                f"load test got HTTP {status} for {wire['kind']}: {body}"
            )
        latencies.append(latency)
        return body["digest"], body

    # phase 1: all-unique, fully concurrent — every request is a miss
    start = time.perf_counter()
    phase1 = await asyncio.gather(*(one(w) for w in mix))
    # phase 2: identical replay — every request must be a cache hit
    phase2 = await asyncio.gather(*(one(w) for w in mix))
    wall_s = time.perf_counter() - start

    by_digest = {d: body["result"] for d, body in phase1}
    replay_identical = all(
        body["cached"]
        and json.dumps(body["result"], sort_keys=True)
        == json.dumps(by_digest[d], sort_keys=True)
        for d, body in phase2
    )
    lines = sorted(
        f"{d}:{json.dumps(body['result'], sort_keys=True, separators=(',', ':'))}"
        for d, body in phase1
    )
    responses_digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return {
        "latencies": latencies,
        "wall_s": wall_s,
        "replay_identical": replay_identical,
        "responses_digest": responses_digest,
        "stats": gateway.stats(),
    }


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_serve_load(
    seed: int = 0,
    n_unique: int = 8,
    concurrency: int = 4,
    workers: int = 2,
    queue_size: int = 64,
    progress: t.Callable[[str], None] | None = None,
) -> dict[str, t.Any]:
    """Run the two-phase load test; returns the ``BENCH_serve`` payload."""
    if n_unique < 1 or concurrency < 1:
        raise ConfigurationError("n_unique/concurrency must be >= 1")
    if queue_size < concurrency:
        # the determinism contract needs zero shed: every concurrent
        # request must be admissible
        raise ConfigurationError("queue_size must be >= concurrency")
    mix = build_request_mix(seed, n_unique)

    async def main() -> dict[str, t.Any]:
        gateway = Gateway(GatewayConfig(
            workers=workers, queue_size=queue_size, cache_size=max(64, n_unique)
        ))
        await gateway.start()
        if progress is not None:
            progress(
                f"serve-load: {2 * n_unique} requests ({n_unique} unique), "
                f"concurrency={concurrency}, workers={workers} "
                f"on port {gateway.port}"
            )
        try:
            return await _drive(gateway, mix, concurrency)
        finally:
            await gateway.stop(drain=True)

    observed = asyncio.run(main())
    stats = observed["stats"]
    per_kind: dict[str, int] = {}
    for wire in mix:
        per_kind[wire["kind"]] = per_kind.get(wire["kind"], 0) + 2
    latencies = observed["latencies"]
    payload = {
        "schema": SERVE_SCHEMA,
        "seed": seed,
        "workers": workers,
        "concurrency": concurrency,
        "queue_size": queue_size,
        "requests_total": 2 * n_unique,
        "unique_requests": n_unique,
        "per_kind": dict(sorted(per_kind.items())),
        "cache": {
            "hits": stats["cache"]["hits"],
            "misses": stats["cache"]["misses"],
            "hit_rate": stats["cache"]["hit_rate"],
            "evictions": stats["cache"]["evictions"],
        },
        "shed": stats["queue"]["shed"],
        "coalesced": stats["executor"]["coalesced"],
        "failed": stats["executor"]["failed"],
        "replay_byte_identical": observed["replay_identical"],
        "responses_digest": observed["responses_digest"],
        "host": {
            "wall_s": round(observed["wall_s"], 3),
            "requests_per_s": round(2 * n_unique / observed["wall_s"], 2)
            if observed["wall_s"]
            else 0.0,
            "latency_s": {
                "p50": round(_percentile(latencies, 0.50), 4),
                "p99": round(_percentile(latencies, 0.99), 4),
                "max": round(max(latencies), 4),
            },
        },
    }
    if progress is not None:
        progress(render_serve(payload))
    return payload


def deterministic_view(payload: dict[str, t.Any]) -> dict[str, t.Any]:
    """The payload minus its wall-clock section — the identity key two
    runs at the same seed must agree on byte-for-byte."""
    return {k: v for k, v in payload.items() if k != "host"}


def dump_serve(payload: dict[str, t.Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def load_serve(path: str | Path) -> dict[str, t.Any]:
    """Read + sanity-check a serve load-test file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SERVE_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {SERVE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    return payload


def render_serve(payload: dict[str, t.Any]) -> str:
    """The human-readable load-test report (also the README table)."""
    host = payload["host"]
    cache = payload["cache"]
    return "\n".join([
        f"serve load — {payload['requests_total']} requests "
        f"({payload['unique_requests']} unique), "
        f"concurrency {payload['concurrency']}, "
        f"{payload['workers']} worker(s), seed {payload['seed']}",
        f"  throughput     {host['requests_per_s']:>8.2f} req/s "
        f"({host['wall_s']:.2f}s wall)",
        f"  latency        p50 {host['latency_s']['p50'] * 1e3:.0f}ms  "
        f"p99 {host['latency_s']['p99'] * 1e3:.0f}ms  "
        f"max {host['latency_s']['max'] * 1e3:.0f}ms",
        f"  cache          {cache['hits']} hit(s) / {cache['misses']} miss(es) "
        f"(rate {cache['hit_rate']:.2f})",
        f"  backpressure   {payload['shed']} shed, "
        f"{payload['coalesced']} coalesced, {payload['failed']} failed",
        f"  replay         byte-identical: "
        f"{'yes' if payload['replay_byte_identical'] else 'NO'}",
    ])
