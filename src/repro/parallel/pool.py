"""The sweep engine: warm spawn-based workers with crash containment.

:func:`run_tasks` executes a list of :class:`Task` cells and returns
one :class:`TaskResult` per cell **in input order**, however the cells
were scheduled.  ``jobs=1`` (the default) executes inline in the
calling process — that *is* the serial path, byte for byte, because
the same kind handlers run either way.  ``jobs>1`` scatters cells onto
warm worker processes created with the ``spawn`` start method.

Spawn, not fork, deliberately: a forked child inherits whatever the
parent accumulated — an active telemetry session, numpy RNG state,
half-collected generators awaiting finalisation — any of which can
leak into a simulation and break the same-seed byte-identity this
repository's golden files assert.  A spawned worker is a pristine
interpreter whose runs are indistinguishable from a fresh serial
invocation (it also behaves identically on macOS/Windows, where fork
is unavailable or unsafe).

Failure posture, per cell:

* a handler that **raises** is caught inside the worker and reported
  as a failed attempt — the worker stays warm;
* a worker that **dies** (``os._exit``, segfault, OOM-kill) is
  detected via its process sentinel; only the cell it was holding is
  charged, and a fresh worker replaces it;
* either way the cell is retried once (``retries=1``) before its
  :class:`TaskResult` is finalised as failed.  Other cells always run
  to completion — one poisoned cell cannot take down a sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
import traceback
import typing as t
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait

from repro.errors import ReproError
from repro.parallel.tasks import resolve_kind


class SweepError(ReproError):
    """A sweep could not produce a result for every task cell."""


@dataclass(frozen=True)
class Task:
    """One sweep cell: a unique id, a kind, and a plain-dict spec."""

    id: str
    kind: str
    spec: dict[str, t.Any] = field(default_factory=dict)


@dataclass
class TaskResult:
    """The outcome of one cell, after any retry."""

    task_id: str
    ok: bool
    value: t.Any = None
    error: str | None = None
    attempts: int = 1
    worker: int | None = None  #: worker index, or ``None`` for inline
    wall_s: float = 0.0

    def line(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        where = "inline" if self.worker is None else f"worker {self.worker}"
        detail = "" if self.ok else f" — {(self.error or '').splitlines()[-1]}"
        return f"[{status}] {self.task_id:<28} {where}  {self.wall_s:6.2f}s{detail}"


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: ``0`` means cpu autodetect."""
    if jobs < 0:
        raise SweepError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _worker_main(conn: Connection) -> None:  # pragma: no cover - runs in child
    """Warm worker loop: recv a cell, run its handler, send the outcome.

    Handler exceptions are converted to ``("err", ...)`` messages so the
    worker survives them; only a hard process death escapes this loop.
    """
    while True:
        message = conn.recv()
        if message[0] == "stop":
            conn.close()
            return
        _, task_id, kind, spec = message
        start = time.perf_counter()
        try:
            value = resolve_kind(kind)(spec)
        except BaseException:
            conn.send(("err", task_id, traceback.format_exc(), time.perf_counter() - start))
        else:
            conn.send(("ok", task_id, value, time.perf_counter() - start))


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    index: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    current: Task | None = None


def _spawn_worker(ctx: t.Any, index: int) -> _WorkerHandle:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn,),
        name=f"repro-sweep-{index}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _WorkerHandle(index=index, process=process, conn=parent_conn)


def _run_inline(
    tasks: t.Sequence[Task],
    retries: int,
    progress: t.Callable[[TaskResult], None] | None,
) -> list[TaskResult]:
    """The serial path: same handlers, same retry policy, one process."""
    results = []
    for task in tasks:
        handler = resolve_kind(task.kind)
        result = TaskResult(task_id=task.id, ok=False)
        for attempt in range(1, retries + 2):
            start = time.perf_counter()
            result.attempts = attempt
            try:
                result.value = handler(dict(task.spec))
            except Exception:
                result.error = traceback.format_exc()
                result.wall_s = time.perf_counter() - start
            else:
                result.ok = True
                result.error = None
                result.wall_s = time.perf_counter() - start
                break
        if progress is not None:
            progress(result)
        results.append(result)
    return results


def run_tasks(
    tasks: t.Sequence[Task],
    jobs: int = 1,
    retries: int = 1,
    progress: t.Callable[[TaskResult], None] | None = None,
) -> list[TaskResult]:
    """Execute every cell; return results in task order, come what may.

    Args:
        tasks: the sweep cells; ids must be unique (results are merged
            keyed by id, so duplicates would be ambiguous).
        jobs: worker processes; ``1`` runs inline (the serial path),
            ``0`` autodetects the cpu count.
        retries: extra attempts per failed cell (default one retry).
        progress: called with each finalised :class:`TaskResult` as it
            completes — completion order, not task order.
    """
    tasks = list(tasks)
    ids = [task.id for task in tasks]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise SweepError(f"duplicate task ids in sweep: {dupes}")
    for task in tasks:
        resolve_kind(task.kind)  # fail fast on unknown kinds, pre-spawn
    if not tasks:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) == 1:
        return _run_inline(tasks, retries, progress)
    return _run_pool(tasks, jobs, retries, progress)


class WorkerPool:
    """A persistent warm pool: submit cells at any time, poll completions.

    This is the long-lived form of the sweep engine.  :func:`run_tasks`
    drives one for the duration of a batch sweep; the :mod:`repro.serve`
    gateway keeps one alive for its whole lifetime, which is what
    amortizes the spawn cost that makes ``-j`` lose on small runs
    (``benchmarks/BENCH_sweep.json``) — workers are spawned once and
    reused across every request.

    Threading contract: :meth:`submit` may be called from any thread
    (the gateway submits from its event loop); :meth:`poll` and
    :meth:`close` must be called from a single consumer thread.  A
    submission wakes a blocked :meth:`poll` through an internal socket
    pair, so the consumer never spins.

    Workers are spawned lazily up to ``jobs``, only as demand requires
    (a pool created for 8 workers that only ever holds one cell at a
    time spawns one).  Crash containment, retry-once, and dead-worker
    respawn behave exactly as documented in the module docstring.
    """

    def __init__(self, jobs: int = 1, retries: int = 1) -> None:
        self.jobs = max(1, resolve_jobs(jobs))
        self.retries = retries
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._pending: deque[Task] = deque()
        self._live: dict[str, Task] = {}  #: submitted, not yet finalised
        self._attempts: dict[str, int] = {}
        self._workers: list[_WorkerHandle] = []
        self._next_index = 0
        self._closed = False
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)

    # -- producer side (any thread) ----------------------------------------
    def submit(self, task: Task) -> None:
        """Enqueue one cell; wakes the consumer if it is blocked in poll."""
        resolve_kind(task.kind)  # fail fast on unknown kinds, pre-spawn
        with self._lock:
            if self._closed:
                raise SweepError("pool is closed")
            if task.id in self._live:
                raise SweepError(f"task id {task.id!r} already in flight")
            self._live[task.id] = task
            self._attempts[task.id] = 0
            self._pending.append(task)
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - defensive (closing race)
            pass

    def outstanding(self) -> int:
        """Cells submitted but not yet returned by :meth:`poll`."""
        with self._lock:
            return len(self._live)

    # -- consumer side (one thread) ----------------------------------------
    def _feed(self) -> None:
        """Hand pending cells to idle workers, spawning up to demand."""
        with self._lock:
            busy = sum(1 for w in self._workers if w.current is not None)
            demand = min(self.jobs, busy + len(self._pending))
            while len(self._workers) < demand:
                self._workers.append(_spawn_worker(self._ctx, self._next_index))
                self._next_index += 1
            for worker in self._workers:
                if worker.current is None and self._pending:
                    task = self._pending.popleft()
                    worker.current = task
                    self._attempts[task.id] += 1
                    worker.conn.send(("task", task.id, task.kind, dict(task.spec)))

    def _drain_wake(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except BlockingIOError:
                return

    def _settle(
        self,
        results: list[TaskResult],
        worker: _WorkerHandle,
        task: Task,
        ok: bool,
        value: t.Any,
        error: str | None,
        wall_s: float,
    ) -> None:
        """Record one attempt's outcome: finalise or requeue for retry."""
        with self._lock:
            if ok or self._attempts[task.id] > self.retries:
                attempts = self._attempts.pop(task.id)
                del self._live[task.id]
                results.append(TaskResult(
                    task_id=task.id, ok=ok, value=value, error=error,
                    attempts=attempts, worker=worker.index, wall_s=wall_s,
                ))
            else:
                self._pending.appendleft(task)

    def poll(self, timeout: float | None = None) -> list[TaskResult]:
        """Wait for completions; returns every cell finalised by this call.

        Returns ``[]`` on timeout, or immediately when nothing is in
        flight.  A new :meth:`submit` from another thread wakes the wait.
        """
        self._feed()
        busy = [w for w in self._workers if w.current is not None]
        if not busy:
            self._drain_wake()
            return []
        ready = wait(
            [w.conn for w in busy]
            + [w.process.sentinel for w in busy]
            + [self._wake_r],
            timeout,
        )
        self._drain_wake()
        ready_set = set(ready)
        results: list[TaskResult] = []
        dead: list[_WorkerHandle] = []
        for worker in busy:
            message = None
            if worker.conn in ready_set or worker.process.sentinel in ready_set:
                try:
                    if worker.conn.poll():
                        message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None
            if message is not None:
                status, task_id, payload, wall_s = message
                task = worker.current
                assert task is not None and task.id == task_id
                worker.current = None
                if status == "ok":
                    self._settle(results, worker, task, True, payload, None, wall_s)
                else:
                    self._settle(results, worker, task, False, None, payload, wall_s)
            elif worker.process.sentinel in ready_set and not worker.process.is_alive():
                # hard death mid-cell: charge only the held task
                task = worker.current
                worker.current = None
                dead.append(worker)
                if task is not None:
                    exit_code = worker.process.exitcode
                    self._settle(
                        results, worker, task, False, None,
                        f"worker {worker.index} died (exit code {exit_code}) "
                        f"while running task {task.id!r}", 0.0,
                    )
        for worker in dead:
            self._workers.remove(worker)
            worker.conn.close()
            worker.process.join()
        self._feed()  # restart retries / fill the gap a dead worker left
        return results

    def close(self) -> None:
        """Stop and join every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self._workers.clear()
        self._wake_r.close()
        self._wake_w.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.close()


def _run_pool(
    tasks: list[Task],
    jobs: int,
    retries: int,
    progress: t.Callable[[TaskResult], None] | None,
) -> list[TaskResult]:
    """Batch driver over :class:`WorkerPool`: submit all, drain, order."""
    finished: dict[str, TaskResult] = {}
    with WorkerPool(jobs=min(jobs, len(tasks)), retries=retries) as pool:
        for task in tasks:
            pool.submit(task)
        while pool.outstanding():
            for result in pool.poll():
                finished[result.task_id] = result
                if progress is not None:
                    progress(result)

    missing = [task.id for task in tasks if task.id not in finished]
    if missing:  # pragma: no cover - defensive
        raise SweepError(f"sweep lost results for tasks: {missing}")
    return [finished[task.id] for task in tasks]
