"""The sweep engine: warm spawn-based workers with crash containment.

:func:`run_tasks` executes a list of :class:`Task` cells and returns
one :class:`TaskResult` per cell **in input order**, however the cells
were scheduled.  ``jobs=1`` (the default) executes inline in the
calling process — that *is* the serial path, byte for byte, because
the same kind handlers run either way.  ``jobs>1`` scatters cells onto
warm worker processes created with the ``spawn`` start method.

Spawn, not fork, deliberately: a forked child inherits whatever the
parent accumulated — an active telemetry session, numpy RNG state,
half-collected generators awaiting finalisation — any of which can
leak into a simulation and break the same-seed byte-identity this
repository's golden files assert.  A spawned worker is a pristine
interpreter whose runs are indistinguishable from a fresh serial
invocation (it also behaves identically on macOS/Windows, where fork
is unavailable or unsafe).

Failure posture, per cell:

* a handler that **raises** is caught inside the worker and reported
  as a failed attempt — the worker stays warm;
* a worker that **dies** (``os._exit``, segfault, OOM-kill) is
  detected via its process sentinel; only the cell it was holding is
  charged, and a fresh worker replaces it;
* either way the cell is retried once (``retries=1``) before its
  :class:`TaskResult` is finalised as failed.  Other cells always run
  to completion — one poisoned cell cannot take down a sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import typing as t
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait

from repro.errors import ReproError
from repro.parallel.tasks import resolve_kind


class SweepError(ReproError):
    """A sweep could not produce a result for every task cell."""


@dataclass(frozen=True)
class Task:
    """One sweep cell: a unique id, a kind, and a plain-dict spec."""

    id: str
    kind: str
    spec: dict[str, t.Any] = field(default_factory=dict)


@dataclass
class TaskResult:
    """The outcome of one cell, after any retry."""

    task_id: str
    ok: bool
    value: t.Any = None
    error: str | None = None
    attempts: int = 1
    worker: int | None = None  #: worker index, or ``None`` for inline
    wall_s: float = 0.0

    def line(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        where = "inline" if self.worker is None else f"worker {self.worker}"
        detail = "" if self.ok else f" — {(self.error or '').splitlines()[-1]}"
        return f"[{status}] {self.task_id:<28} {where}  {self.wall_s:6.2f}s{detail}"


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: ``0`` means cpu autodetect."""
    if jobs < 0:
        raise SweepError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _worker_main(conn: Connection) -> None:  # pragma: no cover - runs in child
    """Warm worker loop: recv a cell, run its handler, send the outcome.

    Handler exceptions are converted to ``("err", ...)`` messages so the
    worker survives them; only a hard process death escapes this loop.
    """
    while True:
        message = conn.recv()
        if message[0] == "stop":
            conn.close()
            return
        _, task_id, kind, spec = message
        start = time.perf_counter()
        try:
            value = resolve_kind(kind)(spec)
        except BaseException:
            conn.send(("err", task_id, traceback.format_exc(), time.perf_counter() - start))
        else:
            conn.send(("ok", task_id, value, time.perf_counter() - start))


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    index: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    current: Task | None = None


def _spawn_worker(ctx: t.Any, index: int) -> _WorkerHandle:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn,),
        name=f"repro-sweep-{index}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _WorkerHandle(index=index, process=process, conn=parent_conn)


def _run_inline(
    tasks: t.Sequence[Task],
    retries: int,
    progress: t.Callable[[TaskResult], None] | None,
) -> list[TaskResult]:
    """The serial path: same handlers, same retry policy, one process."""
    results = []
    for task in tasks:
        handler = resolve_kind(task.kind)
        result = TaskResult(task_id=task.id, ok=False)
        for attempt in range(1, retries + 2):
            start = time.perf_counter()
            result.attempts = attempt
            try:
                result.value = handler(dict(task.spec))
            except Exception:
                result.error = traceback.format_exc()
                result.wall_s = time.perf_counter() - start
            else:
                result.ok = True
                result.error = None
                result.wall_s = time.perf_counter() - start
                break
        if progress is not None:
            progress(result)
        results.append(result)
    return results


def run_tasks(
    tasks: t.Sequence[Task],
    jobs: int = 1,
    retries: int = 1,
    progress: t.Callable[[TaskResult], None] | None = None,
) -> list[TaskResult]:
    """Execute every cell; return results in task order, come what may.

    Args:
        tasks: the sweep cells; ids must be unique (results are merged
            keyed by id, so duplicates would be ambiguous).
        jobs: worker processes; ``1`` runs inline (the serial path),
            ``0`` autodetects the cpu count.
        retries: extra attempts per failed cell (default one retry).
        progress: called with each finalised :class:`TaskResult` as it
            completes — completion order, not task order.
    """
    tasks = list(tasks)
    ids = [task.id for task in tasks]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise SweepError(f"duplicate task ids in sweep: {dupes}")
    for task in tasks:
        resolve_kind(task.kind)  # fail fast on unknown kinds, pre-spawn
    if not tasks:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) == 1:
        return _run_inline(tasks, retries, progress)
    return _run_pool(tasks, jobs, retries, progress)


def _run_pool(
    tasks: list[Task],
    jobs: int,
    retries: int,
    progress: t.Callable[[TaskResult], None] | None,
) -> list[TaskResult]:
    ctx = multiprocessing.get_context("spawn")
    by_id = {task.id: task for task in tasks}
    pending: deque[Task] = deque(tasks)
    attempts: dict[str, int] = {task.id: 0 for task in tasks}
    finished: dict[str, TaskResult] = {}
    n_workers = min(jobs, len(tasks))
    workers = [_spawn_worker(ctx, i) for i in range(n_workers)]
    next_index = n_workers

    def finalise(result: TaskResult) -> None:
        finished[result.task_id] = result
        if progress is not None:
            progress(result)

    def settle(worker: _WorkerHandle, task: Task, ok: bool, value: t.Any,
               error: str | None, wall_s: float) -> None:
        """Record one attempt's outcome: finalise or requeue for retry."""
        if ok or attempts[task.id] > retries:
            finalise(TaskResult(
                task_id=task.id, ok=ok, value=value, error=error,
                attempts=attempts[task.id], worker=worker.index, wall_s=wall_s,
            ))
        else:
            pending.appendleft(task)

    try:
        while len(finished) < len(tasks):
            # feed every idle worker
            for worker in workers:
                if worker.current is None and pending:
                    task = pending.popleft()
                    worker.current = task
                    attempts[task.id] += 1
                    worker.conn.send(("task", task.id, task.kind, dict(task.spec)))
            busy = [w for w in workers if w.current is not None]
            if not busy:
                break  # nothing in flight and nothing pending
            ready = wait(
                [w.conn for w in busy] + [w.process.sentinel for w in busy]
            )
            ready_set = set(ready)
            dead: list[_WorkerHandle] = []
            for worker in busy:
                message = None
                if worker.conn in ready_set or worker.process.sentinel in ready_set:
                    try:
                        if worker.conn.poll():
                            message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                if message is not None:
                    status, task_id, payload, wall_s = message
                    task = by_id[task_id]
                    worker.current = None
                    if status == "ok":
                        settle(worker, task, True, payload, None, wall_s)
                    else:
                        settle(worker, task, False, None, payload, wall_s)
                elif worker.process.sentinel in ready_set and not worker.process.is_alive():
                    # hard death mid-cell: charge only the held task
                    task = worker.current
                    worker.current = None
                    dead.append(worker)
                    if task is not None:
                        exit_code = worker.process.exitcode
                        settle(
                            worker, task, False, None,
                            f"worker {worker.index} died (exit code {exit_code}) "
                            f"while running task {task.id!r}", 0.0,
                        )
            for worker in dead:
                workers.remove(worker)
                worker.conn.close()
                worker.process.join()
                outstanding = len(tasks) - len(finished)
                if outstanding > len(workers):
                    workers.append(_spawn_worker(ctx, next_index))
                    next_index += 1
    finally:
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()

    missing = [task.id for task in tasks if task.id not in finished]
    if missing:  # pragma: no cover - defensive
        raise SweepError(f"sweep lost results for tasks: {missing}")
    return [finished[task.id] for task in tasks]
