"""Order-independent merging of sweep results and telemetry snapshots.

The determinism-by-merge argument: every cell is a fully seeded,
self-contained run, so its result does not depend on *where* or *when*
it executed — only completion order varies with worker count.  Merging
therefore (a) keys results by task id and re-emits them in task order
(:func:`ordered_values`), and (b) folds per-cell telemetry snapshot
sections with operations that are either commutative (counter sums,
histogram element-wise adds, min/max) or explicitly sequenced by task
order (gauge last-write), so the merged output is a pure function of
the task list — identical at ``-j 1`` and ``-j 64``.

Telemetry sections here are the *snapshot dict* forms produced by
:meth:`repro.telemetry.metrics.MetricsRegistry.snapshot` (what bench
payloads embed), not live metric objects — these helpers aggregate
across process boundaries where only JSON survives.
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError


def ordered_values(
    tasks: t.Sequence[t.Any], results_by_id: t.Mapping[str, t.Any]
) -> list[t.Any]:
    """Results re-sequenced into task order, keyed by ``task.id``."""
    missing = [task.id for task in tasks if task.id not in results_by_id]
    if missing:
        raise ConfigurationError(f"merge is missing results for tasks: {missing}")
    return [results_by_id[task.id] for task in tasks]


def merge_counter_maps(
    maps: t.Iterable[t.Mapping[str, float]],
) -> dict[str, float]:
    """Sum counter snapshots name-by-name (commutative, order-free)."""
    merged: dict[str, float] = {}
    for section in maps:
        for name, value in section.items():
            merged[name] = merged.get(name, 0.0) + value
    return {name: merged[name] for name in sorted(merged)}


def merge_gauge_sections(
    sections: t.Iterable[t.Mapping[str, t.Mapping[str, float]]],
) -> dict[str, dict[str, float]]:
    """Fold gauge snapshots (``last``/``min``/``max``/``n``) in the given
    order — the task order, which is what keeps last-write deterministic."""
    merged: dict[str, dict[str, float]] = {}
    for section in sections:
        for name, snap in section.items():
            if not snap.get("n"):
                continue
            into = merged.get(name)
            if into is None:
                merged[name] = dict(snap)
            else:
                into["last"] = snap["last"]
                into["min"] = min(into["min"], snap["min"])
                into["max"] = max(into["max"], snap["max"])
                into["n"] += snap["n"]
    return {name: merged[name] for name in sorted(merged)}


def merge_histogram_sections(
    sections: t.Iterable[t.Mapping[str, t.Mapping[str, t.Any]]],
) -> dict[str, dict[str, t.Any]]:
    """Element-wise fold of histogram snapshots (fixed buckets add)."""
    merged: dict[str, dict[str, t.Any]] = {}
    for section in sections:
        for name, snap in section.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "count": snap["count"],
                    "sum": snap["sum"],
                    "min": snap["min"],
                    "max": snap["max"],
                    "mean": snap["mean"],
                    "buckets": dict(snap["buckets"]),
                }
                continue
            if not snap["count"]:
                continue
            buckets = into["buckets"]
            for bound, n in snap["buckets"].items():
                buckets[bound] = buckets.get(bound, 0) + n
            if into["count"]:
                into["min"] = min(into["min"], snap["min"])
                into["max"] = max(into["max"], snap["max"])
            else:
                into["min"], into["max"] = snap["min"], snap["max"]
            into["count"] += snap["count"]
            into["sum"] += snap["sum"]
            into["mean"] = into["sum"] / into["count"] if into["count"] else 0.0
    return {name: merged[name] for name in sorted(merged)}


def merge_snapshots(
    snapshots: t.Sequence[t.Mapping[str, t.Mapping[str, t.Any]]],
) -> dict[str, dict[str, t.Any]]:
    """Merge whole ``{"counters", "gauges", "histograms"}`` snapshots.

    Pass the snapshots **in task order** — counters and histograms are
    order-free, gauges fold last-write by position.
    """
    return {
        "counters": merge_counter_maps(s.get("counters", {}) for s in snapshots),
        "gauges": merge_gauge_sections(s.get("gauges", {}) for s in snapshots),
        "histograms": merge_histogram_sections(
            s.get("histograms", {}) for s in snapshots
        ),
    }
