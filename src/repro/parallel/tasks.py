"""The task-kind registry: what a sweep cell *does*.

A task cell carries ``(kind, spec)`` where ``spec`` is a plain dict of
JSON types — the only thing that crosses the process boundary.  Workers
resolve ``kind`` through this module (imported fresh in every spawned
interpreter), so a handler must be registered at import time to be
visible to the pool; handlers registered dynamically by a parent
process would not exist in its workers.

Every handler takes the spec dict and returns a plain JSON-able dict.
Handlers run the *same* library entry points the serial paths use
(:func:`repro.bench.runner.run_bench`,
:func:`repro.chaos.campaign.run_scenario`,
:func:`repro.oracle.verify.run_verify`), which is what makes the
``jobs=1`` inline executor literally the serial path and the merged
``jobs>1`` output byte-identical to it.

The ``selftest`` kind exists for the pool's own tests and smoke
targets: it can succeed, raise, hard-exit the worker, or fail exactly
once (via a marker file), exercising crash containment and retry-once
without touching the simulator.
"""

from __future__ import annotations

import os
import typing as t

from repro.errors import ConfigurationError

#: a task handler: plain-dict spec in, plain JSON-able dict out
Handler = t.Callable[[t.Dict[str, t.Any]], t.Dict[str, t.Any]]

_KINDS: dict[str, Handler] = {}


def register_kind(kind: str, handler: Handler) -> None:
    """Register ``handler`` under ``kind`` (import-time only — see above)."""
    if kind in _KINDS:
        raise ConfigurationError(f"task kind {kind!r} already registered")
    _KINDS[kind] = handler


def resolve_kind(kind: str) -> Handler:
    handler = _KINDS.get(kind)
    if handler is None:
        raise ConfigurationError(
            f"unknown task kind {kind!r}; choose from {sorted(_KINDS)}"
        )
    return handler


def task_kinds() -> tuple[str, ...]:
    return tuple(sorted(_KINDS))


# ---------------------------------------------------------------------------
# built-in kinds (one per sweep surface)
# ---------------------------------------------------------------------------
def _bench_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """One bench scenario run: ``{"scenario": name, "seed": n}``."""
    from repro.bench.runner import run_bench

    result = run_bench(spec["scenario"], seed=int(spec.get("seed", 0)))
    return {
        "scenario": result.scenario.name,
        "seed": result.seed,
        "payload": result.payload,
        "host_wall_s": result.host_wall_s,
        "host_metrics": result.host_metrics,
    }


def _chaos_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """One chaos campaign run: ``{"scenario": name, "seed": n}``."""
    from dataclasses import asdict

    from repro.chaos.campaign import run_scenario

    report = run_scenario(spec["scenario"], seed=int(spec.get("seed", 0)))
    return {
        "scenario": report.scenario,
        "seed": report.seed,
        "ok": report.ok,
        "total_violations": report.total_violations,
        "report": asdict(report),
        "text": report.to_text(),
    }


def _verify_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """One oracle layer at one seed: ``{"seed": n, "layer": name}``."""
    from pathlib import Path

    from repro.oracle.verify import run_verify

    golden_dir = spec.get("golden_dir")
    report = run_verify(
        seed=int(spec.get("seed", 0)),
        layers=(spec["layer"],),
        golden_dir=Path(golden_dir) if golden_dir else None,
        relations=spec.get("relations"),
    )
    return {
        "seed": report.seed,
        "layer": spec["layer"],
        "ok": report.ok,
        "payload": report.to_payload(),
    }


def _experiment_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """One paper experiment: ``{"name": "fig7", "quick": bool}``."""
    from repro.cli import EXPERIMENTS

    name = spec["name"]
    if name not in EXPERIMENTS:
        raise ConfigurationError(f"unknown experiment {name!r}")
    return {"name": name, "text": EXPERIMENTS[name](bool(spec.get("quick", False)))}


def _selftest_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """Pool self-test cell; ``mode`` picks the behaviour.

    * ``"ok"`` — succeed, echoing ``spec["payload"]``.
    * ``"raise"`` — raise (a contained, in-worker failure).
    * ``"exit"`` — hard-kill the worker process (crash containment).
    * ``"flaky"`` — fail unless ``spec["marker"]`` exists, creating it
      first, so the retry succeeds (retry-once coverage).
    """
    mode = spec.get("mode", "ok")
    if mode == "ok":
        return {"echo": spec.get("payload"), "pid": os.getpid()}
    if mode == "raise":
        raise RuntimeError(f"poisoned task cell ({spec.get('payload')})")
    if mode == "exit":
        os._exit(int(spec.get("code", 13)))
    if mode == "flaky":
        marker = spec["marker"]
        if os.path.exists(marker):
            return {"echo": spec.get("payload"), "recovered": True, "pid": os.getpid()}
        with open(marker, "w") as fh:
            fh.write("poisoned-once\n")
        raise RuntimeError("flaky task cell (first attempt)")
    raise ConfigurationError(f"unknown selftest mode {mode!r}")


def _serve_cell(spec: dict[str, t.Any]) -> dict[str, t.Any]:
    """One gateway request: ``{"request": wire-dict}``.

    The serve gateway's warm pool executes every queued request through
    this cell, so a worker computes exactly what the inline
    :func:`repro.api.dispatch` path computes — which is what lets the
    cache treat worker- and parent-produced payloads interchangeably.
    """
    from repro.api import dispatch_wire

    return {"response": dispatch_wire(spec["request"])}


register_kind("bench", _bench_cell)
register_kind("chaos", _chaos_cell)
register_kind("verify", _verify_cell)
register_kind("experiment", _experiment_cell)
register_kind("selftest", _selftest_cell)
register_kind("serve", _serve_cell)
