"""Deterministic multiprocess fan-out for embarrassingly parallel sweeps.

Every sweep surface in this repository — the bench matrix, chaos
campaigns, ``repro verify`` seed sweeps, the experiment grids — is a
list of fully independent seeded simulations.  This package turns such
a list into *task cells* ``(kind, spec, seed)`` executed by warm
spawn-based worker processes, then merges the results back **keyed by
task id**, so the merged output is byte-identical to the serial path
regardless of worker count or completion order.

The three modules:

* :mod:`repro.parallel.pool` — the engine: :func:`run_tasks` executes a
  task list inline (``jobs=1``, the serial path) or on a warm worker
  pool (``jobs>1``) with per-cell crash containment and retry-once.
* :mod:`repro.parallel.tasks` — the kind registry mapping a task kind
  (``"bench"``, ``"chaos"``, ``"verify"``, ``"experiment"``) to the
  handler workers import and execute.
* :mod:`repro.parallel.merge` — order-independent result ordering and
  cross-process telemetry aggregation (counters add, histograms fold
  element-wise, gauges fold in task order).
"""

from repro.parallel.merge import (
    merge_counter_maps,
    merge_gauge_sections,
    merge_histogram_sections,
    merge_snapshots,
)
from repro.parallel.pool import (
    Task,
    TaskResult,
    SweepError,
    WorkerPool,
    resolve_jobs,
    run_tasks,
)
from repro.parallel.tasks import register_kind, resolve_kind, task_kinds

__all__ = [
    "SweepError",
    "Task",
    "TaskResult",
    "WorkerPool",
    "merge_counter_maps",
    "merge_gauge_sections",
    "merge_histogram_sections",
    "merge_snapshots",
    "register_kind",
    "resolve_jobs",
    "resolve_kind",
    "run_tasks",
    "task_kinds",
]
