"""The campaign result object.

A :class:`ChaosReport` is pure data with a canonical text rendering:
two runs of the same scenario with the same seed must produce
byte-identical ``to_text()`` output — that property is itself asserted
by the chaos test suite, because a nondeterministic simulator would
make every seed-based bug reproduction worthless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.invariants import Violation
from repro.chaos.scenarios import ScheduledFault

#: how many individual violations the text rendering spells out
_MAX_RENDERED = 20


@dataclass(frozen=True)
class ChaosReport:
    """Everything one campaign run produced."""

    scenario: str
    seed: int
    horizon_s: float
    n_nodes: int
    n_satellites: int
    events_processed: int
    checks_run: int
    faults_injected: int
    alerts_raised: int
    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    master_takeovers: int
    invariant_counts: tuple[tuple[str, int], ...]
    violations: tuple[Violation, ...] = ()
    schedule: tuple[ScheduledFault, ...] = field(default=(), repr=False)
    jobs_grown: int = 0
    jobs_shrunk: int = 0

    @property
    def total_violations(self) -> int:
        return sum(count for _, count in self.invariant_counts)

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def repro_hint(self) -> str:
        """The command that replays this exact run."""
        return f"repro chaos run {self.scenario} --seed {self.seed}"

    def schedule_dump(self) -> str:
        """The fault schedule, one line per fault (repro / shrink output)."""
        lines = [
            f"  t={fault.at:12.3f}  {fault.kind:<12} "
            f"dur={fault.duration:10.3f}  nodes={list(fault.node_ids)}"
            for fault in self.schedule
        ]
        return "\n".join(lines) if lines else "  (empty schedule)"

    def to_text(self) -> str:
        """Canonical, deterministic rendering of the whole report."""
        lines = [
            f"chaos campaign: {self.scenario} (seed={self.seed})",
            f"  cluster: {self.n_nodes} compute + {self.n_satellites} satellites, "
            f"horizon {self.horizon_s:.0f}s",
            f"  events processed: {self.events_processed}, "
            f"invariant sweeps: {self.checks_run}",
            f"  faults injected: {self.faults_injected} "
            f"({len(self.schedule)} scheduled), alerts raised: {self.alerts_raised}",
            f"  jobs: {self.jobs_submitted} submitted, {self.jobs_completed} completed, "
            f"{self.jobs_failed} failed",
            f"  master takeovers: {self.master_takeovers}",
            f"  resizes: {self.jobs_grown} grow(s), {self.jobs_shrunk} shrink(s)",
            f"  violations: {self.total_violations}",
        ]
        for name, count in self.invariant_counts:
            lines.append(f"    {name:<24} {count}")
        for violation in self.violations[:_MAX_RENDERED]:
            lines.append(
                f"  VIOLATION t={violation.time:.3f} [{violation.invariant}] "
                f"{violation.detail}"
            )
        if len(self.violations) > _MAX_RENDERED:
            lines.append(f"  ... {len(self.violations) - _MAX_RENDERED} more recorded")
        if not self.ok:
            lines.append(f"  reproduce with: {self.repro_hint()}")
        return "\n".join(lines)
