"""Backward-compatible alias of the shared invariant registry.

The invariant definitions moved to :mod:`repro.oracle.invariants` so
the chaos campaigns and the differential/metamorphic oracle consume
one registry instead of keeping private copies.  Every public name is
re-exported here; existing ``repro.chaos.invariants`` imports keep
working unchanged.
"""

from __future__ import annotations

from repro.oracle.invariants import (
    MAX_RECORDED_PER_INVARIANT,
    ChaosContext,
    Eq1Correctness,
    FPTreeSoundness,
    Invariant,
    InvariantRegistry,
    MalleableWidth,
    NodeConservation,
    Reporter,
    SatelliteLegality,
    SchedulerConservation,
    Violation,
    default_invariants,
)

__all__ = [
    "MAX_RECORDED_PER_INVARIANT",
    "ChaosContext",
    "Eq1Correctness",
    "FPTreeSoundness",
    "Invariant",
    "InvariantRegistry",
    "MalleableWidth",
    "NodeConservation",
    "Reporter",
    "SatelliteLegality",
    "SchedulerConservation",
    "Violation",
    "default_invariants",
]
