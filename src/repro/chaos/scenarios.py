"""The chaos scenario catalogue.

A scenario is a small cluster, a synthetic job stream, and — the point
of the exercise — a *failure schedule*: a deterministic list of
:class:`ScheduledFault` records derived from the campaign seed.  The
runner feeds the schedule through
:meth:`~repro.cluster.failures.FailureInjector.schedule_fault`, so the
monitor-announcement path, maintenance-window guard, and recovery
machinery are exactly the production ones.

Keeping schedules as plain data (rather than background Poisson
processes) is what makes campaigns replayable and *shrinkable*: a
failing run can be minimised by re-running subsets of the schedule.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class ScheduledFault:
    """One deterministic fault: ``kind`` hits ``node_ids`` at ``at``."""

    at: float
    kind: str  # "point" | "burst" | "maintenance" | "flap" | "satellite"
    node_ids: tuple[int, ...]
    duration: float

    def sort_key(self) -> tuple[float, str, tuple[int, ...]]:
        return (self.at, self.kind, self.node_ids)


ScheduleBuilder = t.Callable[["ChaosScenario", np.random.Generator], t.List[ScheduledFault]]


@dataclass(frozen=True)
class ChaosScenario:
    """A named adversarial setting the campaign runner can execute.

    ``malleable_fraction`` > 0 turns on the scheduler's elastic-job
    protocol and makes that fraction of the job stream declare
    ``min_nodes``/``max_nodes``; ``placement`` selects the node-placement
    policy (``"topology"`` = hop-compact, alert-averse).  Both default to
    the rigid/first-fit setting, keeping the original catalogue entries
    byte-identical.
    """

    name: str
    description: str
    n_nodes: int
    n_satellites: int
    horizon_s: float
    n_jobs: int
    builder: ScheduleBuilder
    malleable_fraction: float = 0.0
    placement: str = "first-fit"

    def build_schedule(self, rng: np.random.Generator) -> list[ScheduledFault]:
        """The seed-deterministic fault schedule, sorted by time."""
        return sorted(self.builder(self, rng), key=ScheduledFault.sort_key)

    def satellite_node_id(self, k: int) -> int:
        """Cluster node id of satellite ``k`` (they sit after the master)."""
        return self.n_nodes + 1 + k


# -- schedule builders -------------------------------------------------------

def _point_faults(
    scenario: ChaosScenario,
    rng: np.random.Generator,
    count: int,
    mean_repair_s: float = 1200.0,
) -> list[ScheduledFault]:
    """Independent single-node faults, uniform over the first 90 %."""
    faults = []
    for _ in range(count):
        at = float(rng.uniform(60.0, 0.9 * scenario.horizon_s))
        node = int(rng.integers(scenario.n_nodes))
        duration = max(60.0, float(rng.exponential(mean_repair_s)))
        faults.append(ScheduledFault(at, "point", (node,), duration))
    return faults


def _burst_faults(
    scenario: ChaosScenario, rng: np.random.Generator, count: int
) -> list[ScheduledFault]:
    """Correlated contiguous-block faults (a chassis or switch dies)."""
    faults = []
    for _ in range(count):
        at = float(rng.uniform(300.0, 0.8 * scenario.horizon_s))
        size = int(rng.integers(8, 17))
        start = int(rng.integers(max(1, scenario.n_nodes - size)))
        ids = tuple(range(start, min(start + size, scenario.n_nodes)))
        duration = max(300.0, float(rng.exponential(1800.0)))
        faults.append(ScheduledFault(at, "burst", ids, duration))
    return faults


def _failure_storm(scenario: ChaosScenario, rng: np.random.Generator) -> list[ScheduledFault]:
    return _point_faults(scenario, rng, count=40) + _burst_faults(scenario, rng, count=3)


def _rolling_maintenance(
    scenario: ChaosScenario, rng: np.random.Generator
) -> list[ScheduledFault]:
    """Rack-by-rack windows that overlap in time, plus stray repairs.

    The overlap is deliberate: a point fault repaired inside a later
    window is exactly the resurrection case the maintenance guard (and
    its invariant) must hold against.
    """
    block = 16
    window = 2400.0
    stagger = 1800.0
    faults = []
    for i, start in enumerate(range(0, scenario.n_nodes, block)):
        ids = tuple(range(start, min(start + block, scenario.n_nodes)))
        faults.append(ScheduledFault(900.0 + i * stagger, "maintenance", ids, window))
    faults += _point_faults(scenario, rng, count=10, mean_repair_s=600.0)
    return faults


def _master_takeover_cascade(
    scenario: ChaosScenario, rng: np.random.Generator
) -> list[ScheduledFault]:
    """Kill the satellites one by one until the master is on its own.

    Each satellite fault lasts past the 20-minute FAULT timeout, so the
    daemons escalate to DOWN and every later broadcast must fail over
    and eventually be taken over by the master (Section III failover).
    """
    faults = [
        ScheduledFault(
            900.0 + 600.0 * k,
            "satellite",
            (scenario.satellite_node_id(k),),
            2.5 * HOUR,
        )
        for k in range(scenario.n_satellites)
    ]
    faults += _point_faults(scenario, rng, count=8)
    return faults


def _flapping_node(scenario: ChaosScenario, rng: np.random.Generator) -> list[ScheduledFault]:
    """One node fails and recovers every ten minutes, all run long.

    Stresses the down/up bookkeeping of the scheduler pool and the
    alert TTL logic: the flapper stays predicted-failed essentially
    forever and must live on FP-Tree leaves.
    """
    flapper = int(rng.integers(scenario.n_nodes))
    faults = []
    at = 600.0
    while at < 0.9 * scenario.horizon_s:
        faults.append(ScheduledFault(at, "flap", (flapper,), 180.0))
        at += 600.0
    faults += _point_faults(scenario, rng, count=6)
    return faults


SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="failure-storm",
            description="dense point faults plus chassis bursts under live load",
            n_nodes=96,
            n_satellites=3,
            horizon_s=4 * HOUR,
            n_jobs=60,
            builder=_failure_storm,
        ),
        ChaosScenario(
            name="rolling-maintenance",
            description="overlapping rack-sized maintenance windows sweep the machine",
            n_nodes=96,
            n_satellites=2,
            horizon_s=5 * HOUR,
            n_jobs=50,
            builder=_rolling_maintenance,
        ),
        ChaosScenario(
            name="master-takeover-cascade",
            description="satellites die in sequence until the master relays alone",
            n_nodes=64,
            n_satellites=3,
            horizon_s=3 * HOUR,
            n_jobs=40,
            builder=_master_takeover_cascade,
        ),
        ChaosScenario(
            name="flapping-node",
            description="one node fails and recovers relentlessly",
            n_nodes=48,
            n_satellites=2,
            horizon_s=3 * HOUR,
            n_jobs=40,
            builder=_flapping_node,
        ),
        ChaosScenario(
            name="malleable-shrink-storm",
            description="failure storm against an elastic job mix — chaos shrinks instead of kills",
            n_nodes=96,
            n_satellites=3,
            horizon_s=4 * HOUR,
            n_jobs=60,
            builder=_failure_storm,
            malleable_fraction=0.5,
        ),
        ChaosScenario(
            name="topology-storm",
            description="failure storm under topology/fault-aware placement",
            n_nodes=96,
            n_satellites=3,
            horizon_s=4 * HOUR,
            n_jobs=60,
            builder=_failure_storm,
            placement="topology",
        ),
    )
}


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(f"unknown chaos scenario {name!r} (known: {known})") from None
