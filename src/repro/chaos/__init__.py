"""Chaos campaigns: adversarial failure schedules + in-line invariants.

The correctness backstop for every scaling/perf PR: named failure
scenarios run against the full RM stack while simulation-wide
invariants are checked after every event.  See ``repro chaos run`` for
the CLI and ``tests/chaos`` for the enforced acceptance properties.
"""

from repro.chaos.campaign import (
    CampaignCell,
    CampaignOutcome,
    campaign_cell_id,
    ddmin,
    run_campaign,
    run_scenario,
    shrink_schedule,
)
from repro.chaos.invariants import (
    ChaosContext,
    Eq1Correctness,
    FPTreeSoundness,
    Invariant,
    InvariantRegistry,
    NodeConservation,
    SatelliteLegality,
    SchedulerConservation,
    Violation,
    default_invariants,
)
from repro.chaos.report import ChaosReport
from repro.chaos.scenarios import SCENARIOS, ChaosScenario, ScheduledFault, get_scenario

__all__ = [
    "SCENARIOS",
    "CampaignCell",
    "CampaignOutcome",
    "ChaosContext",
    "ChaosReport",
    "ChaosScenario",
    "Eq1Correctness",
    "FPTreeSoundness",
    "Invariant",
    "InvariantRegistry",
    "NodeConservation",
    "SatelliteLegality",
    "ScheduledFault",
    "SchedulerConservation",
    "Violation",
    "campaign_cell_id",
    "ddmin",
    "default_invariants",
    "get_scenario",
    "run_campaign",
    "run_scenario",
    "shrink_schedule",
]
