"""The chaos campaign runner and the schedule shrinker.

``run_scenario`` executes one named scenario: it builds a seeded
simulator, cluster, and ESLURM instance, attaches every registered
invariant (event hooks + the post-event probe), injects the scenario's
deterministic fault schedule, drives a synthetic job stream, and
returns a :class:`~repro.chaos.report.ChaosReport`.

``shrink_schedule`` is the reproduction aid: given a failing run it
ddmin-reduces the fault schedule to a (1-)minimal sublist that still
violates an invariant — the thing you paste into a bug report next to
the seed.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.chaos.invariants import (
    ChaosContext,
    Invariant,
    InvariantRegistry,
    default_invariants,
)
from repro.chaos.report import ChaosReport
from repro.chaos.scenarios import DAY, ChaosScenario, ScheduledFault, get_scenario
from repro.cluster.failures import FailureModel
from repro.cluster.spec import ClusterSpec
from repro.rm.eslurm import EslurmRM
from repro.sched.job import JobState
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

#: a list-of-invariants factory; fresh instances per run (they carry state)
InvariantFactory = t.Callable[[], t.List[Invariant]]


def _resolve(scenario: str | ChaosScenario) -> ChaosScenario:
    return scenario if isinstance(scenario, ChaosScenario) else get_scenario(scenario)


def _job_stream(scenario: ChaosScenario, seed: int):
    """Seed-deterministic synthetic jobs paced to fill ~60 % of the horizon."""
    config = WorkloadConfig(
        n_users=12,
        n_apps=10,
        apps_per_user=2,
        jobs_per_day=scenario.n_jobs * DAY / (0.6 * scenario.horizon_s),
        max_nodes=max(1, scenario.n_nodes // 4),
        long_job_fraction=0.1,
        burst_mean=2.0,
        malleable_fraction=scenario.malleable_fraction,
        name=f"chaos-{scenario.name}",
    )
    return generate_trace(config, scenario.n_jobs, seed=seed)


def run_scenario(
    scenario: str | ChaosScenario,
    seed: int = 0,
    schedule: t.Sequence[ScheduledFault] | None = None,
    invariant_factory: InvariantFactory | None = None,
) -> ChaosReport:
    """Execute one campaign run; never raises on violations.

    Args:
        scenario: catalogue name or an explicit :class:`ChaosScenario`.
        seed: master seed for the simulator, the fault schedule, and
            the job stream — same seed, same run, byte for byte.
        schedule: explicit fault schedule (the shrinker passes subsets);
            defaults to the scenario's seeded schedule.
        invariant_factory: produces the invariants to enforce; defaults
            to :func:`~repro.chaos.invariants.default_invariants`.
    """
    spec = _resolve(scenario)
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(
        n_nodes=spec.n_nodes,
        n_satellites=spec.n_satellites,
        failure_model=FailureModel.disabled(),
        name=f"chaos-{spec.name}",
    ).build(sim)
    rm_kwargs: dict[str, t.Any] = {}
    if spec.malleable_fraction > 0.0:
        from repro.sched.backfill import BackfillScheduler

        rm_kwargs["scheduler"] = BackfillScheduler(malleable=True)
    if spec.placement != "first-fit":
        from repro.sched.placement import build_placement

        rm_kwargs["placement"] = build_placement(
            spec.placement, cluster.topology, alert_source=cluster.monitor
        )
    rm = EslurmRM(sim, cluster, **rm_kwargs)

    registry = InvariantRegistry(
        invariant_factory() if invariant_factory is not None else default_invariants()
    )
    ctx = ChaosContext(sim=sim, cluster=cluster, rm=rm)
    registry.attach(ctx)
    sim.add_probe(lambda: registry.probe(ctx))

    if schedule is None:
        schedule = spec.build_schedule(np.random.default_rng(seed))
    for fault in schedule:
        cluster.failures.schedule_fault(fault.kind, fault.at, fault.node_ids, fault.duration)

    jobs = _job_stream(spec, seed)
    rm.run_trace(jobs, until=spec.horizon_s)

    return ChaosReport(
        scenario=spec.name,
        seed=seed,
        horizon_s=spec.horizon_s,
        n_nodes=spec.n_nodes,
        n_satellites=spec.n_satellites,
        events_processed=sim.events_processed,
        checks_run=registry.checks_run,
        faults_injected=cluster.failures.failures_injected(),
        alerts_raised=cluster.monitor.alert_count(),
        jobs_submitted=len(jobs),
        jobs_completed=sum(1 for j in rm.jobs if j.state is JobState.COMPLETED),
        jobs_failed=sum(1 for j in rm.jobs if j.state is JobState.FAILED),
        master_takeovers=rm.sat_pool.master_takeovers,
        jobs_grown=rm.resize_grows,
        jobs_shrunk=rm.resize_shrinks,
        invariant_counts=registry.counts(),
        violations=tuple(registry.violations),
        schedule=tuple(schedule),
    )


# ---------------------------------------------------------------------------
# multi-scenario / multi-seed campaigns (the sweep surface)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignCell:
    """One (scenario, seed) cell of a campaign grid, post-run."""

    scenario: str
    seed: int
    ok: bool
    total_violations: int
    #: ``asdict`` form of the :class:`ChaosReport` (JSON-able)
    report: dict[str, t.Any]
    #: the report's canonical ``to_text()`` rendering
    text: str


@dataclass
class CampaignOutcome:
    """A whole campaign grid: cells in grid order plus contained failures."""

    cells: list[CampaignCell]
    #: cells that crashed or errored even after retry (grid completed anyway)
    failures: list["TaskResult"]
    jobs: int

    @property
    def ok(self) -> bool:
        return not self.failures and all(cell.ok for cell in self.cells)

    @property
    def total_violations(self) -> int:
        return sum(cell.total_violations for cell in self.cells)

    def merged_invariant_counts(self) -> dict[str, int]:
        """Invariant hit-counts summed across every cell (order-free)."""
        from repro.parallel.merge import merge_counter_maps

        return {
            name: int(count)
            for name, count in merge_counter_maps(
                dict(cell.report["invariant_counts"]) for cell in self.cells
            ).items()
        }

    def to_text(self) -> str:
        """Canonical rendering: per-cell reports in grid order + summary."""
        blocks = [cell.text for cell in self.cells]
        blocks.append(self.summary_text())
        return "\n\n".join(blocks)

    def summary_text(self) -> str:
        lines = [
            f"campaign: {len(self.cells)} run(s), "
            f"{self.total_violations} violation(s), "
            f"{len(self.failures)} crashed cell(s)",
        ]
        for name, count in sorted(self.merged_invariant_counts().items()):
            lines.append(f"  {name:<24} {count}")
        for failure in self.failures:
            detail = (failure.error or "unknown").splitlines()[-1]
            lines.append(f"  CRASHED {failure.task_id}: {detail}")
        return "\n".join(lines)

    def to_payload(self) -> dict[str, t.Any]:
        return {
            "ok": self.ok,
            "n_cells": len(self.cells),
            "total_violations": self.total_violations,
            "invariant_counts": self.merged_invariant_counts(),
            "failures": [
                {"cell": f.task_id, "error": (f.error or "").splitlines()[-1:]}
                for f in self.failures
            ],
            "reports": [cell.report for cell in self.cells],
        }


def campaign_cell_id(scenario: str, seed: int) -> str:
    return f"{scenario}@s{seed}"


def run_campaign(
    scenarios: t.Sequence[str],
    seeds: t.Sequence[int] = (0,),
    jobs: int = 1,
    progress: t.Callable[[str], None] | None = None,
) -> CampaignOutcome:
    """Run the scenario × seed grid; every cell is crash-contained.

    ``jobs=1`` executes the grid inline in scenario-major, seed-minor
    order — exactly a loop over :func:`run_scenario`; ``jobs>1`` fans
    the same cells out over spawn-based workers and merges results back
    into grid order, so the rendered output and JSON payload are
    byte-identical either way.  (Custom invariant factories are a
    single-run affair — they cannot cross a process boundary — so grid
    cells always run the default invariant set.)
    """
    from repro.parallel.pool import Task, TaskResult, run_tasks

    for name in scenarios:
        get_scenario(name)  # fail fast on unknown names, pre-spawn
    tasks = [
        Task(
            id=campaign_cell_id(name, seed),
            kind="chaos",
            spec={"scenario": name, "seed": int(seed)},
        )
        for name in scenarios
        for seed in seeds
    ]

    def on_cell(result: TaskResult) -> None:
        if progress is None:
            return
        if result.ok:
            v = result.value["total_violations"]
            verdict = "ok" if result.value["ok"] else f"{v} violation(s)"
            progress(f"{result.task_id:<32} {verdict}  ({result.wall_s:.2f}s)")
        else:
            progress(f"{result.task_id:<32} CRASHED after {result.attempts} attempt(s)")

    outcomes = run_tasks(tasks, jobs=jobs, progress=on_cell)
    cells = [
        CampaignCell(
            scenario=o.value["scenario"],
            seed=o.value["seed"],
            ok=o.value["ok"],
            total_violations=o.value["total_violations"],
            report=o.value["report"],
            text=o.value["text"],
        )
        for o in outcomes
        if o.ok
    ]
    return CampaignOutcome(
        cells=cells,
        failures=[o for o in outcomes if not o.ok],
        jobs=jobs,
    )


class _ShrinkBudgetExhausted(Exception):
    """Internal: the shrinker hit its re-run budget."""


def ddmin(
    items: t.Sequence[ScheduledFault],
    fails: t.Callable[[t.Sequence[ScheduledFault]], bool],
) -> list[ScheduledFault]:
    """Classic delta-debugging minimisation over a fault schedule.

    Returns a sublist on which ``fails`` still holds and from which no
    single tried chunk can be removed — empty if the full input does
    not fail at all.
    """
    current = list(items)
    if not current or not fails(current):
        return []
    granularity = 2
    while len(current) >= 2:
        chunk = -(-len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk :]
            if candidate and fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_schedule(
    scenario: str | ChaosScenario,
    seed: int = 0,
    schedule: t.Sequence[ScheduledFault] | None = None,
    invariant_factory: InvariantFactory | None = None,
    max_runs: int = 80,
) -> list[ScheduledFault]:
    """Minimal failing fault schedule for ``(scenario, seed)``.

    Re-runs the campaign on sublists of the schedule (each run is fully
    deterministic, so the search is sound).  Returns ``[]`` when the
    full schedule does not violate anything; otherwise a ddmin-minimal
    failing schedule, possibly unminimised if ``max_runs`` is hit.
    """
    spec = _resolve(scenario)
    if schedule is None:
        schedule = spec.build_schedule(np.random.default_rng(seed))
    runs = 0
    best: list[ScheduledFault] = []

    def fails(candidate: t.Sequence[ScheduledFault]) -> bool:
        nonlocal runs, best
        if runs >= max_runs:
            raise _ShrinkBudgetExhausted
        runs += 1
        report = run_scenario(
            spec, seed=seed, schedule=candidate, invariant_factory=invariant_factory
        )
        if report.total_violations > 0 and (not best or len(candidate) < len(best)):
            best = list(candidate)
        return report.total_violations > 0

    try:
        return ddmin(list(schedule), fails)
    except _ShrinkBudgetExhausted:
        return best
