"""EASY backfill (aggressive backfill with one reservation).

The algorithm the paper uses for every RM in its scheduling comparison
(Section VII-D, citing the Slurm/PBS/LSF backfill documentation):

1. start queued jobs in order while they fit;
2. when the head does not fit, compute its *shadow time* — the earliest
   instant enough nodes will be free assuming running jobs end at their
   believed (wall-limit) ends — and reserve those nodes;
3. a later job may jump the queue iff it fits in the currently-free
   nodes **and** either (a) it is believed to finish before the shadow
   time, or (b) it only uses nodes beyond the reservation's need (the
   "extra nodes" rule).

Because decisions in step 3 trust ``job.limit_s``, the whole benefit of
accurate runtime estimation flows through here: overestimated limits
make holes look too small (lost utilization), underestimates kill jobs
at the wall limit.
"""

from __future__ import annotations

import typing as t

from repro.sched.allocator import NodePool
from repro.sched.job import Job
from repro.sched.queue import JobQueue
from repro.telemetry import facade as telemetry


class BackfillScheduler:
    """EASY backfill with a single head-of-queue reservation.

    Args:
        max_backfill_depth: how many queued jobs behind the head are
            considered for backfilling per pass (Slurm's
            ``bf_max_job_test`` analogue).
    """

    name = "backfill"

    def __init__(self, max_backfill_depth: int = 100) -> None:
        self.max_backfill_depth = max_backfill_depth

    def plan(self, queue: JobQueue, pool: NodePool, now: float) -> list[tuple[Job, tuple[int, ...]]]:
        """One scheduling pass; returns ``(job, node_ids)`` start decisions."""
        decisions: list[tuple[Job, tuple[int, ...]]] = []
        # Phase 1: plain FCFS while the head fits.
        while True:
            head = queue.head()
            if head is None or not pool.fits(head):
                break
            nodes = pool.allocate(head, now)
            queue.remove(head)
            decisions.append((head, nodes))
        head = queue.head()
        if head is None:
            return decisions
        # Phase 2: reservation for the blocked head.
        shadow_time, extra_nodes = self._reservation(head, pool, now)
        # Phase 3: backfill behind the reservation.
        tel = telemetry.active()
        candidates = queue.backfill_candidates(self.max_backfill_depth)
        if tel is not None:
            # one bulk increment per pass, not one call per candidate —
            # this counter alone dominated pass cost at 16K nodes
            tel.count("sched.backfill.attempts", len(candidates))
        for job in candidates:
            if not pool.fits(job):
                continue
            finishes_before_shadow = now + job.planned_s <= shadow_time
            uses_spare_nodes = job.n_nodes <= extra_nodes
            if finishes_before_shadow or uses_spare_nodes:
                nodes = pool.allocate(job, now)
                queue.remove(job)
                decisions.append((job, nodes))
                if tel is not None:
                    tel.count("sched.backfill.starts")
                # Spare nodes are *consumed* whenever this job may still
                # hold them past the shadow time — judged by the kill
                # limit, the only bound the system enforces.  Deciding
                # only on ``uses_spare_nodes and not finishes_before_shadow``
                # double-counts: a job admitted under both conditions
                # (planned to finish early, but its limit reaching past
                # the shadow) left ``extra_nodes`` intact, letting later
                # candidates re-consume the same spares and encroach on
                # the head's reservation if the estimate runs long.
                if now + job.limit_s > shadow_time:
                    extra_nodes -= job.n_nodes
        return decisions

    @staticmethod
    def _reservation(head: Job, pool: NodePool, now: float) -> tuple[float, int]:
        """``(shadow_time, extra_nodes)`` for the blocked head job.

        Walk running jobs by believed end; the shadow time is when
        cumulative releases make the head fit.  ``extra_nodes`` is how
        many nodes beyond the head's need are free at that instant.
        """
        free = pool.n_free
        needed = head.n_nodes
        for believed_end, n_nodes in pool.believed_ends():
            free += n_nodes
            if free >= needed:
                return believed_end, free - needed
        # Head can never fit from running-job releases alone (e.g. down
        # nodes shrank the machine).  An infinite shadow time lets every
        # smaller job backfill rather than starving the whole queue
        # behind an unsatisfiable head.
        return float("inf"), 0
