"""EASY backfill (aggressive backfill with one reservation).

The algorithm the paper uses for every RM in its scheduling comparison
(Section VII-D, citing the Slurm/PBS/LSF backfill documentation):

1. start queued jobs in order while they fit;
2. when the head does not fit, compute its *shadow time* — the earliest
   instant enough nodes will be free assuming running jobs end at their
   believed (wall-limit) ends — and reserve those nodes;
3. a later job may jump the queue iff it fits in the currently-free
   nodes **and** either (a) it is believed to finish before the shadow
   time, or (b) it only uses nodes beyond the reservation's need (the
   "extra nodes" rule).

Because decisions in step 3 trust ``job.limit_s``, the whole benefit of
accurate runtime estimation flows through here: overestimated limits
make holes look too small (lost utilization), underestimates kill jobs
at the wall limit.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.sched.allocator import NodePool
from repro.sched.job import Job, JobState
from repro.sched.queue import JobQueue
from repro.telemetry import facade as telemetry


@dataclass(frozen=True)
class ResizeDecision:
    """One grow or shrink of a running malleable job.

    The pool bookkeeping is already updated when the decision is
    emitted (mirroring how ``plan`` allocates); the RM engine applies
    the job/cluster/process side.
    """

    job: Job
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()


class BackfillScheduler:
    """EASY backfill with a single head-of-queue reservation.

    Args:
        max_backfill_depth: how many queued jobs behind the head are
            considered for backfilling per pass (Slurm's
            ``bf_max_job_test`` analogue).
        malleable: enable the elastic-job protocol — blocked heads may
            start *shrunk*, running jobs grow into spare holes
            (:meth:`plan_resizes`) and are contracted to admit a
            blocked head.  Off by default: the rigid path stays
            byte-identical to the paper's setting.
    """

    name = "backfill"

    def __init__(self, max_backfill_depth: int = 100, malleable: bool = False) -> None:
        self.max_backfill_depth = max_backfill_depth
        self.malleable = malleable

    def plan(self, queue: JobQueue, pool: NodePool, now: float) -> list[tuple[Job, tuple[int, ...]]]:
        """One scheduling pass; returns ``(job, node_ids)`` start decisions."""
        decisions: list[tuple[Job, tuple[int, ...]]] = []
        # Phase 1: plain FCFS while the head fits.  In malleable mode a
        # blocked elastic head may start *shrunk* (contracted under
        # pressure) instead of waiting for its full reservation.
        shrunk_starts = 0
        while True:
            head = queue.head()
            if head is None:
                break
            if pool.fits(head):
                nodes = pool.allocate(head, now)
            elif (
                self.malleable
                and head.malleable
                and pool.n_free >= head.min_nodes
            ):
                width = pool.n_free if pool.n_free < head.n_nodes else head.n_nodes
                nodes = pool.allocate(head, now, width)
                # Work conservation stretches a shrunk job's wall clock;
                # the reservation belief must stretch with it.
                rec = pool.running[head.job_id]
                rec.believed_end = now + head.limit_s * (head.n_nodes / width)
                shrunk_starts += 1
            else:
                break
            queue.remove(head)
            decisions.append((head, nodes))
        if shrunk_starts:
            telemetry.count("sched.start.shrunk", shrunk_starts)
        head = queue.head()
        if head is None:
            return decisions
        tel = telemetry.active()
        candidates = queue.backfill_candidates(self.max_backfill_depth)
        if tel is not None:
            # one bulk increment per pass, not one call per candidate —
            # this counter alone dominated pass cost at 16K nodes
            tel.count("sched.backfill.attempts", len(candidates))
        if pool.n_free == 0 or not candidates:
            # No candidate can fit (``fits`` needs at least one free
            # node), so the reservation walk would decide nothing; the
            # outcome is identical to walking phases 2-3 to no effect.
            return decisions
        # Phase 2: reservation for the blocked head.
        shadow_time, extra_nodes = self._reservation(head, pool, now)
        # Phase 3: backfill behind the reservation.
        for job in candidates:
            if not pool.fits(job):
                continue
            finishes_before_shadow = now + job.planned_s <= shadow_time
            uses_spare_nodes = job.n_nodes <= extra_nodes
            if finishes_before_shadow or uses_spare_nodes:
                nodes = pool.allocate(job, now)
                queue.remove(job)
                decisions.append((job, nodes))
                if tel is not None:
                    tel.count("sched.backfill.starts")
                # Spare nodes are *consumed* whenever this job may still
                # hold them past the shadow time — judged by the kill
                # limit, the only bound the system enforces.  Deciding
                # only on ``uses_spare_nodes and not finishes_before_shadow``
                # double-counts: a job admitted under both conditions
                # (planned to finish early, but its limit reaching past
                # the shadow) left ``extra_nodes`` intact, letting later
                # candidates re-consume the same spares and encroach on
                # the head's reservation if the estimate runs long.
                if now + job.limit_s > shadow_time:
                    extra_nodes -= job.n_nodes
        return decisions

    def _reservation(self, head: Job, pool: NodePool, now: float) -> tuple[float, int]:
        """``(shadow_time, extra_nodes)`` for the blocked head job.

        Walk running jobs by believed end (each at its *current*,
        post-resize width); the shadow time is when cumulative releases
        make the head fit.  ``extra_nodes`` is how many nodes beyond the
        head's need are free at that instant.

        In malleable mode a blocked elastic head reserves at the width
        it can actually start at — ``min_nodes``, the same need
        :meth:`plan_resizes` contracts donors toward — not its original
        ``n_nodes``.  Reserving the rigid width computed the shadow from
        a start that phase 1 never waits for (it starts the head shrunk
        as soon as ``min_nodes`` are free), so the spare budget was
        charged at the wrong instant and systematically mis-counted.
        """
        free = pool.n_free
        needed = (
            head.min_nodes if self.malleable and head.malleable else head.n_nodes
        )
        if free >= needed:
            # Already startable at the reserved width (a malleable head
            # awaiting the engine's next start pass): the shadow is now.
            return now, free - needed
        for believed_end, n_nodes in pool.believed_ends():
            free += n_nodes
            if free >= needed:
                return believed_end, free - needed
        # Head can never fit from running-job releases alone (e.g. down
        # nodes shrank the machine).  An infinite shadow time lets every
        # smaller job backfill rather than starving the whole queue
        # behind an unsatisfiable head.
        return float("inf"), 0

    # -- malleability ------------------------------------------------------
    def plan_resizes(self, queue: JobQueue, pool: NodePool, now: float) -> list[ResizeDecision]:
        """One elastic pass: contract to admit a blocked head, then grow.

        Runs *after* :meth:`plan` on the post-start pool state, so the
        head reservation is recomputed fresh — a growing job and a
        backfilled job can never double-count the same spare nodes.
        Pool bookkeeping is mutated here (exactly like ``plan``); the
        engine applies the job/cluster side and retimes processes.

        * **contraction**: when the blocked head cannot fit even at its
          minimum width, running elastic jobs above their ``min_nodes``
          donate nodes (highest ids first) — but only when the donations
          fully cover the deficit;
        * **growth**: spare free nodes are handed to running elastic
          jobs below ``max_nodes``.  A grower believed to run past the
          head's shadow time consumes the same ``extra_nodes`` budget
          backfill charges, so the reservation stays safe.
        """
        if not self.malleable or not pool.running:
            return []
        decisions: list[ResizeDecision] = []

        def elastic(rec: "t.Any") -> bool:
            return rec.job.malleable and rec.job.state is JobState.RUNNING

        head = queue.head()
        if head is not None:
            need = head.min_nodes if head.malleable else head.n_nodes
            deficit = need - pool.n_free
            if deficit > 0:
                donors = [
                    rec
                    for _, rec in sorted(pool.running.items())
                    if elastic(rec) and len(rec.node_ids) > rec.job.min_nodes
                ]
                capacity = sum(len(r.node_ids) - r.job.min_nodes for r in donors)
                if capacity < deficit:
                    return decisions  # partial shrinks would help nobody
                for rec in donors:
                    if deficit <= 0:
                        break
                    give = min(len(rec.node_ids) - rec.job.min_nodes, deficit)
                    victims = tuple(sorted(rec.node_ids)[-give:])
                    pool.shrink_allocation(rec.job.job_id, victims)
                    decisions.append(ResizeDecision(rec.job, removed=victims))
                    deficit -= give
                # The freed nodes admit the head on the engine's follow-up
                # pass; growing now would re-consume them.
                return decisions
        if pool.n_free == 0:
            return decisions
        growable = [
            rec
            for _, rec in sorted(pool.running.items())
            if elastic(rec) and len(rec.node_ids) < rec.job.max_nodes
        ]
        if not growable:
            return decisions
        if queue.demand_nodes == 0:
            # Nothing pending: every free node is spare.
            shadow, extra = float("inf"), pool.n_free
        else:
            shadow, extra = self._reservation(head, pool, now)
        for rec in growable:
            if pool.n_free == 0:
                break
            want = min(rec.job.max_nodes - len(rec.node_ids), pool.n_free)
            # Growers holding spares past the shadow burn the budget —
            # the exact rule backfill applies to jobs it admits.
            beyond_shadow = rec.believed_end > shadow
            if beyond_shadow:
                want = min(want, extra)
            if want <= 0:
                continue
            added = pool.grow_allocation(rec.job.job_id, want)
            decisions.append(ResizeDecision(rec.job, added=added))
            if beyond_shadow:
                extra -= want
        return decisions
