"""Scheduling quality metrics (Section VII-D).

Three metrics, defined exactly as the paper does:

* **system utilization** — node-hours running jobs over total elapsed
  node-hours;
* **average waiting time** — submission to start;
* **average bounded slowdown** — Eq. 6 with the short-job guard
  τ = 10 s::

      slowdown = max((t_w + t_r) / max(t_r, τ), 1)
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError
from repro.sched.job import Job, JobState

#: Eq. 6's τ: guards the slowdown of extremely short jobs.
DEFAULT_TAU_S = 10.0


def bounded_slowdown(wait_s: float, runtime_s: float, tau_s: float = DEFAULT_TAU_S) -> float:
    """Eq. 6 for one job."""
    if runtime_s < 0 or wait_s < 0:
        raise SchedulingError("wait/runtime cannot be negative")
    return max((wait_s + runtime_s) / max(runtime_s, tau_s), 1.0)


@dataclass
class ScheduleMetrics:
    """Aggregate metrics over one scheduling run."""

    n_jobs: int
    n_completed: int
    n_timeout: int
    n_failed: int
    utilization: float
    avg_wait_s: float
    avg_slowdown: float
    makespan_s: float
    total_node_seconds: float

    @classmethod
    def from_jobs(
        cls,
        jobs: t.Sequence[Job],
        n_nodes: int,
        horizon_s: float | None = None,
        tau_s: float = DEFAULT_TAU_S,
    ) -> "ScheduleMetrics":
        """Compute metrics from finished (and unfinished) jobs.

        Args:
            jobs: every job submitted in the run.
            n_nodes: machine size (for utilization's denominator).
            horizon_s: elapsed wall-clock of the run; defaults to the
                last job-end time.
            tau_s: Eq. 6's τ.
        """
        if n_nodes < 1:
            raise SchedulingError("n_nodes must be positive")
        started = [j for j in jobs if j.start_time is not None]
        # cancelled-before-start jobs have an end time but never ran
        ended = [j for j in started if j.end_time is not None]
        if horizon_s is None:
            horizon_s = max((j.end_time for j in ended), default=0.0)
        # Utilization counts *useful* node-hours: completed jobs and jobs
        # still running at the horizon.  Work destroyed by wall-limit
        # kills, node failures, or an RM crash orphaning its jobs ran on
        # the machine but served nobody.
        busy = sum(
            j.n_nodes * (min(j.end_time, horizon_s) - j.start_time)
            for j in ended
            if j.end_time > j.start_time and j.state is JobState.COMPLETED
        )
        # Jobs still running at the horizon contribute their elapsed part.
        busy += sum(
            j.n_nodes * (horizon_s - j.start_time)
            for j in started
            if j.end_time is None and j.start_time < horizon_s
        )
        total = n_nodes * horizon_s
        waits = np.array([j.wait_time for j in started], dtype=float)
        slowdowns = np.array(
            [
                bounded_slowdown(j.wait_time, j.end_time - j.start_time, tau_s)
                for j in ended
                if j.start_time is not None
            ],
            dtype=float,
        )
        return cls(
            n_jobs=len(jobs),
            n_completed=sum(j.state is JobState.COMPLETED for j in jobs),
            n_timeout=sum(j.state is JobState.TIMEOUT for j in jobs),
            n_failed=sum(j.state is JobState.FAILED for j in jobs),
            utilization=busy / total if total > 0 else 0.0,
            avg_wait_s=float(waits.mean()) if waits.size else 0.0,
            avg_slowdown=float(slowdowns.mean()) if slowdowns.size else 0.0,
            makespan_s=horizon_s,
            total_node_seconds=busy,
        )

    def summary(self) -> str:
        """Human-readable one-block report."""
        return (
            f"jobs={self.n_jobs} completed={self.n_completed} "
            f"timeout={self.n_timeout} failed={self.n_failed}\n"
            f"utilization={self.utilization:.1%} "
            f"avg_wait={self.avg_wait_s:.1f}s "
            f"avg_slowdown={self.avg_slowdown:.2f} "
            f"makespan={self.makespan_s:.0f}s"
        )
