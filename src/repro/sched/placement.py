"""Placement policies: which free nodes a job should receive.

The default allocator is first-fit-by-id (the paper's setting and the
byte-stable baseline).  This module adds a *topology-aware* policy in
the spirit of Vardas et al.: candidate node sets are scored by
hop-level compactness (same board < same chassis < same rack <
cross-rack) and the selection steers away from nodes the monitoring
layer has alert-flagged — the same FP-Tree alert feed ESLURM uses to
place fragile nodes at broadcast-tree leaves.

Two guarantees the oracle layer pins:

* **compactness** — the mean pairwise hop level of a topology-aware
  selection never exceeds first-fit's on the same pool state;
* **clean-first** — an alert-flagged node is only ever selected when no
  feasible all-clean set exists (tracked in :attr:`PlacementStats`).
"""

from __future__ import annotations

import heapq
import typing as t
from dataclasses import dataclass

from repro.cluster.topology import Topology


def placement_pair_counts(nodes: t.Sequence[int], topology: Topology) -> dict[int, int]:
    """Pairs of ``nodes`` at each hop level, computed in O(n).

    Grouping by board/chassis/rack turns the O(n^2) pairwise walk into
    three dictionary passes: ``C(c, 2)`` pairs share a container of
    size ``c``, and subtracting nested containers leaves the pairs whose
    *tightest* shared container is that level.
    """

    def pairs_within(size: int) -> int:
        counts: dict[int, int] = {}
        for nid in nodes:
            key = nid // size
            counts[key] = counts.get(key, 0) + 1
        return sum(c * (c - 1) // 2 for c in counts.values())

    total = len(nodes) * (len(nodes) - 1) // 2
    board = pairs_within(topology.nodes_per_board)
    chassis = pairs_within(topology.nodes_per_chassis)
    rack = pairs_within(topology.nodes_per_rack)
    return {
        1: board,  # SAME_BOARD
        2: chassis - board,  # SAME_CHASSIS
        3: rack - chassis,  # SAME_RACK
        4: total - rack,  # CROSS_RACK
    }


def placement_score(nodes: t.Sequence[int], topology: Topology) -> float:
    """Mean pairwise hop level of a node set (lower = more compact).

    Invariant under rack relabelling: permuting whole racks preserves
    every within-board/chassis/rack group size, hence every pair count.
    """
    n = len(nodes)
    if n < 2:
        return 0.0
    by_level = placement_pair_counts(nodes, topology)
    total = n * (n - 1) // 2
    return sum(level * count for level, count in by_level.items()) / total


@dataclass
class PlacementStats:
    """Counters a placement policy accumulates across selections."""

    selections: int = 0
    flagged_selected: int = 0
    #: selections that used a flagged node while an all-clean feasible
    #: set existed — the oracle asserts this stays zero
    flagged_despite_clean: int = 0
    score_sum: float = 0.0

    @property
    def mean_score(self) -> float:
        return self.score_sum / self.selections if self.selections else 0.0


class PlacementPolicy:
    """Base: pick ``k`` node ids out of the free set."""

    name = "placement"

    def select(self, free: t.AbstractSet[int], k: int) -> tuple[int, ...] | None:
        """``k`` chosen ids, or ``None`` when the free set is too small."""
        raise NotImplementedError


class FirstFitPlacement(PlacementPolicy):
    """The k smallest free ids — the baseline policy, made explicit."""

    name = "first-fit"

    def select(self, free: t.AbstractSet[int], k: int) -> tuple[int, ...] | None:
        if len(free) < k:
            return None
        return tuple(heapq.nsmallest(k, free))


class TopologyAwarePlacement(PlacementPolicy):
    """Hop-compact, alert-averse selection.

    Args:
        topology: the machine's rack/chassis/board layout.
        alert_source: where flagged node ids come from — an object with
            a ``predicted_failed(among)`` method (the cluster's
            :class:`~repro.cluster.monitoring.HealthMonitor`), a
            callable returning an id collection, or ``None`` (no
            steering, pure compactness).
    """

    name = "topology"

    def __init__(
        self,
        topology: Topology,
        alert_source: t.Any = None,
    ) -> None:
        self.topology = topology
        self.alert_source = alert_source
        self.stats = PlacementStats()

    def _flagged(self, free: t.AbstractSet[int]) -> set[int]:
        src = self.alert_source
        if src is None:
            return set()
        if hasattr(src, "predicted_failed"):
            return set(src.predicted_failed(free))
        return set(src()) & set(free)

    def select(self, free: t.AbstractSet[int], k: int) -> tuple[int, ...] | None:
        if len(free) < k or k <= 0:
            return None
        flagged = self._flagged(free)
        clean = sorted(n for n in free if n not in flagged)
        if len(clean) >= k:
            chosen = self._compact_pick(clean, k)
        else:
            # Not enough clean nodes: take them all, overflow into the
            # flagged set (never refuse a feasible allocation).
            overflow = self._compact_pick(sorted(flagged), k - len(clean))
            chosen = tuple(clean) + overflow
        self.stats.selections += 1
        n_flagged = sum(1 for nid in chosen if nid in flagged)
        if n_flagged:
            self.stats.flagged_selected += n_flagged
            if len(clean) >= k:
                self.stats.flagged_despite_clean += 1
        self.stats.score_sum += placement_score(chosen, self.topology)
        return chosen

    def _compact_pick(self, candidates: list[int], k: int) -> tuple[int, ...]:
        """The better-scoring of the container pick and plain first-fit.

        The container search is greedy (tightest-container tie-breaks
        can lose to the k smallest ids on pathological free sets), so
        the first-fit candidate over the same set is kept as a floor:
        the returned pick never scores worse than first-fit would on the
        identical pool state — the compactness guarantee the oracle
        layer pins.
        """
        pick = self._container_pick(candidates, k)
        baseline = tuple(candidates[:k])
        if placement_score(baseline, self.topology) < placement_score(pick, self.topology):
            return baseline
        return pick

    def _container_pick(self, candidates: list[int], k: int) -> tuple[int, ...]:
        """Best-fit container search over ``candidates`` (sorted ids).

        Try the smallest hierarchy level whose single container can hold
        ``k`` (board, then chassis, then rack), picking the *tightest*
        such container (fewest free nodes, lowest index on ties).  When
        no single rack fits, pack greedily: fullest racks first so the
        selection spans as few racks as possible.
        """
        topo = self.topology
        for size in (topo.nodes_per_board, topo.nodes_per_chassis, topo.nodes_per_rack):
            groups: dict[int, list[int]] = {}
            for nid in candidates:
                groups.setdefault(nid // size, []).append(nid)
            feasible = [(len(ids), idx) for idx, ids in groups.items() if len(ids) >= k]
            if feasible:
                _, idx = min(feasible)
                return tuple(groups[idx][:k])
        # Cross-rack: fewest racks via fullest-first greedy packing.
        by_rack: dict[int, list[int]] = {}
        for nid in candidates:
            by_rack.setdefault(nid // topo.nodes_per_rack, []).append(nid)
        order = sorted(by_rack, key=lambda r: (-len(by_rack[r]), r))
        chosen: list[int] = []
        for rack in order:
            take = min(k - len(chosen), len(by_rack[rack]))
            chosen.extend(by_rack[rack][:take])
            if len(chosen) == k:
                break
        return tuple(chosen)


#: registry for config-by-name wiring (CLI, bench tiers, chaos scenarios)
PLACEMENT_NAMES = ("first-fit", "topology")


def build_placement(
    name: str,
    topology: Topology | None = None,
    alert_source: t.Any = None,
) -> PlacementPolicy | None:
    """``None`` for first-fit (the pool's native fast path), else a policy."""
    if name == "first-fit":
        return None
    if name == "topology":
        return TopologyAwarePlacement(topology or Topology(), alert_source=alert_source)
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown placement {name!r}; choose from {list(PLACEMENT_NAMES)}"
    )
