"""Node allocation: the free pool and running-job bookkeeping.

The pool is the scheduler's view of the machine: which compute nodes are
free, which job holds which nodes, and — crucially for backfill — when
each running job is *believed* to end (its start time plus wall limit).

Internally the pool is struct-of-arrays: per-node state lives in
parallel columns indexed by a dense column number (``_col`` maps node id
to column), not in per-node sets.

* ``_state`` — one byte per node: FREE / BUSY / DOWN.  DOWN wins over
  BUSY for counting purposes (``n_down`` includes down nodes a job still
  holds), matching the historical set semantics where ``_down``
  membership and allocation-record membership were independent.
* ``_owner`` — the job id bound to the node, or -1.  The binding
  survives ``mark_down`` (the job still holds the node until it is
  released or shrunk away), which is what makes ``mark_down``/``mark_up``
  O(1) instead of a scan over every running job's allocation.
* ``_free_heap`` — the lazy min-heap lane over free ids (may hold stale
  entries; pops skip ids whose state column is no longer FREE, and the
  heap is rebuilt from the state column if stale entries dominate).

Aggregate counters (``_n_free``, ``_n_down``) are maintained
incrementally so capacity checks are O(1); whole-pool views
(``free_ids``, ``down_ids``, heap rebuilds) are single zip-scans over
the columns.  Allocation order is unchanged: *first-fit-by-id*, a
k-node job always receives the k smallest free node ids.
"""

from __future__ import annotations

import heapq
import typing as t
from array import array
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.sched.job import Job

#: per-node state column values
_FREE, _BUSY, _DOWN = 0, 1, 2

#: owner-column value for "no job bound to this node"
_NO_OWNER = -1


@dataclass
class RunningJob:
    """Bookkeeping for one running job."""

    job: Job
    node_ids: tuple[int, ...]
    believed_end: float


class NodePool:
    """Struct-of-arrays free/running bookkeeping over a fixed universe.

    Allocation order is *first-fit-by-id*: a k-node job always receives
    the k smallest free node ids.  The free state is mirrored into a
    lazy min-heap so each allocation costs O(k log n) pops instead of
    the O(n log n) full sort the naive ``sorted(free)[:k]`` pays; stale
    heap entries (ids no longer free) are skipped on pop and the heap is
    rebuilt outright if stale entries ever dominate.
    """

    def __init__(self, node_ids: t.Iterable[int], placement: t.Any = None) -> None:
        ids = sorted(node_ids)
        if len(set(ids)) != len(ids):
            raise SchedulingError("duplicate node ids in pool")
        #: column -> node id (ascending, so a fresh heap is pre-sorted)
        self._ids: list[int] = ids
        #: node id -> column
        self._col: dict[int, int] = {nid: col for col, nid in enumerate(ids)}
        #: per-node state column (FREE / BUSY / DOWN)
        self._state = bytearray(len(ids))
        #: per-node owning job id (-1 when unbound)
        self._owner = array("q", [_NO_OWNER]) * len(ids)
        self._n_free = len(ids)
        self._n_down = 0
        #: lazy min-heap lane over the free ids (may hold stale entries)
        self._free_heap: list[int] = list(ids)
        self.running: dict[int, RunningJob] = {}
        #: memo for :meth:`believed_ends`, dropped whenever ``running`` changes
        self._ends_cache: list[tuple[float, int]] | None = None
        #: optional :class:`~repro.sched.placement.PlacementPolicy`;
        #: ``None`` keeps the native first-fit-by-id heap path
        self.placement = placement

    # -- capacity ----------------------------------------------------------
    @property
    def n_total(self) -> int:
        return len(self._ids)

    @property
    def n_free(self) -> int:
        return self._n_free

    @property
    def n_down(self) -> int:
        return self._n_down

    @property
    def n_busy(self) -> int:
        return len(self._ids) - self._n_free - self._n_down

    def has_node(self, node_id: int) -> bool:
        """Whether the node belongs to this pool's universe."""
        return node_id in self._col

    def free_ids(self) -> frozenset[int]:
        """Snapshot of the free set (invariant checking / debugging)."""
        state = self._state
        return frozenset(nid for col, nid in enumerate(self._ids) if state[col] == _FREE)

    def down_ids(self) -> frozenset[int]:
        """Snapshot of the out-of-service set."""
        state = self._state
        return frozenset(nid for col, nid in enumerate(self._ids) if state[col] == _DOWN)

    def fits(self, job: Job) -> bool:
        return job.n_nodes <= self._n_free

    def fits_width(self, width: int) -> bool:
        return width <= self._n_free

    # -- allocation -----------------------------------------------------------
    def allocate(self, job: Job, now: float, width: int | None = None) -> tuple[int, ...]:
        """Allocate ``width`` (default ``job.n_nodes``) free nodes.

        First-fit-by-id unless a placement policy is attached; malleable
        jobs may be started at any width in their declared range.
        """
        k = job.n_nodes if width is None else width
        if not self.fits_width(k):
            raise SchedulingError(
                f"job {job.job_id}: wants {k} nodes, {self._n_free} free"
            )
        chosen = self._select_free(k)
        self._bind(chosen, job.job_id)
        # Reservations must rest on the *kill limit* — the only bound the
        # system enforces.  Planning estimates (job.planned_s) steer
        # backfill eligibility, never reservation safety.
        self.running[job.job_id] = RunningJob(job, chosen, now + job.limit_s)
        self._ends_cache = None
        return chosen

    def _bind(self, node_ids: tuple[int, ...], job_id: int) -> None:
        owner, col = self._owner, self._col
        for nid in node_ids:
            owner[col[nid]] = job_id

    def _select_free(self, k: int) -> tuple[int, ...]:
        """``k`` free ids via the placement policy or the first-fit heap."""
        if self.placement is None:
            return self._pop_smallest_free(k)
        chosen = self.placement.select(self.free_ids(), k)
        if chosen is None or len(chosen) != k:
            raise SchedulingError(f"placement returned {chosen!r} for k={k}")
        # Heap entries go stale; pops skip ids whose column left FREE.
        state, col = self._state, self._col
        for nid in chosen:
            c = col[nid]
            if state[c] == _FREE:
                state[c] = _BUSY
                self._n_free -= 1
        return chosen

    def _pop_smallest_free(self, k: int) -> tuple[int, ...]:
        """The k smallest free ids, claimed off the state column."""
        heap = self._free_heap
        state, col = self._state, self._col
        chosen: list[int] = []
        while len(chosen) < k:
            nid = heapq.heappop(heap)
            c = col[nid]
            if state[c] == _FREE:
                state[c] = _BUSY
                chosen.append(nid)
        self._n_free -= k
        if len(heap) > 4 * self.n_total:
            self._rebuild_heap()
        return tuple(chosen)

    def _rebuild_heap(self) -> None:
        # ``_ids`` ascends, so the filtered list is sorted — a valid heap.
        state = self._state
        self._free_heap = [nid for col, nid in enumerate(self._ids) if state[col] == _FREE]

    def _release_node(self, nid: int) -> None:
        """Unbind one node and free it unless it is out of service."""
        c = self._col[nid]
        self._owner[c] = _NO_OWNER
        if self._state[c] != _DOWN:
            self._state[c] = _FREE
            self._n_free += 1
            heapq.heappush(self._free_heap, nid)

    # -- malleability -----------------------------------------------------
    def grow_allocation(self, job_id: int, k: int) -> tuple[int, ...]:
        """Hand ``k`` more free nodes to a running job; returns them."""
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        if not self.fits_width(k):
            raise SchedulingError(f"job {job_id}: grow wants {k} nodes, {self._n_free} free")
        chosen = self._select_free(k)
        self._bind(chosen, job_id)
        rec.node_ids += chosen
        self._ends_cache = None
        return chosen

    def shrink_allocation(self, job_id: int, node_ids: t.Sequence[int]) -> tuple[int, ...]:
        """Take ``node_ids`` away from a running job; returns them.

        Nodes currently marked down (a failure-driven shrink) are
        unbound from the record but *not* returned to the free set —
        :meth:`mark_up` frees them on repair.
        """
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        removed = tuple(node_ids)
        removed_set = set(removed)
        if not removed_set <= set(rec.node_ids):
            raise SchedulingError(f"job {job_id}: shrink nodes not held")
        rec.node_ids = tuple(n for n in rec.node_ids if n not in removed_set)
        self._ends_cache = None
        for nid in removed:
            self._release_node(nid)
        return removed

    def retime(self, job_id: int, believed_end: float) -> None:
        """Refresh a running job's believed end (post-resize retiming)."""
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        rec.believed_end = believed_end
        self._ends_cache = None

    def release(self, job_id: int) -> tuple[int, ...]:
        """Free the nodes of a finished job; returns them."""
        try:
            rec = self.running.pop(job_id)
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        self._ends_cache = None
        for nid in rec.node_ids:
            self._release_node(nid)
        return rec.node_ids

    # -- failures ---------------------------------------------------------------
    def mark_down(self, node_id: int) -> int | None:
        """Remove a node from service; returns the running job it kills.

        O(1) via the owner column — the job binding survives the state
        flip, so no scan over running allocations is needed.
        """
        try:
            c = self._col[node_id]
        except KeyError:
            raise SchedulingError(f"node {node_id} not in pool") from None
        state = self._state
        if state[c] != _DOWN:
            if state[c] == _FREE:
                # A stale heap entry may linger; pops skip non-FREE columns.
                self._n_free -= 1
            self._n_down += 1
            state[c] = _DOWN
        owner = self._owner[c]
        return owner if owner != _NO_OWNER else None

    def mark_up(self, node_id: int) -> None:
        """Return a repaired node to service (and to the free pool if unbound)."""
        try:
            c = self._col[node_id]
        except KeyError:
            raise SchedulingError(f"node {node_id} not in pool") from None
        if self._state[c] == _DOWN:
            self._n_down -= 1
            if self._owner[c] == _NO_OWNER:
                self._state[c] = _FREE
                self._n_free += 1
                heapq.heappush(self._free_heap, node_id)
            else:
                # The job kept running on its surviving nodes; this one
                # rejoins the allocation it never formally left.
                self._state[c] = _BUSY

    # -- backfill support ---------------------------------------------------
    def believed_ends(self) -> list[tuple[float, int]]:
        """``(believed_end, width)`` of running jobs, soonest first.

        The width is the job's *current* allocation size, so resized
        malleable jobs are walked at their believed width.  Cached
        between mutations: a scheduling pass may consult this several
        times (head reservation, telemetry) without re-sorting.
        Callers must not mutate the returned list.
        """
        if self._ends_cache is None:
            self._ends_cache = sorted(
                (rec.believed_end, len(rec.node_ids)) for rec in self.running.values()
            )
        return self._ends_cache

    def utilization_now(self) -> float:
        """Fraction of non-down nodes currently busy."""
        denom = self.n_total - self._n_down
        return self.n_busy / denom if denom else 0.0
