"""Node allocation: the free pool and running-job bookkeeping.

The pool is the scheduler's view of the machine: which compute nodes are
free, which job holds which nodes, and — crucially for backfill — when
each running job is *believed* to end (its start time plus wall limit).
"""

from __future__ import annotations

import heapq
import typing as t
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.sched.job import Job


@dataclass
class RunningJob:
    """Bookkeeping for one running job."""

    job: Job
    node_ids: tuple[int, ...]
    believed_end: float


class NodePool:
    """Free-set + running-set over a fixed universe of compute nodes.

    Allocation order is *first-fit-by-id*: a k-node job always receives
    the k smallest free node ids.  The free set is mirrored into a lazy
    min-heap so each allocation costs O(k log n) pops instead of the
    O(n log n) full sort the naive ``sorted(free)[:k]`` pays; stale heap
    entries (ids no longer free) are skipped on pop and the heap is
    rebuilt outright if stale entries ever dominate.
    """

    def __init__(self, node_ids: t.Iterable[int], placement: t.Any = None) -> None:
        universe = list(node_ids)
        if len(set(universe)) != len(universe):
            raise SchedulingError("duplicate node ids in pool")
        self._universe: set[int] = set(universe)
        self._free: set[int] = set(universe)
        #: lazy min-heap over the free set (may hold stale/duplicate ids)
        self._free_heap: list[int] = sorted(universe)
        self._down: set[int] = set()
        self.running: dict[int, RunningJob] = {}
        #: memo for :meth:`believed_ends`, dropped whenever ``running`` changes
        self._ends_cache: list[tuple[float, int]] | None = None
        #: optional :class:`~repro.sched.placement.PlacementPolicy`;
        #: ``None`` keeps the native first-fit-by-id heap path
        self.placement = placement

    # -- capacity ----------------------------------------------------------
    @property
    def n_total(self) -> int:
        return len(self._universe)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_down(self) -> int:
        return len(self._down)

    @property
    def n_busy(self) -> int:
        return self.n_total - self.n_free - self.n_down

    def has_node(self, node_id: int) -> bool:
        """Whether the node belongs to this pool's universe."""
        return node_id in self._universe

    def free_ids(self) -> frozenset[int]:
        """Snapshot of the free set (invariant checking / debugging)."""
        return frozenset(self._free)

    def down_ids(self) -> frozenset[int]:
        """Snapshot of the out-of-service set."""
        return frozenset(self._down)

    def fits(self, job: Job) -> bool:
        return job.n_nodes <= self.n_free

    def fits_width(self, width: int) -> bool:
        return width <= self.n_free

    # -- allocation -----------------------------------------------------------
    def allocate(self, job: Job, now: float, width: int | None = None) -> tuple[int, ...]:
        """Allocate ``width`` (default ``job.n_nodes``) free nodes.

        First-fit-by-id unless a placement policy is attached; malleable
        jobs may be started at any width in their declared range.
        """
        k = job.n_nodes if width is None else width
        if not self.fits_width(k):
            raise SchedulingError(
                f"job {job.job_id}: wants {k} nodes, {self.n_free} free"
            )
        chosen = self._select_free(k)
        # Reservations must rest on the *kill limit* — the only bound the
        # system enforces.  Planning estimates (job.planned_s) steer
        # backfill eligibility, never reservation safety.
        self.running[job.job_id] = RunningJob(job, chosen, now + job.limit_s)
        self._ends_cache = None
        return chosen

    def _select_free(self, k: int) -> tuple[int, ...]:
        """``k`` free ids via the placement policy or the first-fit heap."""
        if self.placement is None:
            return self._pop_smallest_free(k)
        chosen = self.placement.select(self._free, k)
        if chosen is None or len(chosen) != k:
            raise SchedulingError(f"placement returned {chosen!r} for k={k}")
        # Heap entries go stale; pops skip ids outside the free set.
        self._free.difference_update(chosen)
        return chosen

    def _pop_smallest_free(self, k: int) -> tuple[int, ...]:
        """The k smallest free ids, removed from the free set."""
        heap = self._free_heap
        free = self._free
        chosen: list[int] = []
        while len(chosen) < k:
            nid = heapq.heappop(heap)
            if nid in free:
                free.remove(nid)
                chosen.append(nid)
        if len(heap) > 4 * self.n_total:
            self._rebuild_heap()
        return tuple(chosen)

    def _rebuild_heap(self) -> None:
        self._free_heap = sorted(self._free)

    # -- malleability -----------------------------------------------------
    def grow_allocation(self, job_id: int, k: int) -> tuple[int, ...]:
        """Hand ``k`` more free nodes to a running job; returns them."""
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        if not self.fits_width(k):
            raise SchedulingError(f"job {job_id}: grow wants {k} nodes, {self.n_free} free")
        chosen = self._select_free(k)
        rec.node_ids += chosen
        self._ends_cache = None
        return chosen

    def shrink_allocation(self, job_id: int, node_ids: t.Sequence[int]) -> tuple[int, ...]:
        """Take ``node_ids`` away from a running job; returns them.

        Nodes currently marked down (a failure-driven shrink) are
        removed from the record but *not* returned to the free set —
        :meth:`mark_up` frees them on repair.
        """
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        removed = tuple(node_ids)
        held = set(rec.node_ids)
        if not set(removed) <= held:
            raise SchedulingError(f"job {job_id}: shrink nodes not held")
        rec.node_ids = tuple(n for n in rec.node_ids if n not in set(removed))
        self._ends_cache = None
        back = tuple(nid for nid in removed if nid not in self._down)
        self._free.update(back)
        for nid in back:
            heapq.heappush(self._free_heap, nid)
        return removed

    def retime(self, job_id: int, believed_end: float) -> None:
        """Refresh a running job's believed end (post-resize retiming)."""
        try:
            rec = self.running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        rec.believed_end = believed_end
        self._ends_cache = None

    def release(self, job_id: int) -> tuple[int, ...]:
        """Free the nodes of a finished job; returns them."""
        try:
            rec = self.running.pop(job_id)
        except KeyError:
            raise SchedulingError(f"job {job_id}: not running") from None
        self._ends_cache = None
        back = tuple(nid for nid in rec.node_ids if nid not in self._down)
        self._free.update(back)
        for nid in back:
            heapq.heappush(self._free_heap, nid)
        return rec.node_ids

    # -- failures ---------------------------------------------------------------
    def mark_down(self, node_id: int) -> int | None:
        """Remove a node from service; returns the running job it kills."""
        if node_id not in self._universe:
            raise SchedulingError(f"node {node_id} not in pool")
        self._down.add(node_id)
        # A stale heap entry may linger; pops skip ids outside the set.
        self._free.discard(node_id)
        for job_id, rec in self.running.items():
            if node_id in rec.node_ids:
                return job_id
        return None

    def mark_up(self, node_id: int) -> None:
        """Return a repaired node to the free pool."""
        if node_id not in self._universe:
            raise SchedulingError(f"node {node_id} not in pool")
        if node_id in self._down:
            self._down.discard(node_id)
            held = any(node_id in rec.node_ids for rec in self.running.values())
            if not held:
                self._free.add(node_id)
                heapq.heappush(self._free_heap, node_id)

    # -- backfill support ---------------------------------------------------
    def believed_ends(self) -> list[tuple[float, int]]:
        """``(believed_end, n_nodes)`` of running jobs, soonest first.

        Cached between mutations: a scheduling pass may consult this
        several times (head reservation, telemetry) without re-sorting.
        Callers must not mutate the returned list.
        """
        if self._ends_cache is None:
            self._ends_cache = sorted(
                (rec.believed_end, len(rec.node_ids)) for rec in self.running.values()
            )
        return self._ends_cache

    def utilization_now(self) -> float:
        """Fraction of non-down nodes currently busy."""
        denom = self.n_total - self.n_down
        return self.n_busy / denom if denom else 0.0
