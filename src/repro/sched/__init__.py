"""Job scheduling: job model, node pool, FCFS and EASY-backfill policies.

The paper evaluates every RM with the backfill scheduling algorithm
(Section VII-D); the quality of backfill decisions is exactly where the
job-runtime estimation framework earns its utilization gains — backfill
can only slot a job into a hole if the *believed* runtimes of the jobs
around the hole are accurate.

Policies are pure decision procedures over a :class:`NodePool` snapshot,
so they are unit-testable without a simulator; the RM engines drive them
from discrete events.
"""

from repro.sched.allocator import NodePool
from repro.sched.backfill import BackfillScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.job import Job, JobState
from repro.sched.metrics import ScheduleMetrics, bounded_slowdown
from repro.sched.queue import JobQueue

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "NodePool",
    "FcfsScheduler",
    "BackfillScheduler",
    "ScheduleMetrics",
    "bounded_slowdown",
]
