"""Job scheduling: job model, node pool, FCFS and EASY-backfill policies.

The paper evaluates every RM with the backfill scheduling algorithm
(Section VII-D); the quality of backfill decisions is exactly where the
job-runtime estimation framework earns its utilization gains — backfill
can only slot a job into a hole if the *believed* runtimes of the jobs
around the hole are accurate.

Policies are pure decision procedures over a :class:`NodePool` snapshot,
so they are unit-testable without a simulator; the RM engines drive them
from discrete events.

Beyond the paper's rigid/first-fit setting, :class:`BackfillScheduler`
optionally speaks a malleability protocol (jobs declare
``min_nodes``/``max_nodes`` and are grown/contracted at runtime) and the
pool accepts a :mod:`~repro.sched.placement` policy for topology/
fault-aware node selection.  Both are strictly opt-in.
"""

from repro.sched.allocator import NodePool
from repro.sched.backfill import BackfillScheduler, ResizeDecision
from repro.sched.fcfs import FcfsScheduler
from repro.sched.job import Job, JobState
from repro.sched.metrics import ScheduleMetrics, bounded_slowdown
from repro.sched.placement import (
    FirstFitPlacement,
    PlacementPolicy,
    TopologyAwarePlacement,
    build_placement,
    placement_score,
)
from repro.sched.queue import JobQueue

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "NodePool",
    "FcfsScheduler",
    "BackfillScheduler",
    "ResizeDecision",
    "ScheduleMetrics",
    "bounded_slowdown",
    "PlacementPolicy",
    "FirstFitPlacement",
    "TopologyAwarePlacement",
    "build_placement",
    "placement_score",
]
