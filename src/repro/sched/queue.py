"""The pending-job queue (FIFO with positional lookups for backfill)."""

from __future__ import annotations

import typing as t

from repro.errors import SchedulingError
from repro.sched.job import Job, JobState


class JobQueue:
    """FIFO queue of pending jobs.

    Backfill needs ordered iteration beyond the head, so this is a list
    with O(1) membership checks rather than a deque.
    """

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._ids: set[int] = set()
        self._demand = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._ids

    def __iter__(self) -> t.Iterator[Job]:
        return iter(self._jobs)

    def submit(self, job: Job) -> None:
        """Append a pending job."""
        if job.state is not JobState.PENDING:
            raise SchedulingError(f"job {job.job_id}: only pending jobs can be queued")
        if job.job_id in self._ids:
            raise SchedulingError(f"job {job.job_id}: already queued")
        self._jobs.append(job)
        self._ids.add(job.job_id)
        self._demand += job.n_nodes

    def head(self) -> Job | None:
        """Oldest pending job, or ``None``."""
        return self._jobs[0] if self._jobs else None

    def remove(self, job: Job) -> None:
        """Remove a job (started or cancelled)."""
        if job.job_id not in self._ids:
            raise SchedulingError(f"job {job.job_id}: not in queue")
        self._jobs.remove(job)
        self._ids.discard(job.job_id)
        self._demand -= job.n_nodes

    @property
    def demand_nodes(self) -> int:
        """Total nodes requested by pending jobs (O(1), kept incrementally).

        The malleable grow pass consults this to decide whether free
        capacity is truly spare: an empty queue means holes can be handed
        to running elastic jobs without delaying anyone.
        """
        return self._demand

    def pending_after_head(self) -> list[Job]:
        """Jobs behind the head, in order (backfill candidates)."""
        return self._jobs[1:]

    def backfill_candidates(self, depth: int) -> list[Job]:
        """The first ``depth`` jobs behind the head, in order.

        A bounded snapshot (the scheduler mutates the queue while
        iterating) that copies O(depth) instead of the O(queue) of
        ``pending_after_head`` — the difference matters when thousands
        of jobs are queued behind a 100-deep backfill window.
        """
        return self._jobs[1 : depth + 1]
