"""The job model shared by schedulers, RMs, and the estimator.

A job carries two runtimes: ``runtime_s`` — the *actual* duration,
hidden from the scheduler until completion — and ``user_estimate_s`` —
what the user asked for (the wall-time limit).  The paper's Fig. 5a
shows users overestimate 80–90 % of the time; ESLURM substitutes a
model estimate (times a slack α) when its cluster-level accuracy is
good enough.  Whatever the scheduler believes is stored in ``limit_s``:
jobs running past their limit are killed (state ``TIMEOUT``), which is
why *under*-estimation is penalised so heavily (Table VIII's UR metric).
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass, field

from repro.errors import SchedulingError


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"  # killed at its wall-time limit
    CANCELLED = "cancelled"
    FAILED = "failed"  # node failure etc.

#: States a job can no longer leave.
TERMINAL_STATES = frozenset({JobState.COMPLETED, JobState.TIMEOUT, JobState.CANCELLED, JobState.FAILED})


@dataclass
class Job:
    """One batch job.

    Args:
        job_id: unique, monotonically increasing id.
        name: job-script name (a key locality feature, Table IV).
        user: submitting user (Table IV).
        n_nodes: nodes requested.
        runtime_s: true runtime (hidden from the scheduler).
        user_estimate_s: user-submitted wall-time request; ``None`` when
            the user declined to give one.
        submit_time: submission timestamp (simulated seconds).
        cores_per_node: cores used on each allocated node.
        min_nodes: smallest width a malleable job accepts (0 resolves to
            ``n_nodes`` — a rigid job).
        max_nodes: largest width a malleable job can exploit (0 resolves
            to ``n_nodes``).
    """

    job_id: int
    name: str
    user: str
    n_nodes: int
    runtime_s: float
    user_estimate_s: float | None
    submit_time: float
    cores_per_node: int = 1
    min_nodes: int = 0
    max_nodes: int = 0

    # -- scheduler-managed fields -------------------------------------
    state: JobState = JobState.PENDING
    limit_s: float = field(default=0.0)  # kill limit (wall limit)
    #: the scheduler's *planning* belief about the runtime — what
    #: backfill reservations trust.  A runtime estimator improves this
    #: without touching the kill limit, so a model underestimate costs
    #: some backfill accuracy but never kills the job.
    planned_s: float = field(default=0.0)
    start_time: float | None = None
    end_time: float | None = None
    allocated_nodes: tuple[int, ...] = ()
    #: model estimate recorded for estimator bookkeeping (pre-slack)
    model_estimate_s: float | None = None
    #: how many grow/shrink transitions this job went through
    resize_count: int = 0
    #: node-seconds integrated across resize segments (malleable jobs
    #: only; rigid jobs keep the closed-form ``n_nodes * duration``)
    alloc_node_seconds: float = 0.0
    #: simulated time the current allocation width took effect
    last_resize_time: float | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise SchedulingError(f"job {self.job_id}: needs at least one node")
        if self.runtime_s <= 0:
            raise SchedulingError(f"job {self.job_id}: runtime must be positive")
        if self.user_estimate_s is not None and self.user_estimate_s <= 0:
            raise SchedulingError(f"job {self.job_id}: user estimate must be positive")
        if self.min_nodes == 0:
            self.min_nodes = self.n_nodes
        if self.max_nodes == 0:
            self.max_nodes = self.n_nodes
        if not 1 <= self.min_nodes <= self.n_nodes <= self.max_nodes:
            raise SchedulingError(
                f"job {self.job_id}: need 1 <= min_nodes <= n_nodes <= max_nodes, "
                f"got {self.min_nodes}/{self.n_nodes}/{self.max_nodes}"
            )
        if self.limit_s == 0.0:
            # Default belief: the user's estimate, else the true runtime
            # (a perfectly-informed fallback used by baseline runs).
            self.limit_s = self.user_estimate_s if self.user_estimate_s else self.runtime_s
        if self.planned_s == 0.0:
            self.planned_s = self.limit_s

    # -- lifecycle ------------------------------------------------------
    def start(self, now: float, nodes: t.Sequence[int]) -> None:
        if self.state is not JobState.PENDING:
            raise SchedulingError(f"job {self.job_id}: start from state {self.state.value}")
        if self.malleable:
            if not self.min_nodes <= len(nodes) <= self.max_nodes:
                raise SchedulingError(
                    f"job {self.job_id}: allocated {len(nodes)} nodes, accepts "
                    f"[{self.min_nodes}, {self.max_nodes}]"
                )
        elif len(nodes) != self.n_nodes:
            raise SchedulingError(
                f"job {self.job_id}: allocated {len(nodes)} nodes, wanted {self.n_nodes}"
            )
        self.state = JobState.RUNNING
        self.start_time = now
        self.allocated_nodes = tuple(nodes)
        if self.malleable:
            self.last_resize_time = now

    # -- malleability ---------------------------------------------------
    @property
    def malleable(self) -> bool:
        """Whether the job accepts widths other than ``n_nodes``."""
        return self.min_nodes < self.max_nodes

    @property
    def width(self) -> int:
        """Current allocation width (``n_nodes`` before start)."""
        return len(self.allocated_nodes) if self.allocated_nodes else self.n_nodes

    def _accumulate_segment(self, now: float) -> None:
        assert self.last_resize_time is not None
        self.alloc_node_seconds += (now - self.last_resize_time) * len(self.allocated_nodes)
        self.last_resize_time = now

    def grow(self, now: float, new_nodes: t.Sequence[int]) -> None:
        """Widen a running malleable job by ``new_nodes``."""
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.job_id}: grow from state {self.state.value}")
        if not self.malleable:
            raise SchedulingError(f"job {self.job_id}: not malleable")
        added = tuple(new_nodes)
        if set(added) & set(self.allocated_nodes):
            raise SchedulingError(f"job {self.job_id}: grow nodes overlap allocation")
        if len(self.allocated_nodes) + len(added) > self.max_nodes:
            raise SchedulingError(
                f"job {self.job_id}: grow past max_nodes={self.max_nodes}"
            )
        self._accumulate_segment(now)
        self.allocated_nodes += added
        self.resize_count += 1

    def shrink(self, now: float, removed_nodes: t.Sequence[int]) -> None:
        """Narrow a running malleable job, releasing ``removed_nodes``."""
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.job_id}: shrink from state {self.state.value}")
        if not self.malleable:
            raise SchedulingError(f"job {self.job_id}: not malleable")
        removed = set(removed_nodes)
        if not removed <= set(self.allocated_nodes):
            raise SchedulingError(f"job {self.job_id}: shrink nodes not in allocation")
        if len(self.allocated_nodes) - len(removed) < self.min_nodes:
            raise SchedulingError(
                f"job {self.job_id}: shrink below min_nodes={self.min_nodes}"
            )
        self._accumulate_segment(now)
        self.allocated_nodes = tuple(n for n in self.allocated_nodes if n not in removed)
        self.resize_count += 1

    def finish(self, now: float, state: JobState = JobState.COMPLETED) -> None:
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.job_id}: finish from state {self.state.value}")
        if state not in TERMINAL_STATES:
            raise SchedulingError(f"job {self.job_id}: {state.value} is not terminal")
        if self.last_resize_time is not None:
            self._accumulate_segment(now)
            self.last_resize_time = None
        self.state = state
        self.end_time = now

    def cancel(self, now: float) -> None:
        if self.state in TERMINAL_STATES:
            raise SchedulingError(f"job {self.job_id}: already terminal")
        if self.last_resize_time is not None:
            self._accumulate_segment(now)
            self.last_resize_time = None
        self.state = JobState.CANCELLED
        self.end_time = now

    # -- derived quantities -----------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def effective_runtime_s(self) -> float:
        """What the job will actually run for, given its wall limit."""
        return min(self.runtime_s, self.limit_s)

    @property
    def will_timeout(self) -> bool:
        """Whether the wall limit truncates the job (an underestimate)."""
        return self.limit_s < self.runtime_s

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise SchedulingError(f"job {self.job_id}: not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        if self.end_time is None:
            raise SchedulingError(f"job {self.job_id}: not finished")
        return self.end_time - self.submit_time

    @property
    def node_seconds(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        if self.alloc_node_seconds > 0.0:
            # Malleable jobs integrate the actual width over time.
            return self.alloc_node_seconds
        return self.n_nodes * (self.end_time - self.start_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.name!r} n={self.n_nodes} {self.state.value}>"
