"""First-come-first-served scheduling."""

from __future__ import annotations

import typing as t

from repro.sched.allocator import NodePool
from repro.sched.job import Job
from repro.sched.queue import JobQueue


class FcfsScheduler:
    """Start queued jobs strictly in arrival order.

    The head blocks the queue until it fits — simple, fair, and the
    baseline that makes backfill's utilization advantage visible.
    """

    name = "fcfs"

    def plan(self, queue: JobQueue, pool: NodePool, now: float) -> list[tuple[Job, tuple[int, ...]]]:
        """Pop and allocate every job that can start right now, in order.

        Returns ``(job, node_ids)`` decisions; jobs are started (their
        nodes held in the pool) but the caller owns the lifecycle calls.
        """
        decisions: list[tuple[Job, tuple[int, ...]]] = []
        while True:
            head = queue.head()
            if head is None or not pool.fits(head):
                break
            nodes = pool.allocate(head, now)
            queue.remove(head)
            decisions.append((head, nodes))
        return decisions
