"""The telemetry session object and the module-global fast path.

Instrumented call sites throughout the library are written against the
module-level helpers::

    from repro.telemetry import facade as telemetry

    tel = telemetry.active()
    if tel is not None:
        tel.count("net.messages")

or, for one-shot sites, the convenience wrappers ``count`` / ``gauge``
/ ``observe`` / ``span``.  When no session is installed (the default —
the "null sink" posture) these reduce to a global load plus an
``is None`` test, so the hot paths of the simulator cost nothing
measurable with telemetry off.  ``install()`` activates a session;
``session()`` scopes one to a ``with`` block and restores whatever was
active before.
"""

from __future__ import annotations

import contextlib
import typing as t

from repro.telemetry.metrics import DEFAULT_BOUNDS, MetricsRegistry
from repro.telemetry.sinks import InMemorySink, TelemetrySink
from repro.telemetry.spans import NOOP_SPAN, Span

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.spans import _NoopSpan


class Telemetry:
    """One telemetry session: a metrics registry plus a span sink."""

    def __init__(self, sink: TelemetrySink | None = None) -> None:
        self.sink: TelemetrySink = sink if sink is not None else InMemorySink()
        self.registry = MetricsRegistry()
        self._span_stack: list[Span] = []

    # -- metrics -----------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        self.registry.counter(name).inc(value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float, bounds: t.Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.registry.histogram(name, bounds).observe(value)

    def observe_many(
        self, name: str, values: t.Any, bounds: t.Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        """Bulk histogram observation (numpy array of values)."""
        self.registry.histogram(name, bounds).observe_many(values)

    # -- tracing -----------------------------------------------------------
    def span(self, name: str) -> Span:
        return Span(self, name)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        return self.registry.snapshot()


#: the active session; ``None`` means telemetry is off (the default)
_active: Telemetry | None = None


def active() -> Telemetry | None:
    """The installed session, or ``None`` when telemetry is off."""
    return _active


def install(sink: TelemetrySink | None = None) -> Telemetry:
    """Install (and return) a fresh global session."""
    global _active
    _active = Telemetry(sink)
    return _active


def uninstall() -> None:
    """Back to the zero-overhead default."""
    global _active
    _active = None


@contextlib.contextmanager
def capture_delta() -> t.Iterator[MetricsRegistry | None]:
    """Scope metric writes into a scratch registry, then fold them back.

    Yields the scratch :class:`MetricsRegistry` (or ``None`` when
    telemetry is off).  On exit the scratch is merged into the session
    that was active on entry, so instrumented code behaves exactly as
    if it had recorded directly — but the caller keeps the delta and
    can re-merge it later to *replay* the metrics of a memoized
    computation without re-running it (broadcast caches).  Spans still
    reach the original sink; only metrics are rerouted.
    """
    global _active
    parent = _active
    if parent is None:
        yield None
        return
    scratch = Telemetry(sink=parent.sink)
    _active = scratch
    try:
        yield scratch.registry
    finally:
        _active = parent
        parent.registry.merge(scratch.registry)


@contextlib.contextmanager
def session(sink: TelemetrySink | None = None) -> t.Iterator[Telemetry]:
    """A scoped session; restores the previously-active one on exit."""
    global _active
    previous = _active
    tel = Telemetry(sink)
    _active = tel
    try:
        yield tel
    finally:
        _active = previous


# -- one-shot convenience wrappers (None-check inlined) --------------------
def count(name: str, value: float = 1.0) -> None:
    tel = _active
    if tel is not None:
        tel.count(name, value)


def gauge(name: str, value: float) -> None:
    tel = _active
    if tel is not None:
        tel.gauge(name, value)


def observe(name: str, value: float) -> None:
    tel = _active
    if tel is not None:
        tel.observe(name, value)


def span(name: str) -> "Span | _NoopSpan":
    tel = _active
    return tel.span(name) if tel is not None else NOOP_SPAN
