"""Where telemetry goes: the sink protocol and its two implementations.

A sink receives finished :class:`~repro.telemetry.spans.SpanRecord`
objects.  Metric state lives on the :class:`~repro.telemetry.facade
.Telemetry` session itself (metrics are aggregates, spans are events).

The *null sink* is the default posture of the whole subsystem: when no
telemetry session is installed, every instrumented call site reduces to
one ``is None`` check (see :mod:`repro.telemetry.facade`), which is how
the tier-1 benchmarks stay unaffected.  :class:`NullSink` exists for
the rarer case of an *installed* session that should still discard
span events while keeping metric aggregation on.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.spans import SpanRecord


class TelemetrySink:
    """Base sink: subclass and override :meth:`record_span`."""

    def record_span(self, record: "SpanRecord") -> None:
        raise NotImplementedError


class NullSink(TelemetrySink):
    """Discards every span event."""

    def record_span(self, record: "SpanRecord") -> None:
        pass


class CallbackSink(TelemetrySink):
    """Forwards each finished span to a callback as it completes.

    The seam streaming progress events is built on: the serve gateway
    (and ``dispatch(..., progress=...)``) install a session whose sink
    turns span completions into newline-delimited progress events.
    ``min_elapsed_s`` bounds the flood — only regions at least that
    long are forwarded (0.0 forwards everything).
    """

    def __init__(
        self,
        callback: t.Callable[["SpanRecord"], None],
        min_elapsed_s: float = 0.0,
    ) -> None:
        self.callback = callback
        self.min_elapsed_s = min_elapsed_s

    def record_span(self, record: "SpanRecord") -> None:
        if record.elapsed_s >= self.min_elapsed_s:
            self.callback(record)


class InMemorySink(TelemetrySink):
    """Keeps every finished span in order (tests, bench reports)."""

    def __init__(self) -> None:
        self.spans: list["SpanRecord"] = []

    def record_span(self, record: "SpanRecord") -> None:
        self.spans.append(record)

    def by_name(self, name: str) -> list["SpanRecord"]:
        return [s for s in self.spans if s.name == name]
