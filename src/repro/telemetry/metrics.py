"""Counters, gauges, and histograms with deterministic snapshots.

Metric values are plain Python state: incrementing a counter is a float
add, observing a histogram is a bisect into fixed buckets.  Everything
a metric stores is derived from simulation-visible quantities, so two
same-seed runs produce identical snapshots — the property the bench
golden files assert.  Host-clock measurements (span wall times) are
kept out of this module by convention: they live under the ``host.``
name prefix and the bench writer drops them (see
:func:`repro.bench.schema.is_deterministic_metric`).
"""

from __future__ import annotations

import typing as t
from bisect import bisect_left

from repro.errors import ConfigurationError

#: default histogram bucket upper bounds: one decade per bucket across
#: the whole range this simulator produces (microsecond latencies up to
#: multi-day occupations, and counts up to 10^7).
DEFAULT_BOUNDS: tuple[float, ...] = tuple(10.0**e for e in range(-7, 8))


class Counter:
    """A monotonically-increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ConfigurationError(f"counter {self.name}: negative increment {value}")
        self.value += value

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one."""
        self.value += other.value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value plus the extremes seen along the way."""

    __slots__ = ("name", "value", "min", "max", "n")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.n = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n += 1

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (its last write wins when newer)."""
        if other.n:
            self.value = other.value
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self.n += other.n

    def snapshot(self) -> dict[str, float]:
        if not self.n:
            return {"last": 0.0, "min": 0.0, "max": 0.0, "n": 0}
        return {"last": self.value, "min": self.min, "max": self.max, "n": self.n}


class Histogram:
    """Fixed-bucket distribution: count, sum, extremes, per-bucket tallies.

    Buckets are cumulative-free: ``buckets[i]`` counts observations
    ``<= bounds[i]`` and greater than ``bounds[i-1]``; one overflow
    bucket catches the rest.  Fixed bounds make merging two histograms
    an element-wise add, which is what lets per-worker registries fold
    into one report.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: t.Sequence[float] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ConfigurationError(f"histogram {name}: bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: t.Any) -> None:
        """Bulk :meth:`observe` over an array of values.

        Buckets/extremes are computed vectorised; the running ``total``
        is still accumulated element-by-element in input order so the
        result is bit-identical to observing the values one at a time —
        same-seed determinism must not depend on which call the
        instrumented site used.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if not values.size:
            return
        idx = np.searchsorted(np.asarray(self.bounds), values, side="left")
        counts = np.bincount(idx, minlength=len(self.buckets))
        buckets = self.buckets
        for i in np.nonzero(counts)[0]:
            buckets[i] += int(counts[i])
        self.count += int(values.size)
        for v in values.tolist():
            self.total += v
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Element-wise fold; bounds must match."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge mismatched bounds"
            )
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict[str, t.Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            # only non-empty buckets, keyed by upper bound: compact and
            # stable under bound-list extensions
            "buckets": {
                ("inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


class MetricsRegistry:
    """Get-or-create store for all three metric kinds."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: t.Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # -- folding -----------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one, name by name."""
        for name, c in other._counters.items():
            self.counter(name).merge(c)
        for name, g in other._gauges.items():
            self.gauge(name).merge(g)
        for name, h in other._histograms.items():
            self.histogram(name, h.bounds).merge(h)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        """Deterministic nested dict: sorted names, plain JSON types."""
        return {
            "counters": {n: self._counters[n].snapshot() for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].snapshot() for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].snapshot() for n in sorted(self._histograms)
            },
        }
