"""Tracing + metrics for every hot path, behind one zero-cost switch.

The measurement spine of the repository: spans (host-clock timers),
counters/gauges/histograms (simulation-deterministic aggregates), and
pluggable sinks.  With no session installed — the default — every
instrumented call site in the simulator, network fabric, RM layers,
scheduler, and estimator reduces to a single ``is None`` check, so
tier-1 performance is untouched.  ``repro bench`` installs a session
per scenario and freezes the deterministic slice of the snapshot into
``BENCH_*.json`` files.

Usage::

    from repro import telemetry

    with telemetry.session() as tel:
        run_simulation(...)
        print(tel.snapshot()["counters"]["sim.events"])
"""

from repro.telemetry.facade import (
    Telemetry,
    active,
    count,
    gauge,
    install,
    observe,
    session,
    span,
    uninstall,
)
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import InMemorySink, NullSink, TelemetrySink
from repro.telemetry.spans import NOOP_SPAN, Span, SpanRecord

__all__ = [
    "DEFAULT_BOUNDS",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "MetricsRegistry",
    "NullSink",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TelemetrySink",
    "active",
    "count",
    "gauge",
    "install",
    "observe",
    "session",
    "span",
    "uninstall",
]
