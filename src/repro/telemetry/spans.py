"""Tracing spans: nested host-clock timers around interesting work.

Spans measure *host* wall time (``time.perf_counter``), so their
numbers are not run-to-run deterministic; every metric a span feeds is
therefore namespaced ``host.`` and excluded from the deterministic
bench files (it is still printed in run summaries, which is where
"how fast is my machine" questions belong).
"""

from __future__ import annotations

import time
import typing as t
from dataclasses import dataclass

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.facade import Telemetry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    parent: str | None
    depth: int
    elapsed_s: float


class Span:
    """Context manager timing one region; re-entrant via fresh instances."""

    __slots__ = ("_tel", "name", "parent", "depth", "_start", "elapsed_s")

    def __init__(self, tel: "Telemetry", name: str) -> None:
        self._tel = tel
        self.name = name
        self.parent: str | None = None
        self.depth = 0
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Span":
        stack = self._tel._span_stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        stack = self._tel._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misnested exit, keep the stack sane
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        record = SpanRecord(self.name, self.parent, self.depth, self.elapsed_s)
        self._tel.sink.record_span(record)
        self._tel.registry.histogram(f"host.span.{self.name}_s").observe(self.elapsed_s)


class _NoopSpan:
    """The shared do-nothing span handed out when telemetry is off.

    A singleton: the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: t.Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()
