"""Experiment drivers: one module per paper figure/table.

Cluster construction and RM runs live in :mod:`repro.api` (re-exported
here for convenience); :mod:`repro.experiments.reporting` renders ASCII
tables and series the way the paper reports them.  The benchmarks in
``benchmarks/`` are thin wrappers around these drivers.
"""

from repro.api import build_rm, quick_cluster, run_rm_day
from repro.experiments.reporting import render_series, render_table

__all__ = [
    "quick_cluster",
    "build_rm",
    "run_rm_day",
    "render_table",
    "render_series",
]
