"""Experiment harness: cluster construction, RM runs, figure drivers.

:mod:`repro.experiments.harness` builds clusters and runs RM
simulations with one call; :mod:`repro.experiments.figures` contains a
driver per paper figure/table (the benchmarks are thin wrappers around
them); :mod:`repro.experiments.reporting` renders ASCII tables and
series the way the paper reports them.
"""

from repro.experiments.harness import build_rm, quick_cluster, run_rm_day
from repro.experiments.reporting import render_series, render_table

__all__ = [
    "quick_cluster",
    "build_rm",
    "run_rm_day",
    "render_table",
    "render_series",
]
