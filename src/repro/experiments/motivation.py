"""Section II-B driver: why centralized Slurm breaks at 20K+ nodes.

The paper's production observations of Slurm on NG-Tianhe: slurmctld
RAM climbing to 70 GB within a week, a fully-loaded master CPU,
hundreds of thousands of TCP connections, >27 s mean response to user
requests with ~38 % of requests failing to connect.  This driver runs
the centralized engine at that scale and extracts the same indicators,
then repeats with ESLURM for the contrast the paper deploys.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.api import build_rm
from repro.experiments.reporting import render_table
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


@dataclass
class MotivationResult:
    rm: str
    vmem_gb_end: float
    vmem_gb_per_week: float
    cpu_util_mean: float
    peak_sockets: float
    response_time_s: float
    connect_failure_rate: float


def run_motivation(
    rm_name: str = "slurm",
    n_nodes: int = 20_480,
    days: float = 2.0,
    n_jobs_per_day: int = 2500,
    seed: int = 1,
) -> MotivationResult:
    """Run one RM at NG-Tianhe scale under heavy load."""
    sim = Simulator(seed=seed)
    cluster = ClusterSpec.ng_tianhe(n_nodes=n_nodes, n_satellites=4).build(sim)
    # A struggling production master also fields heavy user traffic.
    rm = build_rm(rm_name, cluster, user_rpc_rate_per_s=2.0, sample_interval_s=300.0)
    horizon = days * DAY
    workload = WorkloadConfig.ng_tianhe(
        max_nodes=max(n_nodes // 4, 1), jobs_per_day=n_jobs_per_day
    )
    jobs = generate_trace(workload, int(n_jobs_per_day * days), seed=seed, start_time=1.0)
    jobs = [j for j in jobs if j.submit_time < horizon * 0.95]
    rm.run_trace(jobs, until=horizon)
    acct = rm.master_acct
    vmem_end = acct.vmem_mb() / 1024.0
    growth_per_week = rm.profile.vmem_growth_mb_per_day * 7 / 1024.0
    util = acct.cpu_util.mean()
    # User-visible response time: the M/M/1 service blow-up plus the
    # expected connect-retry penalty (a failed connect costs the client
    # a ~45 s timeout before it tries again).
    p_fail = rm.submit_fail_prob
    retry_penalty = p_fail / max(1.0 - p_fail, 1e-6) * 45.0
    response = rm.estimated_response_time() + retry_penalty
    return MotivationResult(
        rm=rm_name,
        vmem_gb_end=vmem_end,
        vmem_gb_per_week=growth_per_week,
        cpu_util_mean=util,
        peak_sockets=acct.sockets.peak(),
        response_time_s=response,
        connect_failure_rate=p_fail,
    )


def render_motivation(results: t.Sequence[MotivationResult]) -> str:
    return render_table(
        ["RM", "vmem_GB", "vmem_growth_GB/wk", "cpu_util", "peak_sockets", "resp_s", "conn_fail"],
        [
            [
                r.rm,
                r.vmem_gb_end,
                r.vmem_gb_per_week,
                r.cpu_util_mean,
                r.peak_sockets,
                r.response_time_s,
                r.connect_failure_rate,
            ]
            for r in results
        ],
        title="Sec. II-B: centralized RM at 20K+ nodes "
        "(paper: 70GB RAM/week, >27s responses, 38% connect failures)",
        float_fmt="{:.2f}",
    )
