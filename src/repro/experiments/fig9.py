"""Fig. 9 driver: Slurm vs ESLURM on full-scale Tianhe-2A (16K nodes).

(a)-(c): master CPU / memory / sockets over 24 h for both RMs;
(d)-(f): the two ESLURM satellites' usage, demonstrating load balance.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.api import build_rm
from repro.experiments.reporting import render_table
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


@dataclass
class Fig9Result:
    master: dict[str, dict[str, float]] = field(default_factory=dict)
    satellites: list[dict[str, float]] = field(default_factory=list)
    #: satellite load-balance indicator: max/min CPU-time ratio
    satellite_balance: float = 1.0


def run_fig9(
    n_nodes: int = 16_384,
    horizon_s: float = DAY,
    n_jobs: int = 1500,
    seed: int = 1,
) -> Fig9Result:
    """One 24 h run each for Slurm and ESLURM (two satellites)."""
    result = Fig9Result()
    workload = WorkloadConfig.tianhe2a(
        max_nodes=max(n_nodes // 4, 1), jobs_per_day=n_jobs / (horizon_s / DAY)
    )
    for rm_name in ("slurm", "eslurm"):
        sim = Simulator(seed=seed)
        cluster = ClusterSpec.tianhe2a(n_nodes=n_nodes, n_satellites=2).build(sim)
        rm = build_rm(rm_name, cluster)
        jobs = generate_trace(workload, n_jobs, seed=seed, start_time=1.0)
        jobs = [j for j in jobs if j.submit_time < horizon_s * 0.9]
        rm.run_trace(jobs, until=horizon_s)
        rep = rm.report(horizon_s=horizon_s)
        result.master[rm_name] = rep.master
        if rm_name == "eslurm":
            result.satellites = rep.satellites
            cpu = [s["cpu_time_min"] for s in rep.satellites]
            if min(cpu) > 0:
                result.satellite_balance = max(cpu) / min(cpu)
    return result


def render_fig9(r: Fig9Result) -> str:
    blocks = [
        render_table(
            ["RM", "cpu_min", "vmem_MB", "rss_MB", "sock_mean", "sock_peak"],
            [
                [rm, m["cpu_time_min"], m["vmem_mb"], m["rss_mb"], m["sockets_mean"], m["sockets_peak"]]
                for rm, m in r.master.items()
            ],
            title="Fig 9a-c: master usage, 16K nodes, 24h",
        )
    ]
    if r.satellites:
        blocks.append(
            render_table(
                ["sat", "cpu_min", "vmem_MB", "rss_MB", "sock_mean", "sock_peak"],
                [
                    [i, s["cpu_time_min"], s["vmem_mb"], s["rss_mb"], s["sockets_mean"], s["sockets_peak"]]
                    for i, s in enumerate(r.satellites)
                ],
                title="Fig 9d-f: the two satellites (load balance "
                f"max/min CPU = {r.satellite_balance:.2f})",
            )
        )
    slurm, eslurm = r.master.get("slurm"), r.master.get("eslurm")
    if slurm and eslurm and slurm["cpu_time_min"] > 0:
        blocks.append(
            f"  ESLURM master uses {eslurm['cpu_time_min'] / slurm['cpu_time_min']:.0%} of "
            f"Slurm's CPU time (paper: <40%), "
            f"{1 - eslurm['vmem_mb'] / slurm['vmem_mb']:.0%} less vmem (paper: >80%)"
        )
    return "\n".join(blocks)
