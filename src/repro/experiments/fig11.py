"""Fig. 11 driver.

(a) heartbeat broadcast time vs satellite-node count on full-scale
NG-Tianhe — the paper finds 20 satellites optimal for 20K+ nodes,
i.e. one satellite per ~5K slaves;

(b) the runtime-estimation model comparison: user estimates, SVM,
RandomForest, Last-2, IRPA, TRIP, PREP, and ESLURM's framework, scored
by AEA and underestimation rate on an NG-Tianhe-profile trace.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.estimate import (
    EslurmEstimator,
    EstimatorConfig,
    IrpaEstimator,
    Last2Estimator,
    PrepEstimator,
    TripEstimator,
    UserEstimator,
    evaluate_estimator,
    random_forest_estimator,
    svm_estimator,
)
from repro.estimate.metrics import EstimatorReport
from repro.experiments.reporting import render_series, render_table
from repro.fptree.constructor import FPTreeBroadcast
from repro.fptree.predictor import MonitorAlertPredictor
from repro.network.fabric import NetworkFabric
from repro.network.message import DEFAULT_SIZES, MessageKind
from repro.rm.eslurm import SATELLITE_PROFILE
from repro.rm.satellite import SatellitePool
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

SATELLITE_COUNTS = (5, 10, 20, 30, 40, 50)


def run_fig11a(
    n_nodes: int = 20_480,
    counts: t.Sequence[int] = SATELLITE_COUNTS,
    fail_frac: float = 0.01,
    seed: int = 1,
    n_draws: int = 8,
) -> dict[int, float]:
    """Mean heartbeat broadcast time per satellite count.

    Few satellites leave each relay tree too big; many satellites make
    the master's serial dispatch the bottleneck — the optimum sits in
    between (paper: 20 for 20K+, one per ~5K nodes).
    """
    size = DEFAULT_SIZES[MessageKind.HEARTBEAT]
    out: dict[int, float] = {}
    for n_sats in counts:
        total = 0.0
        for draw in range(n_draws):
            sim = Simulator(seed=seed + draw)
            cluster = ClusterSpec.ng_tianhe(n_nodes=n_nodes, n_satellites=n_sats).build(sim)
            failed = cluster.fail_fraction(fail_frac)
            rng = sim.rng.stream("fig11a.alerts")
            for nid in failed:
                if rng.random() < 0.85:
                    cluster.monitor.raise_alert(nid)
            fabric = NetworkFabric(sim, cluster)
            pool = SatellitePool(sim, cluster, SATELLITE_PROFILE)
            pool.heartbeat_all()
            targets = cluster.compute_ids()
            parts = pool.split(targets, n_sats)
            predictor = MonitorAlertPredictor(cluster)
            makespans = []
            for daemon, part in zip(pool.daemons, parts):
                engine = FPTreeBroadcast(predictor, width=32)
                makespans.append(
                    engine.simulate(daemon.node.node_id, part, size, fabric).makespan_s
                )
            # Master dispatches satellite tasks serially; each task also
            # carries its sub-list (the dominant serial term at high N).
            dispatch = sum(0.004 + len(p) * 2e-6 for p in parts)
            total += dispatch + max(makespans)
        out[n_sats] = total / n_draws
    return out


@dataclass
class Fig11bResult:
    reports: dict[str, EstimatorReport] = field(default_factory=dict)

    def best_by_aea(self) -> str:
        return max(self.reports, key=lambda k: self.reports[k].aea)


def run_fig11b(
    n_jobs: int = 3000, seed: int = 2, warmup: int = 200, fast: bool = False
) -> Fig11bResult:
    """Score every estimator on the same NG-Tianhe-profile trace.

    ``fast`` skips the two slowest baselines (RF and IRPA refits) for
    quick benchmark runs.
    """
    jobs = generate_trace(
        WorkloadConfig.ng_tianhe(jobs_per_day=1000.0), n_jobs, seed=seed
    )
    estimators: list[t.Any] = [
        UserEstimator(),
        Last2Estimator(),
        svm_estimator(),
        TripEstimator(),
        PrepEstimator(),
        # K tracks the number of distinct applications in the window;
        # the paper's elbow found 15 on its (more repetitive) trace.
        EslurmEstimator(
            EstimatorConfig(aea_gate=0.0, k_clusters=150, q_sigma=1.0),
            rng=np.random.default_rng(seed),
        ),
    ]
    if not fast:
        estimators.insert(3, random_forest_estimator())
        estimators.insert(4, IrpaEstimator())
    result = Fig11bResult()
    for est in estimators:
        rep = evaluate_estimator(est, jobs, warmup=warmup)
        result.reports[rep.name] = rep
    return result


def render_fig11(a: dict[int, float], b: Fig11bResult) -> str:
    blocks = [
        render_series(
            "n_satellites",
            list(a.keys()),
            {"heartbeat_broadcast_s": list(a.values())},
            title="Fig 11a: broadcast time vs satellite count (20K+ nodes)",
        ),
        f"  optimum: {min(a, key=a.get)} satellites (paper: 20, i.e. 1 per ~5K nodes)",
        render_table(
            ["model", "AEA", "UR", "MAE_s"],
            [
                [name, r.aea, r.underestimate_rate, r.mean_abs_error_s]
                for name, r in b.reports.items()
            ],
            title="Fig 11b: runtime estimation models (paper: ESLURM 84% AEA, ~10% UR)",
            float_fmt="{:.3f}",
        ),
    ]
    return "\n".join(blocks)
