"""Fig. 8 driver: broadcast-time comparisons on 4K nodes.

(a) job-loading (message 1) and job-termination (message 2) broadcast
times for Slurm's master-rooted tree vs ESLURM without FP-Tree (the
satellite contribution) vs full ESLURM (satellites + FP-Tree), under a
realistic ~2 % failed-node population with monitoring alerts;

(b) broadcast time vs failure ratio for ring / star / shared-memory /
plain tree / FP-Tree.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.spec import Cluster, ClusterSpec
from repro.experiments.reporting import render_series, render_table
from repro.fptree.constructor import FPTreeBroadcast
from repro.fptree.predictor import MonitorAlertPredictor, NullPredictor
from repro.network.fabric import NetworkFabric
from repro.network.message import DEFAULT_SIZES, MessageKind
from repro.network.structures import (
    RingBroadcast,
    SharedMemoryBroadcast,
    StarBroadcast,
    TreeBroadcast,
)
from repro.rm.satellite import SatellitePool
from repro.rm.eslurm import SATELLITE_PROFILE
from repro.simkit.core import Simulator

FAILURE_RATIOS = (0.0, 0.05, 0.1, 0.2, 0.3)
#: serial master CPU per launch target (credential building); the
#: satellite layer's latency win comes from parallelising this.
PER_TARGET_ROOT_S = 4e-4


def _cluster_with_alerts(
    n_nodes: int, n_satellites: int, fail_frac: float, seed: int, recall: float = 0.85
) -> Cluster:
    """Cluster with ``fail_frac`` nodes down and matching alerts raised
    (recall-limited), mimicking the monitoring subsystem's view."""
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n_nodes, n_satellites=n_satellites).build(sim)
    failed = cluster.fail_fraction(fail_frac)
    rng = sim.rng.stream("fig8.alerts")
    for nid in failed:
        if rng.random() < recall:
            cluster.monitor.raise_alert(nid)
    return cluster


@dataclass
class Fig8aResult:
    """Broadcast times per scheme per message kind (seconds)."""

    times: dict[str, dict[str, float]] = field(default_factory=dict)

    def reduction_vs(self, base: str, scheme: str, message: str) -> float:
        """Fractional time reduction of ``scheme`` vs ``base``."""
        b = self.times[base][message]
        return 1.0 - self.times[scheme][message] / b if b else 0.0


def _satellite_broadcast(
    cluster: Cluster, engine_factory: t.Callable[[], t.Any], size: int
) -> float:
    """Makespan of a satellite-split broadcast (max over sub-trees)."""
    fabric = NetworkFabric(cluster.sim, cluster)
    pool = SatellitePool(cluster.sim, cluster, SATELLITE_PROFILE)
    pool.heartbeat_all()
    targets = cluster.compute_ids()
    n = max(pool.compute_n(len(targets)), 1)
    parts = pool.split(targets, n)
    makespans = []
    for daemon, part in zip(pool.daemons * ((n // len(pool.daemons)) + 1), parts):
        engine = engine_factory()
        res = engine.simulate(daemon.node.node_id, part, size, fabric)
        makespans.append(res.makespan_s)
    return 0.001 * len(parts) + max(makespans)


def run_fig8a(
    n_nodes: int = 4096, fail_frac: float = 0.01, seed: int = 1, n_draws: int = 12
) -> Fig8aResult:
    """Message 1 (job load) and 2 (job termination) broadcast times.

    The paper reports *averages* over many production broadcasts; we
    average over ``n_draws`` independent failure/alert populations.
    """
    result = Fig8aResult()
    messages = {
        "job_load": DEFAULT_SIZES[MessageKind.JOB_LAUNCH],
        "job_term": DEFAULT_SIZES[MessageKind.JOB_TERMINATE],
    }
    sums: dict[str, dict[str, float]] = {
        s: {m: 0.0 for m in messages} for s in ("slurm", "eslurm-nofp", "eslurm")
    }
    for draw in range(n_draws):
        # Failure ratio itself fluctuates run to run in production.
        frac = fail_frac * (0.25 + 1.5 * (draw / max(n_draws - 1, 1)))
        for scheme in sums:
            for message, size in messages.items():
                cluster = _cluster_with_alerts(n_nodes, 2, frac, seed + draw)
                if scheme == "slurm":
                    fabric = NetworkFabric(cluster.sim, cluster)
                    res = TreeBroadcast(
                        width=32, per_target_root_s=PER_TARGET_ROOT_S
                    ).simulate(cluster.master.node_id, cluster.compute_ids(), size, fabric)
                    took = res.makespan_s
                elif scheme == "eslurm-nofp":
                    took = _satellite_broadcast(
                        cluster,
                        lambda: TreeBroadcast(width=32, per_target_root_s=PER_TARGET_ROOT_S),
                        size,
                    )
                else:
                    predictor = MonitorAlertPredictor(cluster)
                    took = _satellite_broadcast(
                        cluster,
                        lambda: FPTreeBroadcast(
                            predictor, width=32, per_target_root_s=PER_TARGET_ROOT_S
                        ),
                        size,
                    )
                sums[scheme][message] += took
    result.times = {
        scheme: {m: total / n_draws for m, total in per.items()}
        for scheme, per in sums.items()
    }
    return result


def run_fig8b(
    n_nodes: int = 4096,
    ratios: t.Sequence[float] = FAILURE_RATIOS,
    seed: int = 1,
) -> dict[str, list[float]]:
    """Broadcast time vs failure ratio for the five structures.

    The FP-Tree predictor sees monitoring alerts for the failed nodes
    (recall-limited), exactly as in production.
    """
    size = DEFAULT_SIZES[MessageKind.JOB_LAUNCH]
    curves: dict[str, list[float]] = {
        "ring": [],
        "star": [],
        "shared-memory": [],
        "tree": [],
        "fp-tree": [],
    }
    for frac in ratios:
        cluster = _cluster_with_alerts(n_nodes, 2, frac, seed)
        fabric = NetworkFabric(cluster.sim, cluster)
        root = cluster.master.node_id
        targets = cluster.compute_ids()
        engines = {
            "ring": RingBroadcast(),
            "star": StarBroadcast(concurrency=64),
            "shared-memory": SharedMemoryBroadcast(),
            "tree": TreeBroadcast(width=32),
            "fp-tree": FPTreeBroadcast(MonitorAlertPredictor(cluster), width=32),
        }
        for name, engine in engines.items():
            curves[name].append(engine.simulate(root, targets, size, fabric).makespan_s)
    return curves


def render_fig8(a: Fig8aResult, b: dict[str, list[float]], ratios=FAILURE_RATIOS) -> str:
    rows = [
        [scheme, times["job_load"], times["job_term"]]
        for scheme, times in a.times.items()
    ]
    blocks = [
        render_table(
            ["scheme", "msg1 job_load (s)", "msg2 job_term (s)"],
            rows,
            title="Fig 8a: average broadcast time (4K nodes, ~2% failed)",
            float_fmt="{:.3f}",
        ),
        f"  eslurm reduces msg1 by {a.reduction_vs('slurm', 'eslurm', 'job_load'):.1%}, "
        f"msg2 by {a.reduction_vs('slurm', 'eslurm', 'job_term'):.1%} "
        f"(paper: 63.7% / 73.6%)",
        f"  FP-Tree alone reduces msg1 by "
        f"{a.reduction_vs('eslurm-nofp', 'eslurm', 'job_load'):.1%}, msg2 by "
        f"{a.reduction_vs('eslurm-nofp', 'eslurm', 'job_term'):.1%} "
        f"(paper: 36.3% / 54.9%)",
        render_series(
            "failure_ratio",
            list(ratios),
            b,
            title="Fig 8b: broadcast time (s) vs failure ratio",
        ),
    ]
    return "\n".join(blocks)
