"""Fig. 5 driver: workload-trace statistics.

(a) CDF of the user runtime-estimation accuracy P = t_s / t_r;
(b) job-correlation ratio vs submission interval;
(c) job-correlation ratio vs job-ID gap —
for both trace profiles (Tianhe-2A and NG-Tianhe).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import render_series
from repro.workload.analysis import (
    estimate_accuracy_values,
    job_correlation_by_id_gap,
    job_correlation_by_interval,
)
from repro.workload.synthetic import WorkloadConfig, generate_trace

#: buckets matching the paper's x-axes
INTERVAL_HOURS = (0.5, 2.0, 6.0, 12.0, 24.0, 30.0, 40.0, 60.0)
ID_GAPS = (1, 10, 50, 100, 400, 700, 1500)
P_GRID = (0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0)


@dataclass
class Fig5Result:
    """Per-system curves for the three subfigures."""

    system: str
    p_cdf: dict[float, float]  # P threshold -> CDF value
    overestimate_frac: float
    interval_hours: tuple[float, ...] = INTERVAL_HOURS
    interval_corr: list[float] = field(default_factory=list)
    id_gaps: tuple[int, ...] = ID_GAPS
    id_gap_corr: list[float] = field(default_factory=list)


def run_fig5(n_jobs: int = 12_000, seed: int = 1) -> dict[str, Fig5Result]:
    """Regenerate Fig. 5's three panels for both systems."""
    out: dict[str, Fig5Result] = {}
    configs = {
        "tianhe2a": WorkloadConfig.tianhe2a(),
        "ng-tianhe": WorkloadConfig.ng_tianhe(jobs_per_day=1000.0),
    }
    for system, cfg in configs.items():
        jobs = generate_trace(cfg, n_jobs, seed=seed)
        P = estimate_accuracy_values(jobs)
        cdf = {thr: float((P <= thr).mean()) for thr in P_GRID}
        out[system] = Fig5Result(
            system=system,
            p_cdf=cdf,
            overestimate_frac=float((P > 1.0).mean()),
            interval_corr=job_correlation_by_interval(jobs, INTERVAL_HOURS, seed=seed),
            id_gap_corr=job_correlation_by_id_gap(jobs, ID_GAPS, seed=seed),
        )
    return out


def render_fig5(results: dict[str, Fig5Result]) -> str:
    """Paper-style text rendering of all three panels."""
    blocks = []
    for system, r in results.items():
        blocks.append(f"== {system} ==  (overestimated: {r.overestimate_frac:.1%})")
        blocks.append(
            render_series(
                "P<=",
                list(r.p_cdf.keys()),
                {"CDF": list(r.p_cdf.values())},
                title="Fig 5a: estimate-accuracy CDF",
            )
        )
        blocks.append(
            render_series(
                "interval_h",
                list(r.interval_hours),
                {"corr_ratio": r.interval_corr},
                title="Fig 5b: correlation vs submission interval",
            )
        )
        blocks.append(
            render_series(
                "id_gap",
                list(r.id_gaps),
                {"corr_ratio": r.id_gap_corr},
                title="Fig 5c: correlation vs job-ID gap",
            )
        )
    return "\n".join(blocks)
