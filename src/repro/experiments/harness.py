"""Deprecated location of the simulation harness — use :mod:`repro.api`.

Every helper that lived here (``quick_cluster``, ``build_rm``,
``run_rm_day``, ``DAY``) moved to :mod:`repro.api` unchanged.  This shim
keeps old imports working while announcing the move; it will be removed
once nothing in the wild imports it.
"""

from __future__ import annotations

import typing as t
import warnings

#: names this module used to define, now served from repro.api
_MOVED = ("DAY", "quick_cluster", "build_rm", "run_rm_day")


def __getattr__(name: str) -> t.Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.experiments.harness.{name} is deprecated; "
            f"use repro.api.{name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.api

        return getattr(repro.api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(_MOVED)
