"""One-call construction and execution of RM simulations."""

from __future__ import annotations

import typing as t

from repro.cluster.failures import FailureModel
from repro.cluster.spec import Cluster, ClusterSpec
from repro.errors import ConfigurationError
from repro.rm.base import ResourceManager, RmReport
from repro.rm.centralized import CentralizedRM
from repro.rm.eslurm import EslurmRM
from repro.rm.profiles import RM_PROFILES
from repro.sched.job import Job
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


def quick_cluster(
    n_nodes: int = 1024,
    n_satellites: int = 2,
    seed: int = 0,
    failures: bool = False,
) -> Cluster:
    """A ready-to-use cluster on a fresh simulator.

    Args:
        n_nodes: compute nodes.
        n_satellites: satellites provisioned (ESLURM uses them).
        seed: master seed for all randomness.
        failures: enable the stochastic failure injector.
    """
    sim = Simulator(seed=seed)
    model = FailureModel() if failures else FailureModel.disabled()
    spec = ClusterSpec(n_nodes=n_nodes, n_satellites=n_satellites, failure_model=model)
    cluster = spec.build(sim)
    if failures:
        cluster.failures.start()
        cluster.monitor.start()
    return cluster


def build_rm(
    rm_name: str,
    cluster: Cluster,
    estimator: t.Any = None,
    **kwargs: t.Any,
) -> ResourceManager:
    """Construct any of the six RMs on an existing cluster."""
    if rm_name not in RM_PROFILES:
        raise ConfigurationError(f"unknown RM {rm_name!r}; choose from {sorted(RM_PROFILES)}")
    if rm_name == "eslurm":
        return EslurmRM(cluster.sim, cluster, estimator=estimator, **kwargs)
    return CentralizedRM.from_name(rm_name, cluster.sim, cluster, estimator=estimator, **kwargs)


def run_rm_day(
    rm: str | type[ResourceManager],
    cluster: Cluster,
    n_jobs: int = 500,
    seed: int = 0,
    horizon_s: float = DAY,
    workload: WorkloadConfig | None = None,
    estimator: t.Any = None,
    **rm_kwargs: t.Any,
) -> RmReport:
    """Run one RM for a day of synthetic workload and report.

    Args:
        rm: RM name (``"slurm"`` ...) or an RM class.
        cluster: from :func:`quick_cluster` (owns the simulator).
        n_jobs: jobs submitted across the horizon.
        seed: workload seed.
        horizon_s: how long to simulate.
        workload: trace generator config; defaults to a config whose
            job sizes fit the cluster.
        estimator: runtime estimator handed to the RM.
    """
    cfg = workload or WorkloadConfig(
        max_nodes=max(cluster.n_nodes // 4, 1),
        jobs_per_day=n_jobs / (horizon_s / DAY),
    )
    jobs = generate_trace(cfg, n_jobs, seed=seed, start_time=cluster.sim.now + 1.0)
    # Clip any stragglers the generator placed beyond the horizon.
    jobs = [j for j in jobs if j.submit_time < cluster.sim.now + horizon_s * 0.95]
    if isinstance(rm, str):
        manager = build_rm(rm, cluster, estimator=estimator, **rm_kwargs)
    else:
        manager = rm(cluster.sim, cluster, estimator=estimator, **rm_kwargs) if rm is EslurmRM else rm(
            cluster.sim, cluster, RM_PROFILES["slurm"], estimator=estimator, **rm_kwargs
        )
    manager.run_trace(jobs, until=cluster.sim.now + horizon_s)
    return manager.report(horizon_s=horizon_s)
