"""Table V / VI / VIII drivers.

* **Table V** — master resource usage on full-scale NG-Tianhe with
  10..50 satellites (SE1..SE5);
* **Table VI** — the satellites' averaged operational data for the same
  runs (tasks received, nodes per task, memory, sockets);
* **Table VIII** — the slack variable α swept over 1.00..1.08, scored
  by AEA and underestimation rate.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.estimate import EslurmEstimator, EstimatorConfig, evaluate_estimator
from repro.api import build_rm
from repro.experiments.reporting import render_table
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0
SATELLITE_SETUPS = (10, 20, 30, 40, 50)  # SE1..SE5
ALPHAS = (1.00, 1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07, 1.08)


@dataclass
class TableVViResult:
    #: n_satellites -> master summary
    master: dict[int, dict[str, float]] = field(default_factory=dict)
    #: n_satellites -> averaged satellite summary
    satellites: dict[int, dict[str, float]] = field(default_factory=dict)


def run_table5_table6(
    n_nodes: int = 20_480,
    setups: t.Sequence[int] = SATELLITE_SETUPS,
    horizon_s: float = DAY,
    n_jobs: int = 800,
    seed: int = 1,
) -> TableVViResult:
    """One run per satellite-count setup (paper: ten days each; scale
    the per-day numbers up for a direct comparison)."""
    result = TableVViResult()
    for n_sats in setups:
        sim = Simulator(seed=seed)
        cluster = ClusterSpec.ng_tianhe(n_nodes=n_nodes, n_satellites=n_sats).build(sim)
        rm = build_rm("eslurm", cluster, sample_interval_s=300.0)
        workload = WorkloadConfig.ng_tianhe(
            max_nodes=max(n_nodes // 4, 1), jobs_per_day=n_jobs / (horizon_s / DAY)
        )
        jobs = generate_trace(workload, n_jobs, seed=seed, start_time=1.0)
        jobs = [j for j in jobs if j.submit_time < horizon_s * 0.9]
        rm.run_trace(jobs, until=horizon_s)
        rep = rm.report(horizon_s=horizon_s)
        result.master[n_sats] = rep.master
        sats = rep.satellites
        result.satellites[n_sats] = {
            "tasks_received": float(np.mean([s["tasks_received"] for s in sats])),
            "avg_nodes_per_task": float(np.mean([s["avg_nodes_per_task"] for s in sats])),
            "vmem_mb": float(np.mean([s["vmem_mb"] for s in sats])),
            "rss_mb": float(np.mean([s["rss_mb"] for s in sats])),
            "sockets_mean": float(np.mean([s["sockets_mean"] for s in sats])),
        }
    return result


def render_table5_table6(r: TableVViResult) -> str:
    labels = [f"SE{i+1} ({n} sats)" for i, n in enumerate(sorted(r.master))]
    blocks = [
        render_table(
            ["", *labels],
            [
                ["CPU time (min)", *(r.master[n]["cpu_time_min"] for n in sorted(r.master))],
                ["vmem (MB)", *(r.master[n]["vmem_mb"] for n in sorted(r.master))],
                ["rss (MB)", *(r.master[n]["rss_mb"] for n in sorted(r.master))],
                ["avg sockets", *(r.master[n]["sockets_mean"] for n in sorted(r.master))],
            ],
            title="Table V: master resource usage vs satellite count",
        ),
        render_table(
            ["", *labels],
            [
                ["tasks received", *(r.satellites[n]["tasks_received"] for n in sorted(r.satellites))],
                ["avg nodes/task", *(r.satellites[n]["avg_nodes_per_task"] for n in sorted(r.satellites))],
                ["vmem (MB)", *(r.satellites[n]["vmem_mb"] for n in sorted(r.satellites))],
                ["rss (MB)", *(r.satellites[n]["rss_mb"] for n in sorted(r.satellites))],
                ["avg sockets", *(r.satellites[n]["sockets_mean"] for n in sorted(r.satellites))],
            ],
            title="Table VI: average satellite operational data",
        ),
    ]
    return "\n".join(blocks)


def run_table8(
    alphas: t.Sequence[float] = ALPHAS,
    n_jobs: int = 2500,
    seed: int = 3,
    warmup: int = 200,
) -> dict[float, tuple[float, float]]:
    """α sweep: returns ``alpha -> (AEA, UR)`` (paper picks 1.05)."""
    jobs = generate_trace(WorkloadConfig.ng_tianhe(jobs_per_day=1000.0), n_jobs, seed=seed)
    out: dict[float, tuple[float, float]] = {}
    for alpha in alphas:
        est = EslurmEstimator(
            EstimatorConfig(aea_gate=0.0, k_clusters=150, slack=alpha),
            rng=np.random.default_rng(seed),
        )
        rep = evaluate_estimator(est, jobs, warmup=warmup)
        out[alpha] = (rep.aea, rep.underestimate_rate)
    return out


def render_table8(r: dict[float, tuple[float, float]]) -> str:
    alphas = sorted(r)
    return render_table(
        ["alpha", *[f"{a:.2f}" for a in alphas]],
        [
            ["AEA", *[r[a][0] for a in alphas]],
            ["UR", *[r[a][1] for a in alphas]],
        ],
        title="Table VIII: slack variable sweep (paper default: 1.05)",
        float_fmt="{:.2f}",
    )
