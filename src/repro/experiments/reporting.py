"""ASCII rendering of tables and series, the way benches print them."""

from __future__ import annotations

import typing as t


def render_table(
    headers: t.Sequence[str],
    rows: t.Sequence[t.Sequence[t.Any]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """

    def cell(x: t.Any) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    grid = [[cell(h) for h in headers]] + [[cell(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(grid[0], widths)))
    lines.append(sep)
    for row in grid[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: t.Sequence[t.Any],
    series: dict[str, t.Sequence[float]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render several named series against a shared x-axis as a table."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(vals[i] for vals in series.values())])
    return render_table(headers, rows, title=title, float_fmt=float_fmt)
