"""Fig. 10 / Table VII driver: scheduling efficiency across scales.

Four clusters (1K, 4K, 16K Tianhe-2A-profile; 20K+ NG-Tianhe-profile)
run a week-long trace under every RM available at that scale
(Table VII's availability matrix: SGE/Torque stop at 1K, OpenPBS/LSF at
4K).  Metrics: system utilization, average waiting time, average
bounded slowdown — all with the backfill scheduler, ESLURM additionally
with its runtime-estimation framework, per the paper.

The optional attribution pass reruns ESLURM at the largest scale with
the estimator and the FP-Tree disabled, reproducing the paper's
"estimation contributes 8.7 %, FP-Tree 6.2 %" breakdown.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.cluster.failures import FailureModel
from repro.cluster.spec import ClusterSpec
from repro.estimate.framework import EslurmEstimator, EstimatorConfig
from repro.api import build_rm
from repro.experiments.reporting import render_table
from repro.sched.metrics import ScheduleMetrics
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0

#: Table VII: which RMs run at which scale.
CLUSTER_MATRIX: tuple[tuple[int, str, tuple[str, ...]], ...] = (
    (1024, "tianhe2a", ("sge", "torque", "openpbs", "lsf", "slurm", "eslurm")),
    (4096, "tianhe2a", ("openpbs", "lsf", "slurm", "eslurm")),
    (16_384, "tianhe2a", ("slurm", "eslurm")),
    (20_480, "ng-tianhe", ("slurm", "eslurm")),
)


@dataclass
class Fig10Result:
    #: (n_nodes, rm) -> metrics
    metrics: dict[tuple[int, str], ScheduleMetrics] = field(default_factory=dict)
    #: attribution at the largest scale: variant -> utilization
    attribution: dict[str, float] = field(default_factory=dict)


def _calibrated_jobs(
    source: str, n_nodes: int, horizon_s: float, seed: int, target_load: float
) -> list:
    """Jobs whose offered load is ``target_load`` of machine capacity.

    The job mix coarsens with machine scale — larger, longer jobs and
    fewer backfill fillers — reproducing the paper's observation that
    big systems lack the small jobs needed to plug scheduling holes.
    """
    import math

    import numpy as np

    workload_cls = WorkloadConfig.tianhe2a if source == "tianhe2a" else WorkloadConfig.ng_tianhe
    scale_ln = max(math.log(max(n_nodes, 64) / 1024) / math.log(4), 0.0)
    long_frac = min(0.2 + 0.12 * scale_ln, 0.6)
    max_nodes = max(n_nodes // 4, 1)
    # Iterative calibration *with the run's own seed*: the app pool and
    # its heavy-tailed size draws are seed-specific, so a probe with a
    # different seed would measure a different universe.
    n_jobs = max(int(n_nodes * horizon_s / 50_000.0), 50)
    jobs: list = []
    for _ in range(6):
        workload = workload_cls(
            max_nodes=max_nodes,
            long_job_fraction=long_frac,
            jobs_per_day=n_jobs / (horizon_s / DAY),
        )
        jobs = generate_trace(workload, n_jobs, seed=seed, start_time=1.0)
        jobs = [j for j in jobs if j.submit_time < horizon_s * 0.95]
        offered = sum(j.n_nodes * j.runtime_s for j in jobs) / (n_nodes * horizon_s)
        if abs(offered - target_load) <= 0.05 * target_load:
            break
        # damped update: the heavy-tailed mix makes offered(n) jumpy
        n_jobs = max(int(n_jobs * (0.5 + 0.5 * target_load / max(offered, 1e-6))), 50)
    return jobs


def _run_one(
    n_nodes: int,
    source: str,
    rm_name: str,
    horizon_s: float,
    seed: int,
    failures: bool,
    target_load: float,
    use_fptree: bool = True,
    with_estimator: bool = True,
) -> ScheduleMetrics:
    sim = Simulator(seed=seed)
    base = (
        ClusterSpec.tianhe2a(n_nodes=n_nodes, n_satellites=max(2, n_nodes // 5000))
        if source == "tianhe2a"
        else ClusterSpec.ng_tianhe(n_nodes=n_nodes, n_satellites=max(2, n_nodes // 5000))
    )
    if not failures:
        import dataclasses

        base = dataclasses.replace(base, failure_model=FailureModel.disabled())
    cluster = base.build(sim)
    if failures:
        cluster.failures.start()
        cluster.monitor.start()
    jobs = _calibrated_jobs(source, n_nodes, horizon_s, seed, target_load)
    kwargs: dict[str, t.Any] = {"sample_interval_s": 300.0}
    if rm_name == "eslurm":
        if with_estimator:
            import numpy as np

            cfg = EstimatorConfig(aea_gate=0.0, k_clusters=40)
            kwargs["estimator"] = EslurmEstimator(cfg, rng=np.random.default_rng(seed))
        kwargs["use_fptree"] = use_fptree
    rm = build_rm(rm_name, cluster, **kwargs)
    rm.run_trace(jobs, until=horizon_s)
    return ScheduleMetrics.from_jobs(rm.jobs, rm.pool.n_total, horizon_s=horizon_s)


def run_fig10(
    scale: float = 1.0,
    horizon_days: float = 7.0,
    target_load: float = 0.85,
    seed: int = 1,
    failures: bool = True,
    with_attribution: bool = False,
    matrix: t.Sequence[tuple[int, str, tuple[str, ...]]] = CLUSTER_MATRIX,
) -> Fig10Result:
    """Run the scaling study.

    Args:
        scale: multiply every cluster size by this (benches use < 1 for
            quick runs; 1.0 reproduces the paper's sizes).
        horizon_days: trace length (paper: one week).
        target_load: offered load as a fraction of capacity; slightly
            over 1 keeps machines contended so utilization measures
            packing efficiency, as in production.
        failures: inject stochastic failures (the realistic setting).
        with_attribution: add the ESLURM ablation runs at the largest
            scale (estimator off / FP-Tree off).
    """
    result = Fig10Result()
    horizon = horizon_days * DAY
    for n_nodes, source, rms in matrix:
        n = max(int(n_nodes * scale), 64)
        for rm_name in rms:
            result.metrics[(n, rm_name)] = _run_one(
                n, source, rm_name, horizon, seed, failures, target_load
            )
    if with_attribution:
        n_nodes, source, _ = matrix[-1]
        n = max(int(n_nodes * scale), 64)
        variants = {
            "eslurm-full": dict(with_estimator=True, use_fptree=True),
            "eslurm-no-estimator": dict(with_estimator=False, use_fptree=True),
            "eslurm-no-fptree": dict(with_estimator=True, use_fptree=False),
            "slurm": {},
        }
        for label, opts in variants.items():
            rm_name = "slurm" if label == "slurm" else "eslurm"
            m = _run_one(n, source, rm_name, horizon, seed, failures, target_load, **opts)
            result.attribution[label] = m.utilization
    return result


def render_fig10(r: Fig10Result) -> str:
    rows = []
    for (n, rm), m in sorted(r.metrics.items()):
        rows.append([n, rm, m.utilization, m.avg_wait_s, m.avg_slowdown])
    blocks = [
        render_table(
            ["nodes", "RM", "utilization", "avg_wait_s", "avg_slowdown"],
            rows,
            title="Fig 10: scheduling efficiency across scales (backfill)",
            float_fmt="{:.3f}",
        )
    ]
    if r.attribution:
        rows = [[k, v] for k, v in r.attribution.items()]
        blocks.append(
            render_table(
                ["variant", "utilization"],
                rows,
                title="attribution at largest scale (paper: estimation +8.7%, FP-Tree +6.2%)",
                float_fmt="{:.3f}",
            )
        )
    return "\n".join(blocks)
