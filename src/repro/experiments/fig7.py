"""Fig. 7 driver: the six-RM comparison on 4K nodes of Tianhe-2A.

(a)-(e): master resource usage over 24 h (CPU utilisation / CPU time /
virtual memory / real memory / concurrent sockets), plus the satellite
demands the paper reports in text; (f): job occupation time vs job size
with a fixed 10 s runtime.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.cluster.spec import Cluster, ClusterSpec
from repro.api import build_rm
from repro.experiments.reporting import render_series, render_table
from repro.sched.job import Job
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0
RM_NAMES = ("sge", "torque", "openpbs", "lsf", "slurm", "eslurm")
JOB_SIZES = (64, 256, 1024, 4096)


@dataclass
class Fig7Result:
    """Per-RM master summary + occupation curve."""

    rm: str
    master: dict[str, float]
    satellites: list[dict[str, float]] = field(default_factory=list)
    occupation_by_size: dict[int, float] = field(default_factory=dict)


def _fresh_cluster(n_nodes: int, n_satellites: int, seed: int) -> Cluster:
    sim = Simulator(seed=seed)
    spec = ClusterSpec.tianhe2a(n_nodes=n_nodes, n_satellites=n_satellites)
    return spec.build(sim)


def run_fig7(
    n_nodes: int = 4096,
    horizon_s: float = DAY,
    n_jobs: int = 1000,
    seed: int = 1,
    rms: t.Sequence[str] = RM_NAMES,
    job_sizes: t.Sequence[int] = JOB_SIZES,
) -> dict[str, Fig7Result]:
    """One 24 h run per RM on identical clusters/workloads (a-e), then
    dedicated fixed-runtime jobs of growing size per RM (f)."""
    results: dict[str, Fig7Result] = {}
    workload = WorkloadConfig.tianhe2a(
        max_nodes=max(n_nodes // 4, 1), jobs_per_day=n_jobs / (horizon_s / DAY)
    )
    for rm_name in rms:
        cluster = _fresh_cluster(n_nodes, 2, seed)
        rm = build_rm(rm_name, cluster)
        jobs = generate_trace(workload, n_jobs, seed=seed, start_time=1.0)
        jobs = [j for j in jobs if j.submit_time < horizon_s * 0.9]
        rm.run_trace(jobs, until=horizon_s)
        rep = rm.report(horizon_s=horizon_s)
        results[rm_name] = Fig7Result(rm_name, rep.master, rep.satellites)
    # (f) occupation time vs size: idle machine, one job at a time.
    for rm_name in rms:
        for size in job_sizes:
            if size > n_nodes:
                continue
            cluster = _fresh_cluster(n_nodes, 2, seed)
            rm = build_rm(rm_name, cluster)
            job = Job(1, "probe.sh", "u", size, 10.0, 60.0, submit_time=1.0)
            rm.run_trace([job], until=7200.0)
            rep = rm.report()
            results[rm_name].occupation_by_size[size] = rep.occupation_mean_s
    return results


def render_fig7(results: dict[str, Fig7Result]) -> str:
    rows = []
    for rm, r in results.items():
        m = r.master
        rows.append(
            [
                rm,
                m["cpu_util_mean"],
                m["cpu_time_min"],
                m["vmem_mb"],
                m["rss_mb"],
                m["sockets_mean"],
                m["sockets_peak"],
            ]
        )
    blocks = [
        render_table(
            ["RM", "cpu_util", "cpu_min", "vmem_MB", "rss_MB", "sock_mean", "sock_peak"],
            rows,
            title="Fig 7a-e: master resource usage (24h, 4K nodes)",
        )
    ]
    eslurm = results.get("eslurm")
    if eslurm and eslurm.satellites:
        blocks.append(
            render_table(
                ["sat", "cpu_min", "vmem_MB", "rss_MB", "sock_mean"],
                [
                    [i, s["cpu_time_min"], s["vmem_mb"], s["rss_mb"], s["sockets_mean"]]
                    for i, s in enumerate(eslurm.satellites)
                ],
                title="satellite demands (Sec. VII-A text)",
            )
        )
    sizes = sorted(next(iter(results.values())).occupation_by_size)
    blocks.append(
        render_series(
            "job_size",
            sizes,
            {rm: [r.occupation_by_size.get(s, float("nan")) for s in sizes] for rm, r in results.items()},
            title="Fig 7f: job occupation time (s) vs job size (10s jobs)",
        )
    )
    return "\n".join(blocks)
