"""FP-Tree node-placement experiment (Section VII-A text).

The paper deploys ESLURM on 4K nodes for ten days, counts the failed
nodes encountered while constructing FP-Trees, and reports that 81.7 %
of them had been placed on leaves — including through 28 small failure
events and one >600-node maintenance event on day six.

This driver replays that protocol: stochastic failures plus the day-six
maintenance event, FP-Trees constructed on a broadcast-like cadence,
and for every construction the *actually failed* nodes' positions
checked against the tree's leaf set.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.cluster.failures import FailureModel
from repro.cluster.monitoring import MonitoringConfig
from repro.cluster.spec import ClusterSpec
from repro.fptree.constructor import FPTreeConstructor
from repro.fptree.predictor import MonitorAlertPredictor
from repro.fptree.tree import leaf_positions
from repro.simkit.core import Simulator

DAY = 86_400.0


@dataclass
class PlacementResult:
    trees_built: int
    failed_encounters: int
    failed_on_leaves: int
    failure_events: int
    single_node_failures: int

    @property
    def leaf_placement_ratio(self) -> float:
        """Paper: 81.7 %."""
        if self.failed_encounters == 0:
            return 1.0
        return self.failed_on_leaves / self.failed_encounters


def run_placement(
    n_nodes: int = 4096,
    days: float = 10.0,
    constructions_per_day: int = 60,
    width: int = 4,
    recall: float = 0.85,
    seed: int = 1,
) -> PlacementResult:
    """Replay the ten-day placement experiment.

    ``constructions_per_day`` scales the paper's 3828 trees/day down to
    keep runs quick; the placement *ratio* is insensitive to it.  The
    default width is narrow: in a width-32 tree ~97 % of positions are
    leaves anyway, so the leaf-placement metric is only informative for
    narrow trees (the regime where a failed inner node hurts most).
    Failed nodes whose alert has expired (long repairs, short alert TTL)
    land on leaves only by chance — that gap is why the paper reports
    81.7 % rather than ~100 %.
    """
    sim = Simulator(seed=seed)
    model = FailureModel(
        mtbf_node_hours=6000.0,  # a few point failures per day at 4K
        repair_hours=12.0,
        burst_per_day=0.3,
        burst_size_mean=8.0,
    )
    spec = ClusterSpec(
        n_nodes=n_nodes,
        n_satellites=2,
        failure_model=model,
        monitoring=MonitoringConfig(recall=recall, alert_ttl_hours=8.0),
    )
    cluster = spec.build(sim)
    cluster.failures.start()
    cluster.monitor.start()
    # Day six: the paper's >600-node hardware-replacement event
    # (scaled to ~15% of the machine when running smaller clusters).
    maint = min(640, max(n_nodes // 6, 8))
    start = n_nodes // 4
    if days >= 6:
        cluster.failures.schedule_maintenance(
            at=6 * DAY, node_ids=range(start, start + maint), duration=8 * 3600.0
        )
    constructor = FPTreeConstructor(MonitorAlertPredictor(cluster), width=width)
    encounters = 0
    on_leaves = 0
    trees = 0
    interval = DAY / constructions_per_day

    def build_one() -> None:
        nonlocal encounters, on_leaves, trees
        targets = cluster.compute_ids()
        ordered = constructor.construct(cluster.master.node_id, targets)
        down = cluster.down_ids()
        if not down:
            trees += 1
            return
        leaves = set(leaf_positions(len(ordered) + 1, width))
        # position p in the full nodelist corresponds to ordered[p-1]
        for pos, nid in enumerate(ordered, start=1):
            if nid in down:
                encounters += 1
                if pos in leaves:
                    on_leaves += 1
        trees += 1

    def loop() -> t.Generator:
        while True:
            yield sim.timeout(interval)
            build_one()

    sim.process(loop(), name="placement.builder")
    sim.run(until=days * DAY)
    return PlacementResult(
        trees_built=trees,
        failed_encounters=encounters,
        failed_on_leaves=on_leaves,
        failure_events=len(cluster.failures.events),
        single_node_failures=sum(
            len(ev.node_ids) for ev in cluster.failures.events if ev.kind == "point"
        ),
    )


def render_placement(r: PlacementResult) -> str:
    return (
        f"FP-Tree placement over the deployment window:\n"
        f"  trees built: {r.trees_built}\n"
        f"  failure events: {r.failure_events} "
        f"({r.single_node_failures} single-node failures)\n"
        f"  failed-node encounters during construction: {r.failed_encounters}\n"
        f"  placed on leaves: {r.failed_on_leaves} "
        f"({r.leaf_placement_ratio:.1%}; paper: 81.7%)"
    )
