"""Typed request/response envelopes — the one API the CLI and the
gateway share.

Every operation the library serves — a simulation day, a chaos
campaign, an oracle verification, a runtime estimate — is spelled as a
frozen request dataclass whose fields are plain JSON scalars.  A
request travels three ways without translation:

* in process, handed to :func:`dispatch` (what the CLI subcommands do);
* across the process boundary, as the ``to_wire()`` dict inside a
  ``repro.parallel`` task cell (what the gateway's warm pool does);
* over HTTP, as the JSON body of ``POST /v1/<kind>`` (what
  :mod:`repro.serve` accepts), rebuilt with :func:`request_from_wire`.

``digest()`` is the canonical cache key: the SHA-256 of the request's
kind plus its sorted, canonically-serialised parameters.  Two requests
with equal digests describe byte-identical work — every simulation in
this repository is a pure function of ``(config, seed)`` — so the
gateway serves repeated digests straight from cache.  The digest is
stable across processes and interpreters because it never hashes
runtime objects, only the JSON scalar fields.

Responses mirror the requests: each carries the rich in-process result
object (``report`` / ``simulation``) for callers that want it (the CLI
renders from it, byte-identical to the pre-envelope output) plus a
``result()`` dict of simulation-deterministic JSON — the only part
that is cached and served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as t
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import SimulationConfig, SimulationResult
    from repro.chaos.report import ChaosReport
    from repro.oracle.verify import VerifyReport

#: streaming progress callback: one human-readable line per event
Progress = t.Optional[t.Callable[[str], None]]

DAY = 86_400.0


def canonical_json(obj: t.Any) -> str:
    """The byte-stable rendering digests and caches are keyed on."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class Request:
    """Base envelope: JSON-scalar fields plus the canonical digest."""

    kind: t.ClassVar[str] = ""

    seed: int = 0

    def params(self) -> dict[str, t.Any]:
        """The request's fields as plain JSON values (tuples -> lists)."""
        out: dict[str, t.Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    def digest(self) -> str:
        """SHA-256 cache key over ``(kind, params)`` — equal digests mean
        byte-identical results, because every run is a pure function of
        its seeded parameters."""
        blob = canonical_json({"kind": self.kind, "params": self.params()})
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_wire(self) -> dict[str, t.Any]:
        """The JSON dict :func:`request_from_wire` rebuilds this from."""
        return {"kind": self.kind, **self.params()}


@dataclass(frozen=True, kw_only=True)
class SimulateRequest(Request):
    """One simulated RM day (the servable core of
    :class:`~repro.api.SimulationConfig` — every field a JSON scalar)."""

    kind: t.ClassVar[str] = "simulate"

    rm: str = "eslurm"
    n_nodes: int = 1024
    n_satellites: int = 2
    failures: bool = False
    monitoring: bool | None = None
    n_jobs: int = 500
    horizon_s: float = DAY
    placement: str = "first-fit"
    malleable: bool = False

    def __post_init__(self) -> None:
        self.to_config()  # SimulationConfig owns the validation rules

    def to_config(self, sink: t.Any = None) -> "SimulationConfig":
        """The full config this request stands for (telemetry on, so the
        response can report deterministic event counts)."""
        from repro.api import SimulationConfig, TelemetryConfig

        return SimulationConfig(
            rm=self.rm,
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            seed=self.seed,
            failures=self.failures,
            monitoring=self.monitoring,
            n_jobs=self.n_jobs,
            horizon_s=self.horizon_s,
            placement=self.placement,
            malleable=self.malleable,
            telemetry=TelemetryConfig(enabled=True, sink=sink),
        )


@dataclass(frozen=True, kw_only=True)
class ChaosRequest(Request):
    """One invariant-checked chaos campaign run."""

    kind: t.ClassVar[str] = "chaos"

    scenario: str = "failure-storm"

    def __post_init__(self) -> None:
        from repro.chaos import get_scenario

        get_scenario(self.scenario)  # ConfigurationError on unknown names


@dataclass(frozen=True, kw_only=True)
class VerifyRequest(Request):
    """One oracle verification pass (differential/metamorphic/golden)."""

    kind: t.ClassVar[str] = "verify"

    layers: tuple[str, ...] = ("differential", "metamorphic", "golden")
    relations: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        from repro.oracle import relations_table
        from repro.oracle.verify import LAYERS

        unknown = set(self.layers) - set(LAYERS)
        if unknown:
            raise ConfigurationError(
                f"unknown verify layers {sorted(unknown)}; choose from {list(LAYERS)}"
            )
        if self.relations is not None:
            known = {r.name for r in relations_table()}
            missing = set(self.relations) - known
            if missing:
                # same message shape run_verify raises, so the CLI usage
                # error reads identically through either path
                raise ConfigurationError(
                    f"unknown relations: {sorted(missing)} (known: {sorted(known)})"
                )


@dataclass(frozen=True, kw_only=True)
class EstimateRequest(Request):
    """One runtime-estimate query: train the paper's estimator on a
    seeded synthetic history, then estimate a described job.

    This is the estimator-as-a-service surface the End-to-End
    Predictions framework motivates: the query costs one model lookup
    on a deterministically trained framework, so repeated queries are
    cache hits like any other request.
    """

    kind: t.ClassVar[str] = "estimate"

    #: completed jobs the framework trains on before the query
    n_history: int = 300
    #: workload job-size ceiling for the synthetic history
    max_nodes: int = 64
    #: the query job's width
    job_nodes: int = 8
    #: the query job's user wall request (``None``: user gave none)
    user_estimate_s: float | None = None
    #: job-script name to query (``None``: the history's most recent
    #: name, i.e. an application the model has definitely seen)
    app: str | None = None
    k_clusters: int = 12

    def __post_init__(self) -> None:
        if self.n_history < 50 or self.n_history > 5000:
            raise ConfigurationError("n_history must be in [50, 5000]")
        if self.max_nodes < 1 or self.job_nodes < 1:
            raise ConfigurationError("max_nodes/job_nodes must be >= 1")
        if self.k_clusters < 1:
            raise ConfigurationError("k_clusters must be >= 1")
        if self.user_estimate_s is not None and self.user_estimate_s <= 0:
            raise ConfigurationError("user_estimate_s must be positive")


@dataclass(frozen=True, kw_only=True)
class WhatIfRequest(Request):
    """One what-if delta-replay: run a base day to ``at_s``, snapshot,
    apply a perturbation, and finish the day from the snapshot.

    The base-day fields mirror :class:`SimulateRequest`; ``perturb`` is
    the perturbation's wire dict (see
    :mod:`repro.snapshot.perturb`), normalised at construction to its
    full explicit form so two requests that mean the same work always
    share one digest — and therefore one cache slot and one coalesced
    execution in the gateway.
    """

    kind: t.ClassVar[str] = "what-if"

    rm: str = "eslurm"
    n_nodes: int = 1024
    n_satellites: int = 2
    failures: bool = False
    monitoring: bool | None = None
    n_jobs: int = 500
    horizon_s: float = DAY
    placement: str = "first-fit"
    malleable: bool = False
    #: snapshot point, simulated seconds after the day starts
    at_s: float = DAY / 2
    #: wire form of the perturbation to apply at the snapshot
    perturb: dict[str, t.Any] = field(
        default_factory=lambda: {"kind": "submit-job"}
    )

    def __post_init__(self) -> None:
        self.to_sim_config()  # SimulationConfig owns the base-day rules
        if not 0.0 <= self.at_s < self.horizon_s:
            raise ConfigurationError(
                f"at_s={self.at_s} must lie in [0, horizon_s={self.horizon_s})"
            )
        # Validate and canonicalise: defaults become explicit, so the
        # digest is invariant to how sparsely the caller spelled it.
        object.__setattr__(self, "perturb", self.perturbation().to_wire())

    def perturbation(self) -> t.Any:
        from repro.snapshot.perturb import perturbation_from_wire

        return perturbation_from_wire(self.perturb)

    def to_sim_config(self) -> "SimulationConfig":
        """The base-day config (telemetry off: snapshot worlds exclude
        host-clock measurement by design)."""
        from repro.api import SimulationConfig

        return SimulationConfig(
            rm=self.rm,
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            seed=self.seed,
            failures=self.failures,
            monitoring=self.monitoring,
            n_jobs=self.n_jobs,
            horizon_s=self.horizon_s,
            placement=self.placement,
            malleable=self.malleable,
        )


#: kind name -> request class (the wire-format registry)
REQUEST_TYPES: dict[str, type[Request]] = {
    cls.kind: cls
    for cls in (
        SimulateRequest,
        ChaosRequest,
        VerifyRequest,
        EstimateRequest,
        WhatIfRequest,
    )
}

REQUEST_KINDS: tuple[str, ...] = tuple(sorted(REQUEST_TYPES))


def request_from_wire(wire: t.Mapping[str, t.Any]) -> Request:
    """Rebuild a typed request from its JSON dict; strict on every key.

    Raises:
        ConfigurationError: unknown ``kind``, unknown field, or field
            values the request class rejects — the errors the gateway
            maps to HTTP 400 and the CLI to exit code 3.
    """
    kind = wire.get("kind")
    cls = REQUEST_TYPES.get(t.cast(str, kind))
    if cls is None:
        raise ConfigurationError(
            f"unknown request kind {kind!r}; choose from {list(REQUEST_KINDS)}"
        )
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(wire) - allowed - {"kind"}
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} request field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    tuple_fields = {
        f.name
        for f in dataclasses.fields(cls)
        if "tuple" in str(f.type)
    }
    kwargs: dict[str, t.Any] = {}
    for name, value in wire.items():
        if name == "kind":
            continue
        if name in tuple_fields and isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad {kind} request: {exc}") from None


# ---------------------------------------------------------------------------
# responses
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Response:
    """Base envelope a :func:`dispatch` call hands back.

    ``ok`` is the *check* outcome (violations found, relations broken),
    not transport success — a run that completed but found violations
    is still a served, cacheable response.
    """

    request: Request
    ok: bool

    def result(self) -> dict[str, t.Any]:
        """Simulation-deterministic JSON body (the cached part)."""
        raise NotImplementedError

    def to_wire(self) -> dict[str, t.Any]:
        return {
            "kind": self.request.kind,
            "digest": self.request.digest(),
            "ok": self.ok,
            "result": self.result(),
        }


@dataclass(frozen=True)
class SimulateResponse(Response):
    simulation: "SimulationResult" = None  # type: ignore[assignment]

    def result(self) -> dict[str, t.Any]:
        report = self.simulation.report
        schedule = (
            dataclasses.asdict(report.schedule) if report.schedule is not None else {}
        )
        counters = (self.simulation.telemetry or {}).get("counters", {})
        return {
            "rm": report.rm_name,
            "n_nodes": report.n_nodes,
            "seed": self.request.seed,
            "events": int(counters.get("sim.events", 0)),
            "sim_time_s": float(counters.get("sim.time_s", 0.0)),
            "schedule": schedule,
            "master": dict(report.master),
            "n_satellites": len(report.satellites),
        }


@dataclass(frozen=True)
class ChaosResponse(Response):
    report: "ChaosReport" = None  # type: ignore[assignment]

    def result(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self.report)


@dataclass(frozen=True)
class VerifyResponse(Response):
    report: "VerifyReport" = None  # type: ignore[assignment]

    def result(self) -> dict[str, t.Any]:
        return self.report.to_payload()


@dataclass(frozen=True)
class EstimateResponse(Response):
    #: the served wall-time estimate (slack applied; ``None`` when the
    #: framework had no model *and* the user gave no estimate)
    estimate_s: float | None = None
    #: the model's pre-slack value (``None`` when no model answered)
    model_estimate_s: float | None = None
    #: which source won the AEA gate: ``"model"`` / ``"user"`` / ``"none"``
    source: str = "none"
    trainings: int = 0
    aea: float = 0.0
    app: str = ""

    def result(self) -> dict[str, t.Any]:
        return {
            "estimate_s": self.estimate_s,
            "model_estimate_s": self.model_estimate_s,
            "source": self.source,
            "trainings": self.trainings,
            "aea": self.aea,
            "app": self.app,
            "seed": self.request.seed,
        }


@dataclass(frozen=True)
class WhatIfResponse(Response):
    outcome: t.Any = None  # WhatIfOutcome

    def result(self) -> dict[str, t.Any]:
        payload = self.outcome.to_payload()
        # `warm` is a host-side execution detail (did the live world get
        # reused), not a simulation fact — keep the cached body purely
        # simulation-deterministic, like every other response.
        payload.pop("warm", None)
        payload["rm"] = self.request.rm
        payload["n_nodes"] = self.request.n_nodes
        payload["seed"] = self.request.seed
        payload["at_s"] = self.request.at_s
        return payload


# ---------------------------------------------------------------------------
# dispatch — the single entry point the CLI and the gateway adapt
# ---------------------------------------------------------------------------
def _run_simulate(request: SimulateRequest, progress: Progress) -> SimulateResponse:
    from repro.api import run_simulation
    from repro.telemetry.sinks import CallbackSink

    sink = None
    if progress is not None:
        progress(
            f"simulate: rm={request.rm} nodes={request.n_nodes} "
            f"jobs={request.n_jobs} seed={request.seed}"
        )
        # stream the existing telemetry span seam: every instrumented
        # region >= 10 ms becomes one progress line
        sink = CallbackSink(
            lambda rec: progress(f"[span] {rec.name} {rec.elapsed_s * 1e3:.0f}ms"),
            min_elapsed_s=0.010,
        )
    simulation = run_simulation(request.to_config(sink))
    if progress is not None:
        counters = (simulation.telemetry or {}).get("counters", {})
        progress(f"simulate: done, {int(counters.get('sim.events', 0))} events")
    return SimulateResponse(request=request, ok=True, simulation=simulation)


def _run_chaos(request: ChaosRequest, progress: Progress) -> ChaosResponse:
    from repro.chaos import run_scenario

    if progress is not None:
        progress(f"chaos: scenario={request.scenario} seed={request.seed}")
    report = run_scenario(request.scenario, seed=request.seed)
    if progress is not None:
        progress(
            f"chaos: done, {report.faults_injected} faults, "
            f"{report.total_violations} violation(s)"
        )
    return ChaosResponse(request=request, ok=report.ok, report=report)


def _run_verify(request: VerifyRequest, progress: Progress) -> VerifyResponse:
    from repro.oracle.verify import run_verify

    report = run_verify(
        seed=request.seed,
        layers=request.layers,
        progress=progress,
        relations=list(request.relations) if request.relations is not None else None,
    )
    return VerifyResponse(request=request, ok=report.ok, report=report)


def _run_estimate(request: EstimateRequest, progress: Progress) -> EstimateResponse:
    import numpy as np

    from repro.estimate.framework import EslurmEstimator, EstimatorConfig
    from repro.sched.job import Job
    from repro.workload.synthetic import WorkloadConfig, generate_trace

    jobs = generate_trace(
        WorkloadConfig(
            n_users=16, n_apps=12, jobs_per_day=2000.0, max_nodes=request.max_nodes
        ),
        request.n_history,
        seed=request.seed,
    )
    estimator = EslurmEstimator(
        EstimatorConfig(k_clusters=request.k_clusters),
        rng=np.random.default_rng(request.seed),
    )
    for job in jobs:
        estimator.estimate(job, job.submit_time)
        estimator.observe(job, job.submit_time)
    if progress is not None:
        progress(
            f"estimate: trained on {len(jobs)} jobs "
            f"({estimator.trainings} model generation(s))"
        )
    last = jobs[-1]
    app = request.app if request.app is not None else last.name
    query = Job(
        job_id=last.job_id + 1,
        name=app,
        user=last.user,
        n_nodes=request.job_nodes,
        # the true runtime is what the estimator predicts — any positive
        # placeholder works, the encoder never sees it
        runtime_s=1.0,
        user_estimate_s=request.user_estimate_s,
        submit_time=last.submit_time + 1.0,
    )
    value = estimator.estimate(query, query.submit_time)
    if value is None:
        source = "none"
    elif (
        request.user_estimate_s is not None and value == request.user_estimate_s
    ):
        source = "user"
    else:
        source = "model"
    return EstimateResponse(
        request=request,
        ok=True,
        estimate_s=value,
        model_estimate_s=query.model_estimate_s,
        source=source,
        trainings=estimator.trainings,
        aea=round(estimator.average_estimation_accuracy(), 6),
        app=app,
    )


def _run_whatif(request: WhatIfRequest, progress: Progress) -> WhatIfResponse:
    from repro.snapshot import SimWorld, capture, what_if

    if progress is not None:
        progress(
            f"what-if: rm={request.rm} nodes={request.n_nodes} "
            f"at_s={request.at_s:g} perturb={request.perturb['kind']} "
            f"seed={request.seed}"
        )
    world = SimWorld(request.to_sim_config())
    world.run_until(world.sim.now + request.at_s)
    snapshot = capture(world)
    if progress is not None:
        progress(
            f"what-if: snapshot at event {snapshot.event_index} "
            f"(t={snapshot.sim_now:g}s), replaying delta"
        )
    outcome = what_if(snapshot, request.perturbation())
    if progress is not None:
        progress(
            f"what-if: done, resumed {outcome.events_resumed} of "
            f"{outcome.events_total} events "
            f"({outcome.events_at_snapshot} reused from the base run)"
        )
    return WhatIfResponse(request=request, ok=True, outcome=outcome)


_HANDLERS: dict[type[Request], t.Callable[[t.Any, Progress], Response]] = {
    SimulateRequest: _run_simulate,
    ChaosRequest: _run_chaos,
    VerifyRequest: _run_verify,
    EstimateRequest: _run_estimate,
    WhatIfRequest: _run_whatif,
}


def dispatch(request: Request, progress: Progress = None) -> Response:
    """Execute one typed request and return its typed response.

    The single entry point everything adapts: ``repro simulate`` /
    ``chaos run`` / ``verify run`` / ``estimate`` render the returned
    response, the gateway's workers run it inside task cells, and the
    cache stores ``response.to_wire()["result"]`` keyed by
    ``request.digest()``.

    Args:
        request: any of the four envelope types.
        progress: optional line-oriented streaming callback — fed from
            the existing seams (verify's per-relation lines, telemetry
            span events for simulations).
    """
    handler = _HANDLERS.get(type(request))
    if handler is None:
        raise ConfigurationError(
            f"dispatch() takes a typed request envelope, got {type(request).__name__}"
        )
    return handler(request, progress)


def dispatch_wire(wire: t.Mapping[str, t.Any]) -> dict[str, t.Any]:
    """Wire-in, wire-out dispatch (what a pool worker runs for the
    gateway): rebuild the typed request, execute, return the envelope."""
    return dispatch(request_from_wire(wire)).to_wire()
