"""The public facade: one-call construction and execution of simulations.

This module is the supported entry point for scripting the library::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(rm="eslurm", n_nodes=4096, seed=7))
    print(result.report.summary())

It subsumes the helpers that historically lived in
``repro.experiments.harness`` (``quick_cluster`` / ``build_rm`` /
``run_rm_day`` — those import paths still resolve but emit a
``DeprecationWarning``) and adds keyword-only dataclass configs so every
knob is named at the call site.

:mod:`repro.api.requests` adds the typed request/response envelopes —
``SimulateRequest`` / ``ChaosRequest`` / ``VerifyRequest`` /
``EstimateRequest`` with canonical cache-key digests, and the single
:func:`dispatch` entry point the CLI subcommands and the
:mod:`repro.serve` gateway both adapt.  All of it is re-exported here.
"""

from __future__ import annotations

import contextlib
import typing as t
from dataclasses import dataclass, field, replace

from repro.cluster.failures import FailureModel
from repro.cluster.spec import Cluster, ClusterSpec
from repro.errors import ConfigurationError
from repro.rm.base import ResourceManager, RmReport
from repro.rm.centralized import CentralizedRM
from repro.rm.eslurm import EslurmRM
from repro.rm.profiles import RM_PROFILES
from repro.simkit.core import Simulator
from repro.telemetry import facade as telemetry
from repro.telemetry.sinks import TelemetrySink
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


@dataclass(frozen=True, kw_only=True)
class TelemetryConfig:
    """How a simulation is measured.

    Args:
        enabled: install a telemetry session for the run.  Off by
            default — the null-sink posture, in which every instrumented
            hot path costs one pointer check.
        sink: span sink for the session (default: in-memory).
    """

    enabled: bool = False
    sink: TelemetrySink | None = None


@dataclass(frozen=True, kw_only=True)
class SimulationConfig:
    """Everything one simulated RM day needs, spelled out by name.

    Args:
        rm: RM profile name (``"slurm"``, ``"eslurm"``, ...).
        n_nodes / n_satellites: machine size.
        seed: master seed for cluster, workload, and RM randomness.
        failures: enable the stochastic failure injector.
        monitoring: start the health-monitoring subsystem.  ``None``
            follows ``failures`` (the historical coupling); pass an
            explicit bool to run failures without monitoring or
            monitoring without failures.
        n_jobs: jobs submitted across the horizon.
        horizon_s: how long to simulate.
        workload: trace-generator config (defaults to one whose job
            sizes fit the cluster).
        estimator: runtime estimator handed to the RM (``"auto"`` for
            ESLURM's framework).
        telemetry: measurement configuration for the run.
        placement: node-placement policy name — ``"first-fit"`` (the
            byte-stable default) or ``"topology"`` (hop-compact,
            alert-averse; see :mod:`repro.sched.placement`).
        malleable: enable the scheduler's elastic-job protocol (jobs
            with ``min_nodes < max_nodes`` start shrunk, grow into
            holes, and contract under pressure/failure).
    """

    rm: str = "eslurm"
    n_nodes: int = 1024
    n_satellites: int = 2
    seed: int = 0
    failures: bool = False
    monitoring: bool | None = None
    n_jobs: int = 500
    horizon_s: float = DAY
    workload: WorkloadConfig | None = None
    estimator: t.Any = None
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    placement: str = "first-fit"
    malleable: bool = False
    #: job-lifecycle engine: "fsm" (flat timer-lane fast path, default)
    #: or "generator" (the reference Process implementation).  Not part
    #: of the wire envelopes — the gateway always serves the default.
    lifecycle: str = "fsm"

    def __post_init__(self) -> None:
        if self.rm not in RM_PROFILES:
            raise ConfigurationError(
                f"unknown RM {self.rm!r}; choose from {sorted(RM_PROFILES)}"
            )
        from repro.rm.base import LIFECYCLE_MODES

        if self.lifecycle not in LIFECYCLE_MODES:
            raise ConfigurationError(
                f"unknown lifecycle {self.lifecycle!r}; choose from {LIFECYCLE_MODES}"
            )
        if self.n_nodes < 1 or self.n_jobs < 0 or self.horizon_s <= 0:
            raise ConfigurationError("n_nodes/n_jobs/horizon_s out of range")
        from repro.sched.placement import PLACEMENT_NAMES

        if self.placement not in PLACEMENT_NAMES:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; choose from {list(PLACEMENT_NAMES)}"
            )

    @property
    def monitoring_effective(self) -> bool:
        """The resolved monitoring flag (``None`` follows ``failures``)."""
        return self.failures if self.monitoring is None else self.monitoring


@dataclass(frozen=True)
class SimulationResult:
    """What :func:`run_simulation` hands back."""

    config: SimulationConfig
    report: RmReport
    #: deterministic metric snapshot (``None`` unless telemetry was on)
    telemetry: dict[str, dict[str, t.Any]] | None = None


def quick_cluster(
    n_nodes: int = 1024,
    n_satellites: int = 2,
    seed: int = 0,
    failures: bool = False,
    monitoring: bool | None = None,
) -> Cluster:
    """A ready-to-use cluster on a fresh simulator.

    Args:
        n_nodes: compute nodes.
        n_satellites: satellites provisioned (ESLURM uses them).
        seed: master seed for all randomness.
        failures: enable the stochastic failure injector.
        monitoring: start the health monitor; ``None`` follows
            ``failures`` for backwards compatibility.
    """
    sim = Simulator(seed=seed)
    model = FailureModel() if failures else FailureModel.disabled()
    spec = ClusterSpec(n_nodes=n_nodes, n_satellites=n_satellites, failure_model=model)
    cluster = spec.build(sim)
    if failures:
        cluster.failures.start()
    if failures if monitoring is None else monitoring:
        cluster.monitor.start()
    return cluster


def build_rm(
    rm_name: str,
    cluster: Cluster,
    estimator: t.Any = None,
    **kwargs: t.Any,
) -> ResourceManager:
    """Construct any of the six RMs on an existing cluster."""
    if rm_name not in RM_PROFILES:
        raise ConfigurationError(f"unknown RM {rm_name!r}; choose from {sorted(RM_PROFILES)}")
    if rm_name == "eslurm":
        return EslurmRM(cluster.sim, cluster, estimator=estimator, **kwargs)
    return CentralizedRM.from_name(rm_name, cluster.sim, cluster, estimator=estimator, **kwargs)


def prepare_rm_day(
    rm: str | type[ResourceManager],
    cluster: Cluster,
    n_jobs: int = 500,
    seed: int = 0,
    horizon_s: float = DAY,
    workload: WorkloadConfig | None = None,
    estimator: t.Any = None,
    **rm_kwargs: t.Any,
) -> tuple[ResourceManager, list[t.Any]]:
    """Build the RM and its day of workload without running anything.

    The construction half of :func:`run_rm_day`, shared with
    :mod:`repro.snapshot` so a snapshot world is built by *exactly* the
    same code path as a straight run — the prerequisite for replay-based
    restore being byte-identical.  Returns ``(manager, jobs)``; nothing
    has been scheduled on the simulator yet.
    """
    cfg = workload or WorkloadConfig(
        max_nodes=max(cluster.n_nodes // 4, 1),
        jobs_per_day=n_jobs / (horizon_s / DAY),
    )
    jobs = generate_trace(cfg, n_jobs, seed=seed, start_time=cluster.sim.now + 1.0)
    # Clip any stragglers the generator placed beyond the horizon.
    jobs = [j for j in jobs if j.submit_time < cluster.sim.now + horizon_s * 0.95]
    if isinstance(rm, str):
        manager = build_rm(rm, cluster, estimator=estimator, **rm_kwargs)
    else:
        manager = rm(cluster.sim, cluster, estimator=estimator, **rm_kwargs) if rm is EslurmRM else rm(
            cluster.sim, cluster, RM_PROFILES["slurm"], estimator=estimator, **rm_kwargs
        )
    return manager, jobs


def run_rm_day(
    rm: str | type[ResourceManager],
    cluster: Cluster,
    n_jobs: int = 500,
    seed: int = 0,
    horizon_s: float = DAY,
    workload: WorkloadConfig | None = None,
    estimator: t.Any = None,
    **rm_kwargs: t.Any,
) -> RmReport:
    """Run one RM for a day of synthetic workload and report.

    Args:
        rm: RM name (``"slurm"`` ...) or an RM class.
        cluster: from :func:`quick_cluster` (owns the simulator).
        n_jobs: jobs submitted across the horizon.
        seed: workload seed.
        horizon_s: how long to simulate.
        workload: trace generator config; defaults to a config whose
            job sizes fit the cluster.
        estimator: runtime estimator handed to the RM.
    """
    manager, jobs = prepare_rm_day(
        rm,
        cluster,
        n_jobs=n_jobs,
        seed=seed,
        horizon_s=horizon_s,
        workload=workload,
        estimator=estimator,
        **rm_kwargs,
    )
    manager.run_trace(jobs, until=cluster.sim.now + horizon_s)
    return manager.report(horizon_s=horizon_s)


def rm_kwargs_for_config(
    config: SimulationConfig, cluster: Cluster
) -> dict[str, t.Any]:
    """RM constructor kwargs implied by a :class:`SimulationConfig`.

    Shared between :func:`run_simulation` and :mod:`repro.snapshot` so
    the elastic-scheduler and placement wiring cannot drift between the
    straight-run and snapshot-world construction paths.
    """
    rm_kwargs: dict[str, t.Any] = {}
    if config.malleable:
        from repro.sched.backfill import BackfillScheduler

        rm_kwargs["scheduler"] = BackfillScheduler(malleable=True)
    if config.placement != "first-fit":
        from repro.sched.placement import build_placement

        rm_kwargs["placement"] = build_placement(
            config.placement, cluster.topology, alert_source=cluster.monitor
        )
    if config.lifecycle != "fsm":
        rm_kwargs["lifecycle"] = config.lifecycle
    return rm_kwargs


def run_simulation(
    config: SimulationConfig | None = None, **overrides: t.Any
) -> SimulationResult:
    """Build a cluster, run one RM day, and collect the results.

    Args:
        config: the full configuration; defaults to
            ``SimulationConfig()``.
        overrides: field overrides applied on top of ``config``
            (``run_simulation(rm="slurm", n_nodes=4096)``).
    """
    if config is None:
        config = SimulationConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    scope: t.ContextManager[t.Any] = (
        telemetry.session(config.telemetry.sink)
        if config.telemetry.enabled
        else contextlib.nullcontext()
    )
    with scope as tel:
        cluster = quick_cluster(
            n_nodes=config.n_nodes,
            n_satellites=config.n_satellites,
            seed=config.seed,
            failures=config.failures,
            monitoring=config.monitoring,
        )
        rm_kwargs = rm_kwargs_for_config(config, cluster)
        report = run_rm_day(
            config.rm,
            cluster,
            n_jobs=config.n_jobs,
            seed=config.seed,
            horizon_s=config.horizon_s,
            workload=config.workload,
            estimator=config.estimator,
            **rm_kwargs,
        )
        snapshot = tel.snapshot() if tel is not None else None
    return SimulationResult(config=config, report=report, telemetry=snapshot)


# The envelope layer builds on the facade above; imported last so the
# names it needs (SimulationConfig, run_simulation...) already exist.
from repro.api.requests import (  # noqa: E402
    REQUEST_KINDS,
    REQUEST_TYPES,
    ChaosRequest,
    ChaosResponse,
    EstimateRequest,
    EstimateResponse,
    Request,
    Response,
    SimulateRequest,
    SimulateResponse,
    VerifyRequest,
    VerifyResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
    dispatch,
    dispatch_wire,
    request_from_wire,
)
