"""A small, deterministic discrete-event simulation kernel.

The kernel follows the process-interaction style popularised by SimPy:
simulation activities are written as Python generators that ``yield``
events (timeouts, store gets, other processes) and are resumed when the
event fires.  Determinism is guaranteed by a total ordering on the event
heap — ``(time, priority, sequence)`` — and by routing all randomness
through named :class:`~repro.simkit.rng.RngRegistry` streams.

Public surface::

    Simulator        -- the event loop / clock
    Event, Timeout   -- primitive events
    Timer            -- re-armable callback timer (the flat FSM lane)
    AllOf, AnyOf     -- event combinators
    Process          -- a running generator activity
    Store, Resource  -- queueing primitives
    RngRegistry      -- named, seeded numpy Generator streams
    TimeSeries, Counter, Tally -- measurement utilities
"""

from repro.simkit.core import Simulator
from repro.simkit.events import AllOf, AnyOf, Event, Timeout, Timer
from repro.simkit.monitor import Counter, Tally, TimeSeries
from repro.simkit.process import Process
from repro.simkit.resources import Resource, Store
from repro.simkit.rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Timer",
    "AllOf",
    "AnyOf",
    "Process",
    "Store",
    "Resource",
    "RngRegistry",
    "TimeSeries",
    "Counter",
    "Tally",
]
