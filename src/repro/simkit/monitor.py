"""Measurement utilities: time series, counters and tallies.

The paper's figures are mostly *resource-usage-over-time* curves sampled
once per second (Fig. 7, Fig. 9) or summary statistics over a run
(Tables V, VI, VIII).  These classes are the in-simulation recorders
that produce them.
"""

from __future__ import annotations

import math
import typing as t

import numpy as np


class TimeSeries:
    """An append-only ``(time, value)`` series with summary helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} went backwards: "
                f"{time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self._values[-1] if self._values else 0.0

    def mean(self) -> float:
        """Plain mean of the sampled values (0.0 when empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else 0.0

    def time_average(self, until: float | None = None) -> float:
        """Step-function time-weighted average of the series.

        Each value is held until the next sample; the final value is held
        until ``until`` (defaults to the last sample time, which then
        contributes zero width).
        """
        if not self._times:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        end = float(until) if until is not None else times[-1]
        if end < times[-1]:
            raise ValueError("time_average until= precedes last sample")
        widths = np.diff(np.append(times, end))
        total = end - times[0]
        if total <= 0:
            return float(values[-1])
        return float(np.dot(values, widths) / total)

    def resample(self, step: float, until: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Step-hold resampling onto a regular grid (for plotting/benches)."""
        if step <= 0:
            raise ValueError("resample step must be positive")
        if not self._times:
            return np.array([]), np.array([])
        times = self.times
        values = self.values
        end = float(until) if until is not None else times[-1]
        grid = np.arange(times[0], end + step / 2, step)
        idx = np.searchsorted(times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(values) - 1)
        return grid, values[idx]


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Tally for signed data")
        self.value += amount

    def __int__(self) -> int:
        return self.value


class Tally:
    """Streaming summary statistics (Welford) without storing samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: t.Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two samples."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0
