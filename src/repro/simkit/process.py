"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.simkit.events.Event`
objects.  The kernel resumes the generator with the event's value when it
fires (or throws the event's exception into it).  A :class:`Process` is
itself an event that fires with the generator's return value, so processes
can wait on each other.

This is the *reference* lifecycle engine: the hot job path in
:mod:`repro.rm.lifecycle` re-implements the same phases as a flat FSM on
the kernel's timer lane, and the ``lifecycle-equivalence`` oracle
relation holds the two implementations byte-comparable.
"""

from __future__ import annotations

import typing as t

from repro.errors import ProcessInterrupt, SimulationError
from repro.simkit.events import PRIORITY_URGENT, Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


class Process(Event):
    """A running generator activity; also an event for its completion."""

    __slots__ = ("name", "_generator", "_waiting_on", "_resume_cb", "_wait_slot")

    def __init__(
        self,
        sim: "Simulator",
        generator: t.Generator[Event, t.Any, t.Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        # One bound method for the process's whole life: ``self._resume``
        # creates a *new* bound-method object on every attribute access,
        # so detaching by identity needs the registered object cached.
        self._resume_cb: t.Callable[[Event], None] = self._resume
        #: index of ``_resume_cb`` in ``_waiting_on.callbacks`` — the
        #: O(1) detach handle (callback lists only ever grow, so the
        #: slot index is stable for the wait's duration).
        self._wait_slot = -1
        # Bootstrap: resume for the first time via an immediately-fired event.
        init = Event(sim)
        init._ok = True  # noqa: SLF001 - kernel-internal
        init._value = None  # noqa: SLF001
        assert init.callbacks is not None
        init.callbacks.append(self._resume_cb)
        sim.schedule(init, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event first.

        Delivery is *deferred*: the interrupt rides an URGENT event at the
        current tick, so it lands after the caller's own callback returns.
        If the process completes in that window — another same-tick URGENT
        event (e.g. a second interrupt) resumes it to the end first — the
        late delivery silently no-ops via the ``triggered`` guard in
        :meth:`_resume` rather than erroring: by the time it arrives,
        "interrupt a finished process" has already happened and the caller
        that scheduled it cannot be re-entered.  The FSM lifecycle mirrors
        exactly this semantics with a synchronous no-op kill on a finished
        job (``tests/rm/test_lifecycle.py`` pins both paths).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        ev = Event(self.sim)
        ev._ok = False  # noqa: SLF001
        ev._value = ProcessInterrupt(cause)  # noqa: SLF001
        ev.defused = True
        assert ev.callbacks is not None
        ev.callbacks.append(self._resume_cb)
        self.sim.schedule(ev, PRIORITY_URGENT)

    # -- kernel callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:  # interrupted after completion already delivered
            return
        # Detach from the event we were waiting on (interrupt case).
        # Dead-slot mark, not ``list.remove``: with thousands of waiters
        # parked on one event a linear scan per interrupt is O(n²), and a
        # swap-pop would reorder surviving callbacks and break replay
        # determinism.  The slot is blanked in place and the kernel's
        # dispatch loops skip ``None`` entries.
        waited = self._waiting_on
        if waited is not None and waited is not event and waited.callbacks is not None:
            cbs = waited.callbacks
            slot = self._wait_slot
            if 0 <= slot < len(cbs) and cbs[slot] is self._resume_cb:
                cbs[slot] = None
            else:  # pragma: no cover - defensive; slots never move today
                try:
                    cbs.remove(self._resume_cb)
                except ValueError:
                    pass
        self._waiting_on = None
        self._wait_slot = -1
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event.defused = True
                target = self._generator.throw(t.cast(BaseException, event.value))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate through event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            try:
                self._generator.throw(exc)
            except BaseException as err:  # noqa: BLE001
                self.fail(err)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        if target.processed:
            # Already fired: resume immediately (still via the heap for
            # deterministic ordering at the current time).
            ev = Event(self.sim)
            ev._ok = target._ok  # noqa: SLF001
            ev._value = target._value  # noqa: SLF001
            ev.defused = True
            assert ev.callbacks is not None
            ev.callbacks.append(self._resume_cb)
            self.sim.schedule(ev, PRIORITY_URGENT)
        else:
            assert target.callbacks is not None
            self._wait_slot = len(target.callbacks)
            target.callbacks.append(self._resume_cb)
            self._waiting_on = target

    def describe(self) -> dict[str, t.Any]:
        state = super().describe()
        state["name"] = self.name
        state["waiting"] = (
            None if self._waiting_on is None else type(self._waiting_on).__name__
        )
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
