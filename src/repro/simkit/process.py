"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.simkit.events.Event`
objects.  The kernel resumes the generator with the event's value when it
fires (or throws the event's exception into it).  A :class:`Process` is
itself an event that fires with the generator's return value, so processes
can wait on each other.
"""

from __future__ import annotations

import typing as t

from repro.errors import ProcessInterrupt, SimulationError
from repro.simkit.events import PRIORITY_URGENT, Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


class Process(Event):
    """A running generator activity; also an event for its completion."""

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: t.Generator[Event, t.Any, t.Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume for the first time via an immediately-fired event.
        init = Event(sim)
        init._ok = True  # noqa: SLF001 - kernel-internal
        init._value = None  # noqa: SLF001
        assert init.callbacks is not None
        init.callbacks.append(self._resume)
        sim.schedule(init, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        ev = Event(self.sim)
        ev._ok = False  # noqa: SLF001
        ev._value = ProcessInterrupt(cause)  # noqa: SLF001
        ev.defused = True
        assert ev.callbacks is not None
        ev.callbacks.append(self._resume)
        self.sim.schedule(ev, PRIORITY_URGENT)

    # -- kernel callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:  # interrupted after completion already delivered
            return
        # Detach from the event we were waiting on (interrupt case).
        waited = self._waiting_on
        if waited is not None and waited is not event and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event.defused = True
                target = self._generator.throw(t.cast(BaseException, event.value))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate through event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            try:
                self._generator.throw(exc)
            except BaseException as err:  # noqa: BLE001
                self.fail(err)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        if target.processed:
            # Already fired: resume immediately (still via the heap for
            # deterministic ordering at the current time).
            ev = Event(self.sim)
            ev._ok = target._ok  # noqa: SLF001
            ev._value = target._value  # noqa: SLF001
            ev.defused = True
            assert ev.callbacks is not None
            ev.callbacks.append(self._resume)
            self.sim.schedule(ev, PRIORITY_URGENT)
        else:
            assert target.callbacks is not None
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def describe(self) -> dict[str, t.Any]:
        state = super().describe()
        state["name"] = self.name
        state["waiting"] = (
            None if self._waiting_on is None else type(self._waiting_on).__name__
        )
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
