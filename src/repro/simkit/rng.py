"""Named, reproducible random-number streams.

Every stochastic component in the library draws from its own named
stream so that adding randomness to one subsystem never perturbs
another's draws — a prerequisite for meaningful A/B experiments
(e.g. Slurm vs ESLURM on *the same* failure realisation).

Streams are derived from the master seed with ``numpy``'s
:class:`~numpy.random.SeedSequence` ``spawn_key`` mechanism keyed by a
stable hash of the stream name, so ``RngRegistry(7).stream("fabric")``
is identical across runs and machines.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Registry of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {seed!r}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """An independent per-entity stream, e.g. one per node."""
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key, int(index)))
        return np.random.default_rng(seq)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
