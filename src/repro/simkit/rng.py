"""Named, reproducible random-number streams.

Every stochastic component in the library draws from its own named
stream so that adding randomness to one subsystem never perturbs
another's draws — a prerequisite for meaningful A/B experiments
(e.g. Slurm vs ESLURM on *the same* failure realisation).

Streams are derived from the master seed with ``numpy``'s
:class:`~numpy.random.SeedSequence` ``spawn_key`` mechanism keyed by a
stable hash of the stream name, so ``RngRegistry(7).stream("fabric")``
is identical across runs and machines.
"""

from __future__ import annotations

import copy
import typing as t
import zlib

import numpy as np

from repro.errors import SimulationError


class RngRegistry:
    """Registry of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {seed!r}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """An independent per-entity stream, e.g. one per node."""
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key, int(index)))
        return np.random.default_rng(seq)

    def adopt(self, name: str, generator: np.random.Generator) -> np.random.Generator:
        """Register an externally-constructed generator under ``name``.

        Components that derive their generator some other way (e.g. the
        ESLURM estimator seeds ``default_rng(seed)`` directly, a
        derivation frozen into the golden traces) must still be visible
        to :meth:`getstate`/:meth:`setstate`, or a restored simulator
        would silently resume them from the wrong point.  Adopting the
        same name twice with a different generator object is an error —
        that is exactly the aliasing bug snapshots need to catch.
        """
        existing = self._streams.get(name)
        if existing is not None and existing is not generator:
            raise SimulationError(f"rng stream {name!r} already registered")
        self._streams[name] = generator
        return generator

    def getstate(self) -> dict[str, dict[str, t.Any]]:
        """Deep-copied ``bit_generator.state`` of every materialised stream.

        The copy matters: numpy hands back a dict that aliases mutable
        internals, and a snapshot must not move when the live simulator
        keeps drawing.
        """
        return {
            name: copy.deepcopy(gen.bit_generator.state)
            for name, gen in self._streams.items()
        }

    def setstate(self, state: dict[str, dict[str, t.Any]]) -> None:
        """Restore every stream captured by :meth:`getstate`, exactly.

        Streams not yet materialised are created first; the recorded
        state then overwrites the fresh derivation, so the round-trip is
        exact regardless of how the original stream was derived — except
        for adopted streams with a non-default bit generator, which must
        be re-adopted before calling this.  Each stream gets its own
        deep copy, so two registries restored from one state dict can
        never influence each other through shared state objects.
        """
        for name, bit_state in state.items():
            gen = self._streams.get(name)
            if gen is None:
                gen = self.stream(name)
            expected = type(gen.bit_generator).__name__
            recorded = bit_state.get("bit_generator")
            if recorded != expected:
                raise SimulationError(
                    f"rng stream {name!r} holds a {expected} bit generator but the "
                    f"snapshot recorded {recorded!r}; re-adopt the stream first"
                )
            gen.bit_generator.state = copy.deepcopy(bit_state)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
