"""Queueing primitives: FIFO stores and counted resources.

These are the only synchronisation mechanisms processes need in this
library: a :class:`Store` models mailboxes / work queues (the satellite
task queue, the RPC inbox of a daemon) and a :class:`Resource` models a
pool of interchangeable units (e.g. concurrently-processed RPC slots).
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.errors import SimulationError
from repro.simkit.events import Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


class Store:
    """An unbounded (or bounded) FIFO buffer of Python objects."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[t.Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, t.Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: t.Any) -> Event:
        """Insert ``item``; the returned event fires once inserted."""
        ev = Event(self.sim)
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            self._service_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with it."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._service_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> t.Any | None:
        """Non-blocking get: the oldest item, or ``None`` when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._service_putters()
        return item

    def _service_getters(self) -> None:
        while self.items and self._getters:
            self._getters.popleft().succeed(self.items.popleft())

    def _service_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()
            self._service_getters()


class Resource:
    """A pool of ``capacity`` identical units acquired one at a time."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Request one unit; fires once granted."""
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1
