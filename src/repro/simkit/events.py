"""Primitive events for the discrete-event kernel.

An :class:`Event` moves through three phases:

* *pending* — created but not yet scheduled to fire;
* *triggered* — given a value (or an exception) and queued on the
  simulator heap;
* *processed* — its callbacks have run.

Processes wait on events by ``yield``-ing them; the kernel registers the
process as a callback and resumes it with the event's value.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator

# Heap priorities: lower fires first among events at the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Args:
        sim: owning simulator.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused", "cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: t.Any = _PENDING
        self._ok: bool | None = None
        #: True once a failure's exception has been consumed by a waiter.
        self.defused = False
        #: True once :meth:`cancel` marked the event dead; the heap entry
        #: is discarded lazily when it surfaces.
        self.cancelled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> t.Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- cancellation --------------------------------------------------
    def cancel(self) -> None:
        """Mark a scheduled event dead without removing it from the heap.

        Heap removal would cost O(n) + re-heapify; instead the entry is
        skipped when it reaches the top of the heap (lazy deletion, the
        standard event-calendar technique).  A cancelled event never
        runs its callbacks, never counts as processed, and never appears
        in the golden event trace.  Cancelling an already-processed
        event is an error; a cancelled event cannot be (re-)triggered.
        """
        if self.processed:
            raise SimulationError("cannot cancel a processed event")
        self.cancelled = True

    # -- triggering ----------------------------------------------------
    def succeed(self, value: t.Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self.cancelled:
            raise SimulationError("event was cancelled")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule the event to fire with an exception.

        A failed event that nobody waits on re-raises at the end of the
        run unless :attr:`defused` is set.
        """
        if self.cancelled:
            raise SimulationError("event was cancelled")
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(t.cast(BaseException, event._value))

    # -- snapshot identity ---------------------------------------------
    def describe(self) -> dict[str, t.Any]:
        """Structural identity for snapshot capture (:mod:`repro.snapshot`).

        Deliberately excludes object ids and payload values (which may
        hold arbitrary non-serialisable objects): two worlds built from
        the same config and driven to the same event boundary must
        produce equal ``describe()`` dicts for corresponding events.
        Detached waiters leave ``None`` dead slots behind (see
        :meth:`Process._resume`); only live callbacks are counted.
        """
        callbacks = self.callbacks
        return {
            "type": type(self).__name__,
            "triggered": self.triggered,
            "cancelled": self.cancelled,
            "defused": self.defused,
            "ok": self._ok,
            "callbacks": (
                None
                if callbacks is None
                else sum(1 for cb in callbacks if cb is not None)
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, PRIORITY_NORMAL, delay)

    def describe(self) -> dict[str, t.Any]:
        state = super().describe()
        state["delay"] = self.delay
        return state


class Timer(Event):
    """A re-armable plain-callback timer: the kernel's flat *timer lane*.

    A :class:`Timeout` + generator resume costs an event allocation, a
    callbacks list, and a ``send()`` per phase.  A ``Timer`` instead
    carries one zero-argument function and reuses a single event object
    and a single cached callbacks list across many firings — each
    :meth:`arm` pushes only the heap tuple.  The table-driven FSM job
    lifecycle (:mod:`repro.rm.lifecycle`) runs entirely on this lane.

    Re-arming rule (a consequence of lazy cancellation): a timer may be
    re-armed only once its previous heap entry has been *consumed* —
    i.e. from inside its own firing, or before any arming.  A cancelled
    timer still has a stale entry sitting in the heap; re-arming it
    would reset nothing and the stale entry would fire the new arming
    early.  :meth:`arm` therefore rejects cancelled or still-pending
    timers — abandon the object and make a fresh one (the kill/resize
    paths that cancel are rare, so pooling only the common path wins).

    Not a general-purpose Event: ``run(until=timer)`` and waiting on a
    timer from a process are unsupported (callbacks registered by
    outsiders would persist across re-arms).
    """

    __slots__ = ("fn", "label", "_pending", "_cbs")

    def __init__(self, sim: "Simulator", fn: t.Callable[[], None], label: str = "timer") -> None:
        super().__init__(sim)
        self.fn = fn
        self.label = label
        self._ok = True
        self._value = None
        self._pending = False
        self._cbs: list[t.Callable[[Event], None] | None] = [self._run]
        self.callbacks = None  # idle until armed

    @property
    def pending(self) -> bool:
        """True while an armed firing sits in the heap (or was cancelled)."""
        return self._pending

    def arm(self, delay: float, priority: int = PRIORITY_NORMAL) -> "Timer":
        """Schedule :attr:`fn` to run ``delay`` units from now."""
        if self._pending or self.cancelled:
            raise SimulationError(
                f"timer {self.label!r} cannot be re-armed while pending/cancelled"
            )
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay!r}")
        self._pending = True
        self.callbacks = self._cbs
        self.sim.schedule(self, priority, delay)
        return self

    def cancel(self) -> None:
        """Mark the pending firing dead (lazy heap deletion, see Event)."""
        if not self._pending:
            raise SimulationError(f"cannot cancel idle timer {self.label!r}")
        self.cancelled = True

    def _run(self, _event: Event) -> None:
        self._pending = False
        self.fn()

    def describe(self) -> dict[str, t.Any]:
        state = super().describe()
        state["label"] = self.label
        return state


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` combinators."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
            if ev.processed:
                self._check(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, t.Any]:
        # Note `processed`, not `triggered`: a Timeout carries its value from
        # construction (so it *looks* triggered), but has only actually fired
        # once its callbacks have run.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}


class AllOf(Condition):
    """Fires once every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(t.cast(BaseException, event.value))
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as one child fires; value maps fired events -> values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(t.cast(BaseException, event.value))
            return
        self.succeed(self._collect())
