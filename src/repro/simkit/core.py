"""The simulator: event heap, clock, and run loop.

The heap is ordered by ``(time, priority, sequence)`` so that two runs
with the same inputs replay identically — the sequence counter breaks
ties deterministically in scheduling order.
"""

from __future__ import annotations

import heapq
import time
import typing as t

from repro.errors import SimulationError
from repro.simkit.events import PRIORITY_NORMAL, PRIORITY_URGENT, Event, Timeout, Timer
from repro.simkit.process import Process
from repro.simkit.rng import RngRegistry
from repro.telemetry import facade as telemetry

_INFINITY = float("inf")


class _StopSimulation(Exception):
    """Internal control-flow signal used by ``run(until=event)``."""

    def __init__(self, value: t.Any) -> None:
        super().__init__()
        self.value = value


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: master seed for the attached :class:`RngRegistry`; every
            component draws randomness from named sub-streams so
            experiments replay bit-identically.
        start_time: initial clock value (seconds by convention).
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        # A plain int rather than itertools.count so snapshots can
        # capture and compare the tiebreaker state.
        self._seq = 0
        self.rng = RngRegistry(seed)
        #: number of events processed so far (observability / debugging)
        self.events_processed = 0
        #: zero-arg callables invoked after every processed event; the
        #: chaos harness hooks invariant checks here.  Probes observe —
        #: they must not schedule events or mutate simulation state.
        self._probes: list[t.Callable[[], None]] = []
        #: ``(time, priority, seq)`` observers of the processed event
        #: stream; the oracle's golden-trace digest folds every entry
        #: into a hash, so two runs are byte-comparable event by event.
        self._trace_hooks: list[t.Callable[[float, int, int], None]] = []

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator[Event, t.Any, t.Any], name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def timer(self, fn: t.Callable[[], None], label: str = "timer") -> Timer:
        """Create an idle re-armable :class:`Timer` on this simulator's
        timer lane (arm it with :meth:`Timer.arm`)."""
        return Timer(self, fn, label=label)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL, delay: float = 0.0) -> None:
        """Queue a triggered event to fire ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or ``inf`` if none.

        Lazily discards cancelled entries that surfaced at the top of
        the heap (see :meth:`repro.simkit.events.Event.cancel`).
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else _INFINITY

    def step(self) -> None:
        """Process exactly one live event; raises if the heap is empty.

        Cancelled entries surfacing at the top are dropped silently:
        they do not advance the clock, run callbacks, count toward
        ``events_processed``, or reach trace hooks/probes.
        """
        while True:
            try:
                when, _prio, _seq, event = heapq.heappop(self._heap)
            except IndexError:
                raise SimulationError("step() on an empty event heap") from None
            if not event.cancelled:
                break
        if when < self._now:  # pragma: no cover - defensive, unreachable
            raise SimulationError("event heap went backwards in time")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            if callback is not None:  # skip dead slots left by detached waiters
                callback(event)
        # The event *was* processed — its callbacks ran — so the count,
        # the golden trace, and the probes must all agree on that before
        # an undefused failure propagates; raising between the count and
        # the hooks left them disagreeing about history.
        self.events_processed += 1
        for hook in self._trace_hooks:
            hook(when, _prio, _seq)
        for probe in self._probes:
            probe()
        if not event.ok and not event.defused:
            raise t.cast(BaseException, event.value)

    # -- run loop ------------------------------------------------------------
    def run(self, until: float | Event | None = None) -> t.Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        Args:
            until: ``None`` runs to exhaustion; a number runs until the
                clock reaches it (the clock is advanced to exactly that
                value); an :class:`Event` runs until it fires and returns
                its value.
        """
        deadline = _INFINITY
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            assert until.callbacks is not None
            until.callbacks.append(self._stop_on)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )
        tel = telemetry.active()
        try:
            if tel is None:
                self._run_cohorts(deadline)
            else:
                self._run_instrumented(deadline, tel)
        except _StopSimulation as stop:
            return stop.value
        # Value comparison, not identity: ``float(x)`` returns ``x``
        # itself for an exact float, so a caller-supplied
        # ``float("inf")`` is a *different object* from the module's
        # ``_INFINITY`` and an ``is not`` check would set the clock to
        # infinity here.
        if deadline != _INFINITY:
            self._now = deadline
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("run(until=event): event heap drained before event fired")
        return None

    def _run_cohorts(self, deadline: float) -> None:
        """The :meth:`run` hot loop: same-timestamp cohort dispatch.

        Equivalent to ``while peek() <= deadline: step()``, but the
        whole run of heap entries sharing the next timestamp is popped
        as one batch and dispatched in ``(priority, seq)`` order without
        re-consulting the heap per event.  Three hazards keep the cohort
        honest (each is pinned by a test in ``tests/simkit``):

        * a callback may schedule a *same-time, higher-priority* event
          that serial execution would process before the rest of the
          cohort — every entry re-checks the heap top and the
          unprocessed remainder is pushed back when it would lose;
        * a callback may cancel an event later in the cohort — each
          entry re-checks ``cancelled`` at dispatch time, mirroring the
          heap's lazy deletion;
        * a callback may raise (an undefused failure, or
          ``run(until=event)`` stopping the run) — the unprocessed
          remainder is pushed back so the heap is exactly what serial
          ``step()`` would have left behind.
        """
        heap = self._heap
        hooks = self._trace_hooks
        probes = self._probes
        while True:
            # peek() prunes cancelled entries; inf means the heap is
            # drained (or holds only cancelled events).
            when = self.peek()
            if when == _INFINITY or when > deadline:
                return
            batch = [heapq.heappop(heap)]
            while heap and heap[0][0] == when:
                batch.append(heapq.heappop(heap))
            i = 0
            n = len(batch)
            try:
                while i < n:
                    entry = batch[i]
                    event = entry[3]
                    if event.cancelled:
                        i += 1
                        continue
                    if heap and heap[0][0] == when:
                        top = heap[0]
                        if top[1] < entry[1] or (top[1] == entry[1] and top[2] < entry[2]):
                            break  # preempted: remainder goes back
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    assert callbacks is not None, "event processed twice"
                    i += 1
                    for callback in callbacks:
                        if callback is not None:  # dead slot (detached waiter)
                            callback(event)
                    self.events_processed += 1
                    for hook in hooks:
                        hook(when, entry[1], entry[2])
                    for probe in probes:
                        probe()
                    if not event.ok and not event.defused:
                        raise t.cast(BaseException, event.value)
            finally:
                for j in range(i, n):
                    heapq.heappush(heap, batch[j])

    def _run_instrumented(self, deadline: float, tel: "telemetry.Telemetry") -> None:
        """The :meth:`run` loop with event-loop telemetry attached.

        Kept out of the default path entirely: with no telemetry session
        installed, :meth:`run` executes the same tight loop it always
        did.  Here every processed event updates the ``sim.events``
        counter and the heap-depth distribution, and the surrounding
        wall-clock is reported as host time per simulated second.
        """
        start_wall = time.perf_counter()
        start_sim = self._now
        events = tel.registry.counter("sim.events")
        depth_hist = tel.registry.histogram("sim.heap.depth")
        heap = self._heap
        hooks = self._trace_hooks
        probes = self._probes
        peak = 0
        try:
            while True:
                # Cohort dispatch, mirroring _run_cohorts — see there
                # for the three hazards the inner checks guard against.
                when = self.peek()
                if when == _INFINITY or when > deadline:
                    break
                batch = [heapq.heappop(heap)]
                while heap and heap[0][0] == when:
                    batch.append(heapq.heappop(heap))
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        entry = batch[i]
                        event = entry[3]
                        if event.cancelled:
                            i += 1
                            continue
                        if heap and heap[0][0] == when:
                            top = heap[0]
                            if top[1] < entry[1] or (top[1] == entry[1] and top[2] < entry[2]):
                                break  # preempted: remainder goes back
                        # Depth exactly as the serial loop observes it:
                        # the live entry plus everything behind it, with
                        # cancelled entries *ahead* of it already pruned
                        # (serial peek() pops those before measuring).
                        depth = len(heap) + n - i
                        if depth > peak:
                            peak = depth
                        depth_hist.observe(depth)
                        self._now = when
                        callbacks, event.callbacks = event.callbacks, None
                        assert callbacks is not None, "event processed twice"
                        i += 1
                        for callback in callbacks:
                            if callback is not None:  # dead slot (detached waiter)
                                callback(event)
                        self.events_processed += 1
                        for hook in hooks:
                            hook(when, entry[1], entry[2])
                        for probe in probes:
                            probe()
                        events.inc()
                        if not event.ok and not event.defused:
                            raise t.cast(BaseException, event.value)
                finally:
                    for j in range(i, n):
                        heapq.heappush(heap, batch[j])
        finally:
            tel.gauge("sim.heap.peak", peak)
            sim_advance = self._now - start_sim
            tel.count("sim.time_s", sim_advance)
            wall = time.perf_counter() - start_wall
            tel.count("host.sim.run_wall_s", wall)
            if sim_advance > 0:
                tel.observe("host.sim.wall_per_sim_s", wall / sim_advance)

    # -- snapshot seams ------------------------------------------------------
    def run_until_count(self, count: int, deadline: float = _INFINITY) -> int:
        """Process live events until ``events_processed`` reaches ``count``.

        The replay half of cold snapshot restore
        (:mod:`repro.snapshot`): a rebuilt world replays exactly the
        events the captured world had processed, pausing at the same
        event boundary.  Kept separate from :meth:`run` so the hot loop
        stays branch-free.  Stops early if the heap drains or the next
        live event lies beyond ``deadline``; never advances the clock to
        the deadline (event-boundary semantics).  Returns the number of
        events processed by this call.
        """
        if count < self.events_processed:
            raise SimulationError(
                f"run_until_count({count}) is in the past "
                f"(events_processed={self.events_processed})"
            )
        before = self.events_processed
        while self.events_processed < count:
            when = self.peek()
            if when == _INFINITY or when > deadline:
                break
            self.step()
        return self.events_processed - before

    def restore_clock(self, when: float) -> None:
        """Advance the clock to ``when`` without processing events.

        :meth:`run` with a float deadline leaves the clock *at* the
        deadline even when the last event fired earlier; a replay that
        pauses on an event boundary needs this seam to reproduce that
        final clock value exactly.  Moving backwards is an error.
        """
        when = float(when)
        if when < self._now:
            raise SimulationError(
                f"restore_clock({when}) would move time backwards (now={self._now})"
            )
        self._now = when

    def snapshot_state(self) -> dict[str, t.Any]:
        """Structural kernel state for snapshot capture/verification.

        Purely observational: the heap is reported as the sorted list of
        *live* entries (cancelled events are lazily deleted, so their
        physical heap position is timing-dependent and must not leak
        into the captured state).  Event objects are reduced to
        :meth:`repro.simkit.events.Event.describe` dicts — identity that
        is stable across a rebuild-and-replay of the same world.
        """
        live = sorted(
            (entry for entry in self._heap if not entry[3].cancelled),
            key=lambda entry: entry[:3],
        )
        return {
            "now": self._now,
            "seq": self._seq,
            "events_processed": self.events_processed,
            "heap": [
                [when, prio, seq, event.describe()] for when, prio, seq, event in live
            ],
        }

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event.ok:
            event.defused = True
            raise t.cast(BaseException, event.value)
        raise _StopSimulation(event.value)

    # -- probes ---------------------------------------------------------------
    def add_probe(self, probe: t.Callable[[], None]) -> None:
        """Run ``probe()`` after every processed event (in-line checking)."""
        self._probes.append(probe)

    def remove_probe(self, probe: t.Callable[[], None]) -> None:
        """Detach a probe previously added with :meth:`add_probe`."""
        self._probes.remove(probe)

    def add_trace_hook(self, hook: t.Callable[[float, int, int], None]) -> None:
        """Observe every processed event as ``(time, priority, seq)``.

        The sequence number is the heap tiebreaker, so the hook sees the
        exact deterministic processing order — the seam the golden-trace
        digest (:mod:`repro.oracle.golden`) is built on.
        """
        self._trace_hooks.append(hook)

    def remove_trace_hook(self, hook: t.Callable[[float, int, int], None]) -> None:
        """Detach a hook previously added with :meth:`add_trace_hook`."""
        self._trace_hooks.remove(hook)

    # -- convenience ---------------------------------------------------------
    def call_at(self, when: float, func: t.Callable[[], None]) -> Event:
        """Invoke ``func()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.event()
        ev._ok = True  # noqa: SLF001 - kernel-internal fast path
        ev._value = None  # noqa: SLF001
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _ev: func())
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (when, PRIORITY_URGENT, seq, ev))
        return ev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6g} pending={len(self._heap)}>"
