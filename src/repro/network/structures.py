"""The four baseline broadcast structures of Section VII-A.

* **Ring** — the payload is relayed node-to-node in list order; fully
  serial, so every dead node's timeout delays *everything* downstream.
* **Star** — the root contacts every target itself over a bounded pool
  of synchronous connection workers; dead targets pin a worker for the
  full timeout, so latency grows with the failure ratio.
* **Shared memory** — the root posts once to a shared segment and nodes
  pull it; dead nodes simply never pull, leaving latency flat in the
  failure ratio (exactly the paper's observation).
* **Tree** — the k-ary tree of :mod:`repro.fptree.tree` with
  asynchronous child dispatch.  A dead *leaf* only costs its parent a
  (parallel) timeout; a dead *inner* node delays its whole subtree by
  the timeout **plus** the parent's slow synchronous takeover of the
  orphaned grandchildren — the "redesign" cost the paper describes.

The FP-Tree engine in :mod:`repro.fptree.constructor` reuses the tree
engine on a rearranged nodelist.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import ConfigurationError
from repro.fptree.tree import children_bounds
from repro.network.broadcast import BroadcastResult, BroadcastStructure
from repro.telemetry import facade as telemetry

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import NetworkFabric


class RingBroadcast(BroadcastStructure):
    """Serial relay along the target list."""

    name = "ring"

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        result = BroadcastResult(self.name, 0.0, len(targets))
        now = 0.0
        prev = root
        penalty = fabric.config.dead_node_penalty_s
        for nid in targets:
            if fabric.is_reachable(nid):
                now += fabric.transfer_delay(prev, nid, size_bytes)
                if record_arrivals:
                    result.arrivals[nid] = now
                prev = nid
            else:
                now += penalty
                result.n_timeouts += 1
                result.failed += (nid,)
        result.makespan_s = now
        return result


class StarBroadcast(BroadcastStructure):
    """Root-to-everyone over ``concurrency`` synchronous workers.

    The makespan uses the standard list-scheduling bound
    ``max(longest_task, total_work / workers) (+ one latency)`` which is
    exact to within one task length for near-uniform task sizes — the
    regime these broadcasts are in.
    """

    name = "star"

    def __init__(self, concurrency: int = 64) -> None:
        if concurrency < 1:
            raise ConfigurationError("star concurrency must be >= 1")
        self.concurrency = concurrency

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        n = len(targets)
        result = BroadcastResult(self.name, 0.0, n)
        if n == 0:
            return result
        ids = np.asarray(targets, dtype=np.int64)
        alive = fabric.reachability(targets)
        delays = fabric.transfer_delays(root, ids, size_bytes)
        penalty = fabric.config.dead_node_penalty_s
        durations = np.where(alive, delays, penalty)
        result.n_timeouts = int((~alive).sum())
        result.failed = tuple(int(i) for i in ids[~alive])
        total = float(durations.sum())
        longest = float(durations.max())
        result.makespan_s = max(longest, total / self.concurrency)
        if record_arrivals:
            # Approximate arrival: position in the work list over the pool.
            finish = np.cumsum(durations) / self.concurrency
            finish = np.maximum(finish, delays)
            for nid, ok, at in zip(targets, alive, finish):
                if ok:
                    result.arrivals[int(nid)] = float(at)
        return result


class SharedMemoryBroadcast(BroadcastStructure):
    """Post-once / pull-many over a shared segment.

    ``poll_interval_s`` is the mean delay before a node notices the new
    payload.  Failed nodes never pull; nobody waits for them, so the
    makespan is independent of the failure ratio.
    """

    name = "shared-memory"

    def __init__(self, poll_interval_s: float = 0.5, post_overhead_s: float = 0.01) -> None:
        if poll_interval_s <= 0 or post_overhead_s < 0:
            raise ConfigurationError("invalid shared-memory parameters")
        self.poll_interval_s = poll_interval_s
        self.post_overhead_s = post_overhead_s

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        n = len(targets)
        result = BroadcastResult(self.name, 0.0, n)
        if n == 0:
            result.makespan_s = self.post_overhead_s
            return result
        ids = np.asarray(targets, dtype=np.int64)
        alive = fabric.reachability(targets)
        result.failed = tuple(int(i) for i in ids[~alive])
        fetch = fabric.transfer_delays(root, ids, size_bytes)
        # Worst poll phase dominates; pulls happen in parallel.
        arrivals = self.post_overhead_s + self.poll_interval_s + fetch
        live_arrivals = arrivals[alive]
        result.makespan_s = float(live_arrivals.max()) if live_arrivals.size else self.post_overhead_s
        if record_arrivals:
            for nid, ok, at in zip(targets, alive, arrivals):
                if ok:
                    result.arrivals[int(nid)] = float(at)
        return result


class TreeBroadcast(BroadcastStructure):
    """K-ary tree relay with asynchronous dispatch and synchronous takeover.

    The tree shape is the implicit structure of
    :func:`repro.fptree.tree.build_tree` over ``[root] + targets``;
    engines walk index ranges instead of materialising nodes.
    """

    name = "tree"

    def __init__(self, width: int = 32, per_target_root_s: float = 0.0) -> None:
        """Args:
        width: fan-out of every tree level.
        per_target_root_s: serial root-side CPU per *target* (e.g.
            per-node launch credentials); this is the work the ESLURM
            satellite layer parallelises away from the master.
        """
        if width < 2:
            raise ConfigurationError("tree width must be >= 2")
        if per_target_root_s < 0:
            raise ConfigurationError("per-target root cost cannot be negative")
        self.width = width
        self.per_target_root_s = per_target_root_s

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        nodelist = [root, *targets]
        result = BroadcastResult(self.name, 0.0, len(targets))
        if not targets:
            return result
        cfg = fabric.config
        penalty = cfg.dead_node_penalty_s
        overhead = cfg.send_overhead_s
        failed: list[int] = []
        makespan = 0.0
        timeouts = 0
        tel = telemetry.active()

        def dispatch_children(lo: int, hi: int, parent_id: int, ready: float, level: int) -> None:
            """Asynchronous fan-out from a live parent at time ``ready``."""
            nonlocal makespan, timeouts
            for i, (c_lo, c_hi) in enumerate(children_bounds(lo, hi, self.width)):
                child = nodelist[c_lo]
                initiated = ready + (i + 1) * overhead
                if fabric.is_reachable(child):
                    arrival = initiated + fabric.transfer_delay(parent_id, child, size_bytes)
                    makespan = max(makespan, arrival)
                    if tel is not None:
                        tel.observe(f"net.tree.level{level}.arrival_s", arrival)
                    if record_arrivals:
                        result.arrivals[child] = arrival
                    dispatch_children(c_lo, c_hi, child, arrival, level + 1)
                else:
                    timeouts += 1
                    failed.append(child)
                    # Detection itself does not gate any delivery (makespan
                    # is the last *successful* delivery); the takeover of
                    # the orphaned grandchildren starts after the timeout.
                    detected = initiated + penalty
                    takeover(c_lo, c_hi, parent_id, detected, level)

        def takeover(lo: int, hi: int, parent_id: int, start: float, level: int) -> float:
            """Synchronous serial adoption of a dead child's children.

            Returns the time the parent finishes the whole takeover;
            nested takeovers consume the parent's serial time too.
            """
            nonlocal makespan, timeouts
            now = start
            for g_lo, g_hi in children_bounds(lo, hi, self.width):
                grandchild = nodelist[g_lo]
                if fabric.is_reachable(grandchild):
                    now += overhead + fabric.transfer_delay(parent_id, grandchild, size_bytes)
                    makespan = max(makespan, now)
                    if tel is not None:
                        tel.observe(f"net.tree.level{level + 1}.arrival_s", now)
                    if record_arrivals:
                        result.arrivals[grandchild] = now
                    dispatch_children(g_lo, g_hi, grandchild, now, level + 2)
                else:
                    timeouts += 1
                    failed.append(grandchild)
                    now += penalty  # serial: gates the remaining adoptions
                    now = takeover(g_lo, g_hi, parent_id, now, level + 1)
            return now

        dispatch_children(0, len(nodelist), root, self.per_target_root_s * len(targets), 1)
        result.makespan_s = makespan
        result.failed = tuple(failed)
        result.n_timeouts = timeouts
        return result
