"""The four baseline broadcast structures of Section VII-A.

* **Ring** — the payload is relayed node-to-node in list order; fully
  serial, so every dead node's timeout delays *everything* downstream.
* **Star** — the root contacts every target itself over a bounded pool
  of synchronous connection workers; dead targets pin a worker for the
  full timeout, so latency grows with the failure ratio.
* **Shared memory** — the root posts once to a shared segment and nodes
  pull it; dead nodes simply never pull, leaving latency flat in the
  failure ratio (exactly the paper's observation).
* **Tree** — the k-ary tree of :mod:`repro.fptree.tree` with
  asynchronous child dispatch.  A dead *leaf* only costs its parent a
  (parallel) timeout; a dead *inner* node delays its whole subtree by
  the timeout **plus** the parent's slow synchronous takeover of the
  orphaned grandchildren — the "redesign" cost the paper describes.

The FP-Tree engine in :mod:`repro.fptree.constructor` reuses the tree
engine on a rearranged nodelist.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import ConfigurationError
from repro.fptree.tree import children_bounds
from repro.network.broadcast import BroadcastResult, BroadcastStructure
from repro.telemetry import facade as telemetry

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import NetworkFabric


class RingBroadcast(BroadcastStructure):
    """Serial relay along the target list."""

    name = "ring"

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        result = BroadcastResult(self.name, 0.0, len(targets))
        now = 0.0
        prev = root
        penalty = fabric.config.dead_node_penalty_s
        for nid in targets:
            if fabric.is_reachable(nid):
                now += fabric.transfer_delay(prev, nid, size_bytes)
                if record_arrivals:
                    result.arrivals[nid] = now
                prev = nid
            else:
                now += penalty
                result.n_timeouts += 1
                result.failed += (nid,)
        result.makespan_s = now
        return result


class StarBroadcast(BroadcastStructure):
    """Root-to-everyone over ``concurrency`` synchronous workers.

    The makespan uses the standard list-scheduling bound
    ``max(longest_task, total_work / workers) (+ one latency)`` which is
    exact to within one task length for near-uniform task sizes — the
    regime these broadcasts are in.
    """

    name = "star"

    def __init__(self, concurrency: int = 64) -> None:
        if concurrency < 1:
            raise ConfigurationError("star concurrency must be >= 1")
        self.concurrency = concurrency

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        n = len(targets)
        result = BroadcastResult(self.name, 0.0, n)
        if n == 0:
            return result
        ids = np.asarray(targets, dtype=np.int64)
        alive = fabric.reachability(targets)
        delays = fabric.transfer_delays(root, ids, size_bytes)
        penalty = fabric.config.dead_node_penalty_s
        durations = np.where(alive, delays, penalty)
        result.n_timeouts = int((~alive).sum())
        result.failed = tuple(int(i) for i in ids[~alive])
        total = float(durations.sum())
        longest = float(durations.max())
        result.makespan_s = max(longest, total / self.concurrency)
        if record_arrivals:
            # Approximate arrival: position in the work list over the pool.
            finish = np.cumsum(durations) / self.concurrency
            finish = np.maximum(finish, delays)
            for nid, ok, at in zip(targets, alive, finish):
                if ok:
                    result.arrivals[int(nid)] = float(at)
        return result


class SharedMemoryBroadcast(BroadcastStructure):
    """Post-once / pull-many over a shared segment.

    ``poll_interval_s`` is the mean delay before a node notices the new
    payload.  Failed nodes never pull; nobody waits for them, so the
    makespan is independent of the failure ratio.
    """

    name = "shared-memory"

    def __init__(self, poll_interval_s: float = 0.5, post_overhead_s: float = 0.01) -> None:
        if poll_interval_s <= 0 or post_overhead_s < 0:
            raise ConfigurationError("invalid shared-memory parameters")
        self.poll_interval_s = poll_interval_s
        self.post_overhead_s = post_overhead_s

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        n = len(targets)
        result = BroadcastResult(self.name, 0.0, n)
        if n == 0:
            result.makespan_s = self.post_overhead_s
            return result
        ids = np.asarray(targets, dtype=np.int64)
        alive = fabric.reachability(targets)
        result.failed = tuple(int(i) for i in ids[~alive])
        fetch = fabric.transfer_delays(root, ids, size_bytes)
        # Worst poll phase dominates; pulls happen in parallel.
        arrivals = self.post_overhead_s + self.poll_interval_s + fetch
        live_arrivals = arrivals[alive]
        result.makespan_s = float(live_arrivals.max()) if live_arrivals.size else self.post_overhead_s
        if record_arrivals:
            for nid, ok, at in zip(targets, alive, arrivals):
                if ok:
                    result.arrivals[int(nid)] = float(at)
        return result


class _TreeWalk:
    """Shared mutable state for one tree-broadcast evaluation.

    Holds the recursive (scalar) walk the engine always used; the
    vectorised fast path of :class:`TreeBroadcast` delegates the rare
    dead subtrees back to these exact methods so both paths produce
    bit-identical results.  Forest evaluation
    (:meth:`TreeBroadcast.simulate_forest`) runs one combined level
    sweep over many walks and hands each walk its per-tree totals.
    """

    __slots__ = (
        "width",
        "nodelist",
        "size_bytes",
        "fabric",
        "overhead",
        "penalty",
        "tel",
        "arrivals",
        "makespan",
        "timeouts",
        "failed",
    )

    def __init__(
        self,
        width: int,
        nodelist: list[int],
        size_bytes: int,
        fabric: "NetworkFabric",
        arrivals: dict[int, float] | None,
    ) -> None:
        self.width = width
        self.nodelist = nodelist
        self.size_bytes = size_bytes
        self.fabric = fabric
        self.overhead = fabric.config.send_overhead_s
        self.penalty = fabric.config.dead_node_penalty_s
        self.tel = telemetry.active()
        self.arrivals = arrivals
        self.makespan = 0.0
        self.timeouts = 0
        self.failed: list[int] = []

    def dispatch_children(self, lo: int, hi: int, parent_id: int, ready: float, level: int) -> None:
        """Asynchronous fan-out from a live parent at time ``ready``."""
        fabric = self.fabric
        nodelist = self.nodelist
        tel = self.tel
        for i, (c_lo, c_hi) in enumerate(children_bounds(lo, hi, self.width)):
            child = nodelist[c_lo]
            initiated = ready + (i + 1) * self.overhead
            if fabric.is_reachable(child):
                arrival = initiated + fabric.transfer_delay(parent_id, child, self.size_bytes)
                if arrival > self.makespan:
                    self.makespan = arrival
                if tel is not None:
                    tel.observe(f"net.tree.level{level}.arrival_s", arrival)
                if self.arrivals is not None:
                    self.arrivals[child] = arrival
                self.dispatch_children(c_lo, c_hi, child, arrival, level + 1)
            else:
                self.timeouts += 1
                self.failed.append(child)
                # Detection itself does not gate any delivery (makespan
                # is the last *successful* delivery); the takeover of
                # the orphaned grandchildren starts after the timeout.
                detected = initiated + self.penalty
                self.takeover(c_lo, c_hi, parent_id, detected, level)

    def takeover(self, lo: int, hi: int, parent_id: int, start: float, level: int) -> float:
        """Synchronous serial adoption of a dead child's children.

        Returns the time the parent finishes the whole takeover;
        nested takeovers consume the parent's serial time too.
        """
        fabric = self.fabric
        nodelist = self.nodelist
        tel = self.tel
        now = start
        for g_lo, g_hi in children_bounds(lo, hi, self.width):
            grandchild = nodelist[g_lo]
            if fabric.is_reachable(grandchild):
                now += self.overhead + fabric.transfer_delay(parent_id, grandchild, self.size_bytes)
                if now > self.makespan:
                    self.makespan = now
                if tel is not None:
                    tel.observe(f"net.tree.level{level + 1}.arrival_s", now)
                if self.arrivals is not None:
                    self.arrivals[grandchild] = now
                self.dispatch_children(g_lo, g_hi, grandchild, now, level + 2)
            else:
                self.timeouts += 1
                self.failed.append(grandchild)
                now += self.penalty  # serial: gates the remaining adoptions
                now = self.takeover(g_lo, g_hi, parent_id, now, level + 1)
        return now

    def run_vectorized(self, per_target_root_s: float) -> None:
        """Level-order evaluation of the all-alive portion of the tree.

        Processes each level as numpy arrays (child-range arithmetic,
        pairwise delays, histogram observation) and collects dead
        children as *patches*: their subtrees are excluded from the
        sweep and replayed afterwards through the scalar takeover path,
        in ascending-position order — which on this tree (contiguous
        nested ranges, ordered siblings) is exactly the recursion's
        DFS preorder, so ``failed`` ordering matches too.
        """
        nodelist = self.nodelist
        arr = np.asarray(nodelist, dtype=np.int64)
        fabric = self.fabric
        overhead = self.overhead
        width = self.width
        tel = self.tel
        down = fabric.unreachable_ids()
        down_arr = np.fromiter(down, dtype=np.int64, count=len(down)) if down else None
        patches: list[tuple[int, int, int, float, int]] = []
        plo = np.zeros(1, dtype=np.int64)
        phi = np.full(1, len(nodelist), dtype=np.int64)
        pid = arr[:1]
        pready = np.array([per_target_root_s * (len(nodelist) - 1)], dtype=np.float64)
        level = 1
        while plo.size:
            m = phi - plo - 1  # descendant count per live parent
            has = m > 0
            if not has.all():
                plo, phi, pid, pready, m = plo[has], phi[has], pid[has], pready[has], m[has]
            if not plo.size:
                break
            # Child ranges of every parent at this level, flattened; the
            # index arithmetic mirrors fptree._chunk_bounds.
            k = np.minimum(width, m)
            base = m // k
            extra = m - base * k
            total = int(k.sum())
            pidx = np.repeat(np.arange(k.size), k)
            offs = np.cumsum(k) - k
            j = np.arange(total, dtype=np.int64) - offs[pidx]
            c_lo = plo[pidx] + 1 + j * base[pidx] + np.minimum(j, extra[pidx])
            c_hi = c_lo + base[pidx] + (j < extra[pidx])
            child = arr[c_lo]
            initiated = pready[pidx] + (j + 1) * overhead
            parent_ids = pid[pidx]
            if down_arr is not None:
                dead = np.isin(child, down_arr)
                if dead.any():
                    for i in np.nonzero(dead)[0]:
                        patches.append(
                            (int(c_lo[i]), int(c_hi[i]), int(parent_ids[i]), float(initiated[i]), level)
                        )
                    live = ~dead
                    c_lo = c_lo[live]
                    c_hi = c_hi[live]
                    child = child[live]
                    initiated = initiated[live]
                    parent_ids = parent_ids[live]
            if child.size:
                delays = fabric.transfer_delays_pairwise(parent_ids, child, self.size_bytes)
                arrival = initiated + delays
                peak = float(arrival.max())
                if peak > self.makespan:
                    self.makespan = peak
                if tel is not None:
                    tel.observe_many(f"net.tree.level{level}.arrival_s", arrival)
                if self.arrivals is not None:
                    self.arrivals.update(zip(child.tolist(), arrival.tolist()))
            else:
                arrival = initiated
            plo, phi, pid, pready = c_lo, c_hi, child, arrival
            level += 1
        for p_lo, p_hi, parent_id, initiated_s, p_level in sorted(patches):
            self.timeouts += 1
            self.failed.append(nodelist[p_lo])
            self.takeover(p_lo, p_hi, parent_id, initiated_s + self.penalty, p_level)


def _run_forest(walks: list[_TreeWalk], per_target_root_s: float) -> None:
    """One level-order sweep over many independent trees at once.

    The arithmetic per tree is exactly :meth:`_TreeWalk.run_vectorized`
    — the trees merely share each level's numpy dispatches.  Children
    are generated parent-major and parents stay tree-major, so every
    level's arrays are contiguous per tree; per-tree makespans fall out
    of slice maxima and dead children become per-tree scalar patches,
    replayed in ascending position order (= DFS preorder) like the
    single-tree fast path does.
    """
    fabric = walks[0].fabric
    overhead = walks[0].overhead
    width = walks[0].width
    size_bytes = walks[0].size_bytes
    tel = walks[0].tel
    n_trees = len(walks)
    offsets = np.zeros(n_trees, dtype=np.int64)
    all_nodes: list[int] = []
    for i, walk in enumerate(walks):
        offsets[i] = len(all_nodes)
        all_nodes.extend(walk.nodelist)
    arr = np.asarray(all_nodes, dtype=np.int64)
    down = fabric.unreachable_ids()
    down_arr = np.fromiter(down, dtype=np.int64, count=len(down)) if down else None
    patches: list[tuple[int, int, int, int, float, int]] = []
    plo = offsets.copy()
    phi = offsets + np.array([len(w.nodelist) for w in walks], dtype=np.int64)
    pid = arr[plo]
    pready = np.array(
        [per_target_root_s * (len(w.nodelist) - 1) for w in walks], dtype=np.float64
    )
    tid = np.arange(n_trees, dtype=np.int64)
    makespans = np.zeros(n_trees, dtype=np.float64)
    level = 1
    while plo.size:
        m = phi - plo - 1
        has = m > 0
        if not has.all():
            plo, phi, pid, pready, tid, m = (
                plo[has], phi[has], pid[has], pready[has], tid[has], m[has]
            )
        if not plo.size:
            break
        k = np.minimum(width, m)
        base = m // k
        extra = m - base * k
        total = int(k.sum())
        pidx = np.repeat(np.arange(k.size), k)
        offs = np.cumsum(k) - k
        j = np.arange(total, dtype=np.int64) - offs[pidx]
        c_lo = plo[pidx] + 1 + j * base[pidx] + np.minimum(j, extra[pidx])
        c_hi = c_lo + base[pidx] + (j < extra[pidx])
        child = arr[c_lo]
        initiated = pready[pidx] + (j + 1) * overhead
        parent_ids = pid[pidx]
        t_child = tid[pidx]
        if down_arr is not None:
            dead = np.isin(child, down_arr)
            if dead.any():
                for i in np.nonzero(dead)[0]:
                    patches.append(
                        (
                            int(t_child[i]), int(c_lo[i]), int(c_hi[i]),
                            int(parent_ids[i]), float(initiated[i]), level,
                        )
                    )
                live = ~dead
                c_lo = c_lo[live]
                c_hi = c_hi[live]
                child = child[live]
                initiated = initiated[live]
                parent_ids = parent_ids[live]
                t_child = t_child[live]
        if child.size:
            delays = fabric.transfer_delays_pairwise(parent_ids, child, size_bytes)
            arrival = initiated + delays
            # t_child is sorted (tree-major level arrays): slice maxima.
            bounds = np.searchsorted(t_child, np.arange(n_trees + 1))
            for i in range(n_trees):
                s, e = int(bounds[i]), int(bounds[i + 1])
                if e > s:
                    peak = float(arrival[s:e].max())
                    if peak > makespans[i]:
                        makespans[i] = peak
            if tel is not None:
                tel.observe_many(f"net.tree.level{level}.arrival_s", arrival)
        else:
            arrival = initiated
        plo, phi, pid, pready, tid = c_lo, c_hi, child, arrival, t_child
        level += 1
    for i, walk in enumerate(walks):
        walk.makespan = float(makespans[i])
    for t_i, p_lo, p_hi, parent_id, initiated_s, p_level in sorted(patches):
        walk = walks[t_i]
        off = int(offsets[t_i])
        walk.timeouts += 1
        walk.failed.append(walk.nodelist[p_lo - off])
        walk.takeover(p_lo - off, p_hi - off, parent_id, initiated_s + walk.penalty, p_level)


class TreeBroadcast(BroadcastStructure):
    """K-ary tree relay with asynchronous dispatch and synchronous takeover.

    The tree shape is the implicit structure of
    :func:`repro.fptree.tree.build_tree` over ``[root] + targets``;
    engines walk index ranges instead of materialising nodes.  Large
    jitter-free broadcasts take a vectorised level-order walk whose
    float arithmetic matches the recursion operation-for-operation
    (same results, orders of magnitude faster at machine scale).
    """

    name = "tree"

    #: below this many targets the per-level numpy batching costs more
    #: than the recursion it replaces
    FAST_PATH_MIN_TARGETS = 64

    def __init__(self, width: int = 32, per_target_root_s: float = 0.0) -> None:
        """Args:
        width: fan-out of every tree level.
        per_target_root_s: serial root-side CPU per *target* (e.g.
            per-node launch credentials); this is the work the ESLURM
            satellite layer parallelises away from the master.
        """
        if width < 2:
            raise ConfigurationError("tree width must be >= 2")
        if per_target_root_s < 0:
            raise ConfigurationError("per-target root cost cannot be negative")
        self.width = width
        self.per_target_root_s = per_target_root_s

    def simulate(self, root, targets, size_bytes, fabric, record_arrivals=False):
        self._validate(targets, size_bytes)
        result = BroadcastResult(self.name, 0.0, len(targets))
        if not targets:
            return result
        nodelist = [root, *targets]
        walk = _TreeWalk(
            self.width, nodelist, size_bytes, fabric, result.arrivals if record_arrivals else None
        )
        # Jitter draws RNG per scalar transfer, so only the jitter-free
        # configuration is safe to batch.
        if len(targets) >= self.FAST_PATH_MIN_TARGETS and fabric.config.jitter_frac == 0.0:
            walk.run_vectorized(self.per_target_root_s)
        else:
            walk.dispatch_children(
                0, len(nodelist), root, self.per_target_root_s * len(targets), 1
            )
        result.makespan_s = walk.makespan
        result.failed = tuple(walk.failed)
        result.n_timeouts = walk.timeouts
        return result

    def simulate_forest(self, tasks, size_bytes, fabric):
        """Evaluate many independent trees over the same fabric at once.

        Result list matches ``tasks`` (one :class:`BroadcastResult` per
        ``(root, targets)``) and every entry is bit-identical to a
        standalone :meth:`simulate` call; the trees only share the
        per-level numpy dispatches.  Falls back to sequential scalar
        evaluation under jitter (per-transfer RNG draws must keep their
        order) or when the combined forest is too small to batch.
        """
        total = sum(len(targets) for _, targets in tasks)
        if fabric.config.jitter_frac != 0.0 or total < self.FAST_PATH_MIN_TARGETS:
            return [self.simulate(root, targets, size_bytes, fabric) for root, targets in tasks]
        results: list[BroadcastResult] = []
        walks: list[_TreeWalk] = []
        for root, targets in tasks:
            self._validate(targets, size_bytes)
            result = BroadcastResult(self.name, 0.0, len(targets))
            results.append(result)
            if targets:
                walks.append(_TreeWalk(self.width, [root, *targets], size_bytes, fabric, None))
            else:
                walks.append(None)  # type: ignore[arg-type]
        live = [w for w in walks if w is not None]
        if live:
            _run_forest(live, self.per_target_root_s)
        for result, walk in zip(results, walks):
            if walk is None:
                continue
            result.makespan_s = walk.makespan
            result.failed = tuple(walk.failed)
            result.n_timeouts = walk.timeouts
        return results
