"""Concurrent-connection accounting.

Fig. 7e / 9c / 9f measure the *number of concurrent TCP sockets* held
by the master (and satellite) daemons.  The tracker is a plain counter
with a time series behind it so experiments can report instantaneous,
mean, and peak connection counts exactly like the paper's once-a-second
sampling.
"""

from __future__ import annotations

import typing as t

from repro.errors import NetworkError
from repro.simkit.monitor import TimeSeries

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


class ConnectionTracker:
    """Tracks concurrent connections held by one daemon."""

    def __init__(self, sim: "Simulator", owner: str = "") -> None:
        self.sim = sim
        self.owner = owner
        self.current = 0
        self.series = TimeSeries(f"{owner}.sockets")
        self.total_opened = 0

    def open(self, count: int = 1) -> None:
        """Open ``count`` connections."""
        if count < 0:
            raise NetworkError("cannot open a negative number of connections")
        self.current += count
        self.total_opened += count
        self.series.record(self.sim.now, self.current)

    def close(self, count: int = 1) -> None:
        """Close ``count`` connections."""
        if count < 0:
            raise NetworkError("cannot close a negative number of connections")
        if count > self.current:
            raise NetworkError(
                f"{self.owner}: closing {count} connections but only {self.current} open"
            )
        self.current -= count
        self.series.record(self.sim.now, self.current)

    def pulse(self, count: int, hold_s: float) -> None:
        """Open ``count`` connections now and close them after ``hold_s``.

        The common pattern for request/response traffic: the connection
        count spikes for the duration of the exchange.
        """
        self.open(count)
        self.sim.call_at(self.sim.now + hold_s, lambda: self.close(count))

    # -- statistics ------------------------------------------------------
    def peak(self) -> float:
        return self.series.max()

    def mean(self) -> float:
        """Time-weighted average concurrent connections."""
        return self.series.time_average(until=self.sim.now) if len(self.series) else 0.0
