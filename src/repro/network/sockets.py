"""Concurrent-connection accounting.

Fig. 7e / 9c / 9f measure the *number of concurrent TCP sockets* held
by the master (and satellite) daemons.  The tracker is a plain counter
with a time series behind it so experiments can report instantaneous,
mean, and peak connection counts exactly like the paper's once-a-second
sampling.

Pulse closes are *lazy*: :meth:`pulse` does not schedule a simulator
event per close (the RM's periodic traffic would otherwise put tens of
thousands of close events on the heap per simulated day).  Instead the
close is pushed onto a min-heap of ``(close_time, seq, count)`` and
applied — with its original timestamp, in close-time order — the next
time the tracker is touched.  Every public read or write drains the
heap up to the current simulated time first, so observable state is
indistinguishable from eagerly-scheduled closes: series entries carry
the true close instants, ties between closes apply in pulse order
(exactly the event-sequence order the eager version used), and closes
beyond the simulation horizon are never applied (their events would
never have fired).
"""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import NetworkError
from repro.simkit.monitor import TimeSeries

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


class ConnectionTracker:
    """Tracks concurrent connections held by one daemon."""

    def __init__(self, sim: "Simulator", owner: str = "") -> None:
        self.sim = sim
        self.owner = owner
        self._current = 0
        self.series = TimeSeries(f"{owner}.sockets")
        self.total_opened = 0
        #: pending pulse closes: (close_time, pulse_seq, count)
        self._pending: list[tuple[float, int, int]] = []
        self._pulse_seq = 0

    @property
    def current(self) -> int:
        """Connections open *now* (applies any due pulse closes first)."""
        self._drain(self.sim.now)
        return self._current

    def _drain(self, now: float) -> None:
        pending = self._pending
        while pending and pending[0][0] <= now:
            close_at, _, count = heapq.heappop(pending)
            self._current -= count
            self.series.record(close_at, self._current)

    def sync(self) -> None:
        """Apply every pulse close due by now (snapshot/report hook)."""
        self._drain(self.sim.now)

    def open(self, count: int = 1) -> None:
        """Open ``count`` connections."""
        if count < 0:
            raise NetworkError("cannot open a negative number of connections")
        self._drain(self.sim.now)
        self._current += count
        self.total_opened += count
        self.series.record(self.sim.now, self._current)

    def close(self, count: int = 1) -> None:
        """Close ``count`` connections."""
        if count < 0:
            raise NetworkError("cannot close a negative number of connections")
        self._drain(self.sim.now)
        if count > self._current:
            raise NetworkError(
                f"{self.owner}: closing {count} connections but only {self._current} open"
            )
        self._current -= count
        self.series.record(self.sim.now, self._current)

    def pulse(self, count: int, hold_s: float) -> None:
        """Open ``count`` connections now and close them after ``hold_s``.

        The common pattern for request/response traffic: the connection
        count spikes for the duration of the exchange.  The close costs
        no simulator event — see the module docstring.
        """
        self.open(count)
        self._pulse_seq += 1
        heapq.heappush(self._pending, (self.sim.now + hold_s, self._pulse_seq, count))

    # -- statistics ------------------------------------------------------
    def peak(self) -> float:
        self._drain(self.sim.now)
        return self.series.max()

    def mean(self) -> float:
        """Time-weighted average concurrent connections."""
        self._drain(self.sim.now)
        return self.series.time_average(until=self.sim.now) if len(self.series) else 0.0
