"""Message kinds and sizes exchanged by the resource managers.

Sizes are calibrated to what Slurm-family RMs actually put on the wire:
job-launch credentials and environment run to tens of kilobytes, while
heartbeats are a couple of hundred bytes.
"""

from __future__ import annotations

import enum
import itertools
import typing as t
from dataclasses import dataclass, field


class MessageKind(enum.Enum):
    """Protocol message types (superset of what the experiments use)."""

    JOB_LAUNCH = "job_launch"  # "Message 1" of Fig. 8a
    JOB_TERMINATE = "job_terminate"  # "Message 2" of Fig. 8a
    HEARTBEAT = "heartbeat"
    HEARTBEAT_ACK = "heartbeat_ack"
    NODE_STATUS = "node_status"
    USER_REQUEST = "user_request"  # squeue/sbatch-style RPC
    USER_REPLY = "user_reply"
    BROADCAST_TASK = "broadcast_task"  # master -> satellite sub-task
    AGGREGATED_REPLY = "aggregated_reply"  # satellite -> master roll-up
    SHUTDOWN = "shutdown"


#: Default payload sizes in bytes per message kind.
DEFAULT_SIZES: dict[MessageKind, int] = {
    MessageKind.JOB_LAUNCH: 16_384,
    MessageKind.JOB_TERMINATE: 2_048,
    MessageKind.HEARTBEAT: 256,
    MessageKind.HEARTBEAT_ACK: 128,
    MessageKind.NODE_STATUS: 512,
    MessageKind.USER_REQUEST: 1_024,
    MessageKind.USER_REPLY: 4_096,
    MessageKind.BROADCAST_TASK: 8_192,
    MessageKind.AGGREGATED_REPLY: 4_096,
    MessageKind.SHUTDOWN: 64,
}

_msg_counter = itertools.count()


@dataclass
class Message:
    """One protocol message.

    Attributes:
        kind: protocol message type.
        src / dst: node ids (dst may be a broadcast target list owner).
        size_bytes: wire size; defaults from :data:`DEFAULT_SIZES`.
        payload: arbitrary application data (not serialised).
        msg_id: unique id for tracing.
    """

    kind: MessageKind
    src: int
    dst: int
    size_bytes: int = 0
    payload: t.Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = DEFAULT_SIZES.get(self.kind, 1_024)

    def reply(self, kind: MessageKind, payload: t.Any = None, size_bytes: int = 0) -> "Message":
        """Construct the response message (dst/src swapped)."""
        return Message(kind=kind, src=self.dst, dst=self.src, size_bytes=size_bytes, payload=payload)
