"""Latency/bandwidth model of the interconnect.

The model decomposes one point-to-point transfer into::

    delay = send_overhead (sender CPU, serialises per-connection work)
          + hop_latency[hop_level]         (propagation, by distance class)
          + size_bytes / bandwidth          (serialisation on a 25 Gb/s lane)

A transfer to a dead node costs ``connect_timeout * (1 + retries)``
before the sender gives up — the paper sets three connection retries in
its structure comparison (Section VII-A), and this timeout term is what
turns failed nodes into latency, which the FP-Tree then bounds.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import HopLevel
from repro.errors import ConfigurationError
from repro.network.message import Message
from repro.telemetry import facade as telemetry

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import Cluster
    from repro.simkit.core import Simulator


@dataclass(frozen=True)
class FabricConfig:
    """Interconnect parameters.

    Defaults follow the paper's hardware description (25 Gb/s serial
    lanes) with conservative software overheads typical of socket-based
    RM daemons.

    Args:
        bandwidth_gbps: per-lane bandwidth.
        send_overhead_s: sender-side CPU per connection (setup,
            serialisation); this is the term that serialises fan-out.
        hop_latency_s: propagation latency per hop level, indexed by
            :class:`HopLevel` (5 entries).
        connect_timeout_s: how long a connect to a dead node blocks.
        retries: reconnect attempts before declaring the peer dead
            (paper: 3).
        jitter_frac: multiplicative latency jitter (uniform ±frac);
            0 disables and keeps transfers fully deterministic.
    """

    bandwidth_gbps: float = 25.0
    send_overhead_s: float = 0.0008
    hop_latency_s: tuple[float, float, float, float, float] = (
        0.0,      # same node
        2e-6,     # same board
        5e-6,     # same chassis
        1.2e-5,   # same rack
        2.5e-5,   # cross rack
    )
    connect_timeout_s: float = 1.0
    retries: int = 3
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.send_overhead_s < 0 or self.connect_timeout_s <= 0:
            raise ConfigurationError("invalid overhead/timeout")
        if self.retries < 0:
            raise ConfigurationError("retries cannot be negative")
        if len(self.hop_latency_s) != 5:
            raise ConfigurationError("hop_latency_s needs one entry per HopLevel")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError("jitter_frac must be in [0, 1)")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    @property
    def dead_node_penalty_s(self) -> float:
        """Time lost discovering that a peer is dead."""
        return self.connect_timeout_s * (1 + self.retries)


class NetworkFabric:
    """Evaluates transfer delays against the live cluster state."""

    def __init__(self, sim: "Simulator", cluster: "Cluster", config: FabricConfig | None = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config or FabricConfig()
        self._rng = sim.rng.stream("fabric")
        #: hop-latency table as an array, for the vectorised fancy-index
        self._hop_lat = np.asarray(self.config.hop_latency_s)
        #: (cluster.version, frozenset of unresponsive ids) — see
        #: :meth:`unreachable_ids`
        self._unreachable_cache: tuple[int, frozenset[int]] | None = None

    # -- scalar API --------------------------------------------------------
    def transfer_delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Delay for one successful transfer (does not check liveness)."""
        tel = telemetry.active()
        if tel is not None:
            tel.count("net.messages")
            tel.count("net.bytes", size_bytes)
        cfg = self.config
        hop = self.cluster.topology.hop_level(
            min(src, self.cluster.n_nodes - 1) if src < self.cluster.n_nodes else 0,
            min(dst, self.cluster.n_nodes - 1) if dst < self.cluster.n_nodes else 0,
        )
        delay = cfg.send_overhead_s + cfg.hop_latency_s[hop] + size_bytes / cfg.bytes_per_second
        if cfg.jitter_frac:
            delay *= 1.0 + cfg.jitter_frac * (2.0 * self._rng.random() - 1.0)
        return delay

    def is_reachable(self, node_id: int) -> bool:
        """Whether the target currently answers connections."""
        return self.cluster.is_responsive(node_id)

    def unreachable_ids(self) -> frozenset[int]:
        """Ids of currently-unresponsive nodes (compute, master, satellites).

        Cached against ``cluster.version`` — the documented contract is
        that every liveness change bumps it.  The cluster maintains the
        unresponsive-id set incrementally (O(changed) per failure or
        recovery event), so refreshing the cache never sweeps the node
        table at machine scale.  Code flipping :class:`Node` state
        directly (bypassing the cluster/injector helpers) must call
        ``cluster.bump_version()`` itself.
        """
        ver = self.cluster.version
        cached = self._unreachable_cache
        if cached is not None and cached[0] == ver:
            return cached[1]
        ids = self.cluster.unresponsive_ids()
        self._unreachable_cache = (ver, ids)
        return ids

    def attempt_delay(self, src: int, dst: int, size_bytes: int) -> tuple[float, bool]:
        """``(delay, delivered)`` for one attempt against live state."""
        if self.is_reachable(dst):
            return self.transfer_delay(src, dst, size_bytes), True
        telemetry.count("net.timeouts")
        return self.config.dead_node_penalty_s, False

    # -- vectorized API (hot path for broadcast evaluation) --------------
    def transfer_delays(self, src: int, dsts: np.ndarray, size_bytes: int) -> np.ndarray:
        """Vectorised :meth:`transfer_delay` for many destinations.

        Hop levels are computed from topology coordinates without Python
        loops; used by the star/tree engines at full machine scale.
        """
        cfg = self.config
        topo = self.cluster.topology
        dsts = np.asarray(dsts, dtype=np.int64)
        tel = telemetry.active()
        if tel is not None:
            tel.count("net.messages", len(dsts))
            tel.count("net.bytes", size_bytes * len(dsts))
        n = self.cluster.n_nodes
        src_c = min(src, n - 1) if src < n else 0
        dst_c = np.where(dsts < n, np.minimum(dsts, n - 1), 0)
        src_board = src_c // topo.nodes_per_board
        src_chassis = src_c // topo.nodes_per_chassis
        src_rack = src_c // topo.nodes_per_rack
        dst_board = dst_c // topo.nodes_per_board
        dst_chassis = dst_c // topo.nodes_per_chassis
        dst_rack = dst_c // topo.nodes_per_rack
        hop = np.full(dsts.shape, int(HopLevel.CROSS_RACK), dtype=np.int64)
        hop[dst_rack == src_rack] = int(HopLevel.SAME_RACK)
        hop[dst_chassis == src_chassis] = int(HopLevel.SAME_CHASSIS)
        hop[dst_board == src_board] = int(HopLevel.SAME_BOARD)
        hop[dst_c == src_c] = int(HopLevel.SAME_NODE)
        lat = self._hop_lat[hop]
        delays = cfg.send_overhead_s + lat + size_bytes / cfg.bytes_per_second
        if cfg.jitter_frac:
            delays = delays * (1.0 + cfg.jitter_frac * (2.0 * self._rng.random(delays.shape) - 1.0))
        return delays

    def transfer_delays_pairwise(
        self, srcs: np.ndarray, dsts: np.ndarray, size_bytes: int
    ) -> np.ndarray:
        """Vectorised :meth:`transfer_delay` for per-pair (src, dst) links.

        The arithmetic mirrors the scalar path operation-for-operation
        (``overhead + hop_latency + size/bandwidth``, left to right), so
        with jitter disabled the results are bit-identical to calling
        :meth:`transfer_delay` per pair — which is what lets the tree
        engine's vectorised walk reproduce the recursive walk exactly.
        With jitter enabled the draw order differs from per-pair scalar
        calls; callers needing scalar-identical jitter must stay scalar.
        """
        cfg = self.config
        topo = self.cluster.topology
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        tel = telemetry.active()
        if tel is not None:
            tel.count("net.messages", len(dsts))
            tel.count("net.bytes", size_bytes * len(dsts))
        n = self.cluster.n_nodes
        src_c = np.where(srcs < n, np.minimum(srcs, n - 1), 0)
        dst_c = np.where(dsts < n, np.minimum(dsts, n - 1), 0)
        hop = np.full(dsts.shape, int(HopLevel.CROSS_RACK), dtype=np.int64)
        hop[dst_c // topo.nodes_per_rack == src_c // topo.nodes_per_rack] = int(HopLevel.SAME_RACK)
        hop[dst_c // topo.nodes_per_chassis == src_c // topo.nodes_per_chassis] = int(
            HopLevel.SAME_CHASSIS
        )
        hop[dst_c // topo.nodes_per_board == src_c // topo.nodes_per_board] = int(
            HopLevel.SAME_BOARD
        )
        hop[dst_c == src_c] = int(HopLevel.SAME_NODE)
        lat = self._hop_lat[hop]
        delays = cfg.send_overhead_s + lat + size_bytes / cfg.bytes_per_second
        if cfg.jitter_frac:
            delays = delays * (1.0 + cfg.jitter_frac * (2.0 * self._rng.random(delays.shape) - 1.0))
        return delays

    def reachability(self, node_ids: t.Sequence[int]) -> np.ndarray:
        """Boolean liveness mask over ``node_ids``."""
        if len(node_ids) >= 64:
            # machine-scale sweeps: one set lookup per *down* node
            # instead of one attribute walk per target
            down = self.unreachable_ids()
            if not down:
                return np.ones(len(node_ids), dtype=bool)
            ids = np.asarray(node_ids, dtype=np.int64)
            return ~np.isin(ids, np.fromiter(down, dtype=np.int64, count=len(down)))
        return np.fromiter(
            (self.cluster.is_responsive(nid) for nid in node_ids),
            dtype=bool,
            count=len(node_ids),
        )

    # -- DES-level helper --------------------------------------------------
    def deliver(self, message: Message) -> "t.Any":
        """Event that fires when ``message`` arrives (or fails) at ``dst``.

        Success value is the message; unreachable destinations make the
        event fire after the dead-node penalty with value ``None``.
        """
        delay, ok = self.attempt_delay(message.src, message.dst, message.size_bytes)
        return self.sim.timeout(delay, value=message if ok else None)
