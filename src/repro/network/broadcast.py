"""Broadcast engine interface and result record.

A broadcast engine answers: *given the live cluster state, how long does
disseminating one message of this size from this root to these targets
take, and who never got it?*  Engines are deterministic computations
over the :class:`~repro.network.fabric.NetworkFabric` latency model; the
RM layer invokes them for job-launch/termination messages and heartbeat
rounds, and the Fig. 8 experiments invoke them directly.
"""

from __future__ import annotations

import typing as t
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.telemetry import facade as telemetry

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import NetworkFabric
    from repro.telemetry.metrics import MetricsRegistry


@dataclass
class BroadcastResult:
    """Outcome of one simulated broadcast.

    Attributes:
        structure: engine name (``ring``, ``star``, ...).
        makespan_s: time from dispatch until the last successful
            delivery (including all timeout penalties on the way).
        n_targets: number of intended recipients (root excluded).
        failed: ids of targets the payload never reached.
        n_timeouts: dead-node timeout events encountered.
        arrivals: optional per-node delivery times (populated only when
            the engine was asked to ``record_arrivals``).
    """

    structure: str
    makespan_s: float
    n_targets: int
    failed: tuple[int, ...] = ()
    n_timeouts: int = 0
    arrivals: dict[int, float] = field(default_factory=dict)

    @property
    def n_delivered(self) -> int:
        return self.n_targets - len(self.failed)

    @property
    def delivery_ratio(self) -> float:
        return self.n_delivered / self.n_targets if self.n_targets else 1.0


class BroadcastStructure:
    """Base class for broadcast engines."""

    #: engine name used in reports and figures
    name = "abstract"

    def simulate(
        self,
        root: int,
        targets: t.Sequence[int],
        size_bytes: int,
        fabric: "NetworkFabric",
        record_arrivals: bool = False,
    ) -> BroadcastResult:
        """Evaluate one broadcast; see :class:`BroadcastResult`."""
        raise NotImplementedError

    def simulate_forest(
        self,
        tasks: t.Sequence[tuple[int, t.Sequence[int]]],
        size_bytes: int,
        fabric: "NetworkFabric",
    ) -> list[BroadcastResult]:
        """Evaluate many ``(root, targets)`` broadcasts over one fabric.

        Engines that can batch (the tree engine's multi-root level
        sweep) override this; the default is plain sequential
        evaluation, so every engine accepts forest calls.
        """
        return [self.simulate(root, targets, size_bytes, fabric) for root, targets in tasks]

    @staticmethod
    def _validate(targets: t.Sequence[int], size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("broadcast payload size must be positive")
        if len(set(targets)) != len(targets):
            raise ConfigurationError("broadcast target list contains duplicates")


class MemoizedBroadcast(BroadcastStructure):
    """LRU cache around a deterministic broadcast engine.

    Engines are pure functions of ``(root, targets, size, liveness)``
    when jitter is off, and ``cluster.version`` is the documented proxy
    for liveness (bumped on every change).  Steady-state traffic — the
    heartbeat sweep re-evaluated every round, repeated launch/terminate
    node sets — therefore hits the cache until the next failure event.

    Telemetry stays exact: the metrics a computation records are
    captured as a delta registry at miss time and re-merged into the
    active session on every hit, so counters and histograms match a
    cache-free run same-seed-deterministically.

    Bypasses (delegates straight to the inner engine): jitter enabled,
    or a hit whose delta was captured with telemetry off while it is
    now on.
    """

    def __init__(self, inner: BroadcastStructure, maxsize: int = 64) -> None:
        self.inner = inner
        self.name = inner.name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._fabric: "NetworkFabric | None" = None
        self._cache: "OrderedDict[tuple, tuple[BroadcastResult, MetricsRegistry | None]]" = (
            OrderedDict()
        )

    def simulate(
        self,
        root: int,
        targets: t.Sequence[int],
        size_bytes: int,
        fabric: "NetworkFabric",
        record_arrivals: bool = False,
    ) -> BroadcastResult:
        if fabric.config.jitter_frac:
            return self.inner.simulate(root, targets, size_bytes, fabric, record_arrivals)
        if fabric is not self._fabric:
            self._cache.clear()
            self._fabric = fabric
        tel = telemetry.active()
        key = (root, tuple(targets), size_bytes, fabric.cluster.version, record_arrivals)
        entry = self._cache.get(key)
        if entry is not None and not (tel is not None and entry[1] is None):
            self._cache.move_to_end(key)
            self.hits += 1
            result, delta = entry
            if tel is not None and delta is not None:
                tel.registry.merge(delta)
            return self._copy(result)
        self.misses += 1
        with telemetry.capture_delta() as delta:
            result = self.inner.simulate(root, targets, size_bytes, fabric, record_arrivals)
        self._cache[key] = (result, delta)
        while len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
        return self._copy(result)

    def simulate_forest(
        self,
        tasks: t.Sequence[tuple[int, t.Sequence[int]]],
        size_bytes: int,
        fabric: "NetworkFabric",
    ) -> list[BroadcastResult]:
        """Forest evaluation memoized as one unit.

        A forest entry is keyed on every tree's (root, targets) plus
        size and liveness version, with a single telemetry delta for the
        whole batch — the relay/heartbeat call sites re-evaluate all
        their parts together, so per-tree granularity would buy nothing.
        """
        if fabric.config.jitter_frac:
            return self.inner.simulate_forest(tasks, size_bytes, fabric)
        if fabric is not self._fabric:
            self._cache.clear()
            self._fabric = fabric
        tel = telemetry.active()
        key = (
            "forest",
            tuple((root, tuple(targets)) for root, targets in tasks),
            size_bytes,
            fabric.cluster.version,
        )
        entry = self._cache.get(key)
        if entry is not None and not (tel is not None and entry[1] is None):
            self._cache.move_to_end(key)
            self.hits += 1
            results, delta = entry
            if tel is not None and delta is not None:
                tel.registry.merge(delta)
            return [self._copy(r) for r in results]
        self.misses += 1
        with telemetry.capture_delta() as delta:
            results = self.inner.simulate_forest(tasks, size_bytes, fabric)
        self._cache[key] = (results, delta)
        while len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
        return [self._copy(r) for r in results]

    @staticmethod
    def _copy(result: BroadcastResult) -> BroadcastResult:
        # Callers mutate results (ack-wait adjustments); never hand out
        # the cached instance itself.
        return replace(result, arrivals=dict(result.arrivals))
