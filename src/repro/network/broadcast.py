"""Broadcast engine interface and result record.

A broadcast engine answers: *given the live cluster state, how long does
disseminating one message of this size from this root to these targets
take, and who never got it?*  Engines are deterministic computations
over the :class:`~repro.network.fabric.NetworkFabric` latency model; the
RM layer invokes them for job-launch/termination messages and heartbeat
rounds, and the Fig. 8 experiments invoke them directly.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import NetworkFabric


@dataclass
class BroadcastResult:
    """Outcome of one simulated broadcast.

    Attributes:
        structure: engine name (``ring``, ``star``, ...).
        makespan_s: time from dispatch until the last successful
            delivery (including all timeout penalties on the way).
        n_targets: number of intended recipients (root excluded).
        failed: ids of targets the payload never reached.
        n_timeouts: dead-node timeout events encountered.
        arrivals: optional per-node delivery times (populated only when
            the engine was asked to ``record_arrivals``).
    """

    structure: str
    makespan_s: float
    n_targets: int
    failed: tuple[int, ...] = ()
    n_timeouts: int = 0
    arrivals: dict[int, float] = field(default_factory=dict)

    @property
    def n_delivered(self) -> int:
        return self.n_targets - len(self.failed)

    @property
    def delivery_ratio(self) -> float:
        return self.n_delivered / self.n_targets if self.n_targets else 1.0


class BroadcastStructure:
    """Base class for broadcast engines."""

    #: engine name used in reports and figures
    name = "abstract"

    def simulate(
        self,
        root: int,
        targets: t.Sequence[int],
        size_bytes: int,
        fabric: "NetworkFabric",
        record_arrivals: bool = False,
    ) -> BroadcastResult:
        """Evaluate one broadcast; see :class:`BroadcastResult`."""
        raise NotImplementedError

    @staticmethod
    def _validate(targets: t.Sequence[int], size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("broadcast payload size must be positive")
        if len(set(targets)) != len(targets):
            raise ConfigurationError("broadcast target list contains duplicates")
