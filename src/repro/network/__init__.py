"""Network substrate: messages, latency fabric, sockets, broadcast engines.

The fabric models the Tianhe proprietary interconnect at the level the
paper's experiments need: per-hop latency classes, 25 Gb/s links,
connection-setup overheads, dead-node timeouts and retries.  Broadcast
*structures* (ring, star, shared-memory, k-ary tree — Section VII-A's
comparison set) are evaluated as deterministic computations over that
model, which keeps full-machine (20K+ node) experiments fast while
preserving exactly the failure semantics the paper describes: a failed
node times out instead of relaying, and a failed *inner* node delays its
entire subtree and forces the parent through a slow synchronous
takeover path.
"""

from repro.network.broadcast import BroadcastResult
from repro.network.fabric import FabricConfig, NetworkFabric
from repro.network.message import Message, MessageKind
from repro.network.sockets import ConnectionTracker
from repro.network.structures import (
    RingBroadcast,
    SharedMemoryBroadcast,
    StarBroadcast,
    TreeBroadcast,
)

__all__ = [
    "Message",
    "MessageKind",
    "FabricConfig",
    "NetworkFabric",
    "ConnectionTracker",
    "BroadcastResult",
    "RingBroadcast",
    "StarBroadcast",
    "SharedMemoryBroadcast",
    "TreeBroadcast",
]
