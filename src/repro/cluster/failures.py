"""Failure injection for the cluster substrate.

The paper's production logs motivate three kinds of events, all of which
this module reproduces:

* *point failures* — independent single-node faults (power, network,
  memory), modelled with an exponential per-node MTBF;
* *burst failures* — correlated multi-node events (a switch or a
  chassis dies), modelled as a Poisson process whose events take out a
  contiguous block of nodes;
* *maintenance* — operator-scheduled mass removals, like the >600-node
  hardware-replacement event the paper reports on day six of the
  FP-Tree placement experiment.

When the injector decides a node will fail it informs the
:class:`~repro.cluster.monitoring.HealthMonitor` *before* the failure
takes effect, which is the hook the FP-Tree's alert-driven failure
prediction relies on (Section IV-C of the paper).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.cluster.node import NodeState
from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import Cluster
    from repro.simkit.core import Simulator

HOUR = 3600.0
DAY = 24 * HOUR

#: Failure/recovery callback: ``(kind, node_ids, time)``.
FailureListener = t.Callable[[str, t.Sequence[int], float], None]


@dataclass(frozen=True)
class FailureModel:
    """Stochastic failure behaviour of a cluster.

    Defaults are calibrated so a 4K-node cluster sees on the order of a
    few single-node failures per day with <2 % of nodes down at any
    time, matching the paper's production observations.

    Args:
        mtbf_node_hours: per-node mean time between point failures.
        repair_hours: mean repair/reboot time for a point failure.
        burst_per_day: expected correlated multi-node events per day.
        burst_size_mean: mean nodes taken out by one burst.
        lead_time_s: mean interval between "decision" (when precursor
            symptoms start, i.e. when the monitor may alert) and the
            failure itself.
        enabled: master switch; disabled models inject nothing.
    """

    mtbf_node_hours: float = 20_000.0
    repair_hours: float = 4.0
    burst_per_day: float = 0.1
    burst_size_mean: float = 32.0
    lead_time_s: float = 600.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.mtbf_node_hours <= 0 or self.repair_hours <= 0:
            raise ConfigurationError("MTBF and repair time must be positive")
        if self.burst_per_day < 0 or self.burst_size_mean < 1:
            raise ConfigurationError("invalid burst parameters")
        if self.lead_time_s < 0:
            raise ConfigurationError("lead time cannot be negative")

    @classmethod
    def disabled(cls) -> "FailureModel":
        """A model that never injects failures (deterministic runs)."""
        return cls(enabled=False)


@dataclass
class FailureEvent:
    """Log record of one injected failure event."""

    time: float
    kind: str  # "point" | "burst" | "maintenance"
    node_ids: tuple[int, ...]
    recover_at: float


class FailureInjector:
    """Drives node failures on a cluster as simulation processes.

    The injector is *not* started automatically: call :meth:`start`
    once the simulator owns all components, so short deterministic
    tests pay nothing for it.
    """

    def __init__(self, sim: "Simulator", cluster: "Cluster", model: FailureModel) -> None:
        self.sim = sim
        self.cluster = cluster
        self.model = model
        self.events: list[FailureEvent] = []
        self._listeners: list[FailureListener] = []
        self._started = False
        #: node id -> end of its latest maintenance window; repairs of
        #: earlier faults must not resurrect a node inside a window.
        self._maint_until: dict[int, float] = {}

    def subscribe(self, listener: FailureListener) -> None:
        """Register a callback invoked on every failure and recovery."""
        self._listeners.append(listener)

    def _notify(self, kind: str, node_ids: t.Sequence[int]) -> None:
        for fn in self._listeners:
            fn(kind, node_ids, self.sim.now)

    # -- timers ----------------------------------------------------------
    def start(self) -> None:
        """Arm the point-failure and burst timers (idempotent).

        Each loop is one re-armed :class:`~repro.simkit.events.Timer`
        whose handler runs the body first and draws the next interval
        afterwards — the same per-stream draw order as the generator
        loops these replaced (which drew before each ``yield``).
        """
        if self._started or not self.model.enabled:
            return
        self._started = True
        self._start_point_timer()
        if self.model.burst_per_day > 0:
            self._start_burst_timer()

    def _start_point_timer(self) -> None:
        """Aggregate Poisson process over all nodes (rate n / MTBF)."""
        rng = self.sim.rng.stream("failures.point")
        n = self.cluster.n_nodes
        rate_per_s = n / (self.model.mtbf_node_hours * HOUR)

        def fire() -> None:
            node = self.cluster.nodes[int(rng.integers(n))]
            if node.responsive:  # already down: skip this draw
                lead = rng.exponential(self.model.lead_time_s)
                repair = rng.exponential(self.model.repair_hours * HOUR)
                self._schedule_failure("point", [node.node_id], lead, repair)
            timer.arm(rng.exponential(1.0 / rate_per_s))

        timer = self.sim.timer(fire, label="failures.point")
        timer.arm(rng.exponential(1.0 / rate_per_s))

    def _start_burst_timer(self) -> None:
        """Correlated failures of a contiguous block of nodes."""
        rng = self.sim.rng.stream("failures.burst")
        n = self.cluster.n_nodes
        rate_per_s = self.model.burst_per_day / DAY

        def fire() -> None:
            size = max(2, int(rng.poisson(self.model.burst_size_mean)))
            start = int(rng.integers(max(1, n - size)))
            ids = [i for i in range(start, min(start + size, n))]
            lead = rng.exponential(self.model.lead_time_s)
            repair = rng.exponential(self.model.repair_hours * HOUR)
            self._schedule_failure("burst", ids, lead, repair)
            timer.arm(rng.exponential(1.0 / rate_per_s))

        timer = self.sim.timer(fire, label="failures.burst")
        timer.arm(rng.exponential(1.0 / rate_per_s))

    def _schedule_failure(
        self, kind: str, node_ids: list[int], lead: float, repair: float
    ) -> None:
        """Announce to the monitor now; flip nodes DOWN after ``lead``."""
        fail_at = self.sim.now + lead
        recover_at = fail_at + repair
        self.cluster.monitor.on_failure_scheduled(node_ids, at=fail_at)
        self.sim.call_at(fail_at, lambda: self._apply(kind, node_ids, recover_at))

    def _apply(self, kind: str, node_ids: list[int], recover_at: float) -> None:
        actually_failed = []
        for nid in node_ids:
            node = self.cluster.node(nid)
            if node.responsive:
                node.fail()
                actually_failed.append(nid)
        if not actually_failed:
            return
        self.cluster.bump_version(actually_failed)
        self.events.append(
            FailureEvent(self.sim.now, kind, tuple(actually_failed), recover_at)
        )
        self._notify(kind, actually_failed)
        self.sim.call_at(recover_at, lambda: self._recover(actually_failed))

    def _recover(self, node_ids: list[int]) -> None:
        now = self.sim.now
        recovered = []
        deferred: dict[float, list[int]] = {}
        for nid in node_ids:
            until = self._maint_until.get(nid, 0.0)
            if until > now:
                # The node sits inside a maintenance window: repairing an
                # earlier fault must not resurrect it early.  Retry when
                # the window closes.
                deferred.setdefault(until, []).append(nid)
                continue
            if until:
                del self._maint_until[nid]
            node = self.cluster.node(nid)
            if node.state is NodeState.DOWN:
                node.recover()
                recovered.append(nid)
        for until, ids in sorted(deferred.items()):
            self.sim.call_at(until, lambda ids=ids: self._recover(ids))
        if recovered:
            self.cluster.bump_version(recovered)
            self._notify("recover", recovered)

    # -- deterministic scenarios ------------------------------------------
    def schedule_fault(
        self, kind: str, at: float, node_ids: t.Sequence[int], duration: float
    ) -> None:
        """Deterministically inject one named fault event.

        The chaos campaign runner composes whole failure schedules out
        of these; the monitor is informed now (strictly before the fault
        lands), exactly like the stochastic processes do.
        """
        ids = [int(n) for n in node_ids]
        if not ids:
            raise ConfigurationError(f"{kind} event needs at least one node")
        if at < self.sim.now:
            raise ConfigurationError(f"{kind} event at {at} is in the past")
        if duration <= 0:
            raise ConfigurationError(f"{kind} event needs a positive duration")
        if kind == "maintenance":
            end = at + duration
            for nid in ids:
                if end > self._maint_until.get(nid, 0.0):
                    self._maint_until[nid] = end
        self.cluster.monitor.on_failure_scheduled(ids, at=at)
        self.sim.call_at(at, lambda: self._apply(kind, ids, at + duration))

    def schedule_maintenance(
        self, at: float, node_ids: t.Sequence[int], duration: float
    ) -> None:
        """Operator-style mass removal (the paper's day-6 600-node event)."""
        self.schedule_fault("maintenance", at, node_ids, duration)

    def maintenance_until(self, node_id: int) -> float:
        """End of the node's latest maintenance window (0.0 if none)."""
        return self._maint_until.get(node_id, 0.0)

    # -- statistics ----------------------------------------------------------
    def failures_injected(self) -> int:
        """Total node-failures across all events so far."""
        return sum(len(ev.node_ids) for ev in self.events)
