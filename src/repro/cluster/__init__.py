"""Cluster substrate: nodes, topology, failures, and health monitoring.

This package models the physical machine the resource manager runs on:

* :mod:`repro.cluster.node` — compute/master/satellite nodes and their
  lifecycle states;
* :mod:`repro.cluster.spec` — declarative cluster descriptions (with
  presets for the paper's Tianhe-2A and NG-Tianhe systems) and the
  instantiated :class:`~repro.cluster.spec.Cluster`;
* :mod:`repro.cluster.topology` — the rack/chassis/board hierarchy and
  hop distances used by the latency model and topology-aware trees;
* :mod:`repro.cluster.failures` — failure injection (point failures,
  bursts, maintenance events) as simulation processes;
* :mod:`repro.cluster.monitoring` — the monitoring/diagnostic subsystem
  abstraction (the paper's BMU/CMU/SMU stack) that emits the alert
  stream consumed by the FP-Tree's failure predictor.
"""

from repro.cluster.failures import FailureEvent, FailureInjector, FailureModel
from repro.cluster.monitoring import HealthMonitor
from repro.cluster.node import Node, NodeRole, NodeState
from repro.cluster.spec import Cluster, ClusterSpec
from repro.cluster.topology import Topology

__all__ = [
    "Node",
    "NodeRole",
    "NodeState",
    "Cluster",
    "ClusterSpec",
    "Topology",
    "FailureModel",
    "FailureInjector",
    "FailureEvent",
    "HealthMonitor",
]
