"""The monitoring/diagnostic subsystem abstraction.

The Tianhe systems run a three-layer monitoring stack (Board / Chassis /
System Management Units) over a dedicated diagnostic network, exposing
200+ hardware indicators.  The FP-Tree only consumes one bit of all
this: *"has this node raised an alert recently?"* — the paper's
over-prediction principle deliberately treats every alert as a failure
prediction because a wrong prediction merely demotes a healthy node to
a leaf of the broadcast tree.

:class:`HealthMonitor` reproduces exactly that interface:

* the failure injector calls :meth:`on_failure_scheduled` when a fault
  has been decided but not yet applied — with probability ``recall``
  the monitor raises a *precursor alert*;
* a background process raises *false alarms* at a configurable rate
  (the over-prediction);
* :meth:`predicted_failed` returns the set of currently-alerted nodes,
  which is what the FP-Tree constructor's predictor plugin reads.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import Cluster
    from repro.simkit.core import Simulator

HOUR = 3600.0

#: A representative slice of the >200 hardware indicators the paper lists.
INDICATOR_CATEGORIES = (
    "voltage",
    "current",
    "temperature",
    "humidity",
    "liquid-cooling",
    "air-cooling",
    "hsn-nic",
    "memory-ecc",
    "power-supply",
    "fan-speed",
)


@dataclass(frozen=True)
class MonitoringConfig:
    """Tunables of the monitoring subsystem.

    Args:
        recall: probability that an actual failure is preceded by an
            alert.  The paper reports 81.7 % of failed nodes ended up on
            leaves; recall is the dominant term of that figure.
        false_alarm_per_node_hour: rate of spurious alerts per node per
            hour (the deliberate over-prediction).
        alert_ttl_hours: how long an alert keeps its node in the
            predicted-failed set.
        precursor_fraction: alerts fire this fraction of the lead time
            *before* the failure lands (1.0 = immediately at decision).
    """

    recall: float = 0.85
    false_alarm_per_node_hour: float = 1e-4
    alert_ttl_hours: float = 6.0
    precursor_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.recall <= 1.0:
            raise ConfigurationError("recall must be a probability")
        if self.false_alarm_per_node_hour < 0:
            raise ConfigurationError("false-alarm rate cannot be negative")
        if self.alert_ttl_hours <= 0:
            raise ConfigurationError("alert TTL must be positive")
        if not 0.0 < self.precursor_fraction <= 1.0:
            raise ConfigurationError("precursor_fraction must be in (0, 1]")


@dataclass
class Alert:
    """One alert raised by the monitoring subsystem."""

    time: float
    node_id: int
    indicator: str
    spurious: bool


class HealthMonitor:
    """Alert stream + currently-predicted-failed set for a cluster."""

    def __init__(self, sim: "Simulator", cluster: "Cluster", config: MonitoringConfig) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.alerts: list[Alert] = []
        #: node id -> alert expiry time
        self._alerted: dict[int, float] = {}
        self._rng = sim.rng.stream("monitoring")
        self._started = False

    # -- alert intake ----------------------------------------------------
    def raise_alert(self, node_id: int, indicator: str | None = None, spurious: bool = False) -> None:
        """Record an alert and mark the node predicted-failed until TTL."""
        if indicator is None:
            indicator = INDICATOR_CATEGORIES[int(self._rng.integers(len(INDICATOR_CATEGORIES)))]
        self.alerts.append(Alert(self.sim.now, node_id, indicator, spurious))
        self._alerted[node_id] = self.sim.now + self.config.alert_ttl_hours * HOUR

    def on_failure_scheduled(self, node_ids: t.Sequence[int], at: float) -> None:
        """Hook called by the failure injector before a fault lands.

        For each node, with probability ``recall`` a precursor alert is
        raised ``precursor_fraction`` of the way into the lead window —
        but never more than half the alert TTL early, so that a
        long-scheduled event (e.g. maintenance announced days ahead)
        still has a *live* alert when it actually happens.
        """
        ttl_s = self.config.alert_ttl_hours * HOUR
        for nid in node_ids:
            if self._rng.random() >= self.config.recall:
                continue
            lead = max(0.0, at - self.sim.now)
            when = max(at - lead * self.config.precursor_fraction, at - 0.5 * ttl_s)
            if when <= self.sim.now:
                self.raise_alert(nid)
            else:
                self.sim.call_at(when, lambda n=nid: self.raise_alert(n))

    # -- background false alarms -------------------------------------------
    def start(self) -> None:
        """Arm the false-alarm timer (idempotent).

        One re-armed :class:`~repro.simkit.events.Timer` replaces the
        historical generator loop; the handler raises the alert first and
        draws the next interval afterwards, preserving the ``monitoring``
        stream's draw order.
        """
        if self._started or self.config.false_alarm_per_node_hour == 0:
            return
        self._started = True
        n = self.cluster.n_nodes
        rate_per_s = n * self.config.false_alarm_per_node_hour / HOUR

        def fire() -> None:
            node_id = int(self._rng.integers(n))
            self.raise_alert(node_id, spurious=True)
            timer.arm(self._rng.exponential(1.0 / rate_per_s))

        timer = self.sim.timer(fire, label="monitoring.false_alarms")
        timer.arm(self._rng.exponential(1.0 / rate_per_s))

    # -- predictor interface ---------------------------------------------
    def predicted_failed(self, among: t.Iterable[int] | None = None) -> set[int]:
        """Currently-alerted node ids (optionally restricted to ``among``).

        Expired alerts are pruned lazily on read.
        """
        now = self.sim.now
        expired = [nid for nid, exp in self._alerted.items() if exp <= now]
        for nid in expired:
            del self._alerted[nid]
        if among is None:
            return set(self._alerted)
        return {nid for nid in among if nid in self._alerted}

    # -- statistics ----------------------------------------------------------
    def alert_count(self) -> int:
        return len(self.alerts)

    def spurious_fraction(self) -> float:
        """Fraction of alerts that were false alarms (over-prediction)."""
        if not self.alerts:
            return 0.0
        return sum(a.spurious for a in self.alerts) / len(self.alerts)
