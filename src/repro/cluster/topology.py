"""Physical topology: the rack / chassis / board hierarchy.

The Tianhe systems organise compute nodes on boards, boards in chassis,
chassis in racks, all joined by a proprietary fat-tree-like interconnect.
For the communication model only the *hop level* between two nodes
matters: same board < same chassis < same rack < cross-rack.  The
monitoring network (BMU/CMU/SMU) follows the same hierarchy.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

from repro.errors import ConfigurationError


class HopLevel(enum.IntEnum):
    """Distance class between two nodes; higher means farther."""

    SAME_NODE = 0
    SAME_BOARD = 1
    SAME_CHASSIS = 2
    SAME_RACK = 3
    CROSS_RACK = 4


@dataclass(frozen=True)
class Topology:
    """Regular rack/chassis/board layout.

    Node *i* sits at board ``i // nodes_per_board`` etc.; the layout is
    dense and deterministic, which is what both Tianhe generations use
    for their base enumeration.

    Args:
        nodes_per_board: compute nodes that share a board.
        boards_per_chassis: boards per chassis.
        chassis_per_rack: chassis per rack.
    """

    nodes_per_board: int = 8
    boards_per_chassis: int = 16
    chassis_per_rack: int = 4

    def __post_init__(self) -> None:
        if min(self.nodes_per_board, self.boards_per_chassis, self.chassis_per_rack) < 1:
            raise ConfigurationError("topology dimensions must be positive")

    # cached_property works on a frozen dataclass (no __slots__): the
    # memo bypasses __setattr__ and lands in the instance __dict__.
    @functools.cached_property
    def nodes_per_chassis(self) -> int:
        return self.nodes_per_board * self.boards_per_chassis

    @functools.cached_property
    def nodes_per_rack(self) -> int:
        return self.nodes_per_chassis * self.chassis_per_rack

    def coordinates(self, node_id: int) -> tuple[int, int, int]:
        """``(rack, chassis, board)`` of a node id (global indices)."""
        if node_id < 0:
            raise ConfigurationError(f"negative node id {node_id}")
        board = node_id // self.nodes_per_board
        chassis = node_id // self.nodes_per_chassis
        rack = node_id // self.nodes_per_rack
        return rack, chassis, board

    def hop_level(self, a: int, b: int) -> HopLevel:
        """Distance class between node ids ``a`` and ``b``.

        Divide-and-compare without building coordinate tuples — this
        sits on the per-transfer hot path of the latency model.
        """
        if a == b:
            return HopLevel.SAME_NODE
        npb = self.nodes_per_board
        if a // npb == b // npb:
            return HopLevel.SAME_BOARD
        npc = self.nodes_per_chassis
        if a // npc == b // npc:
            return HopLevel.SAME_CHASSIS
        npr = self.nodes_per_rack
        if a // npr == b // npr:
            return HopLevel.SAME_RACK
        return HopLevel.CROSS_RACK

    def rack_of(self, node_id: int) -> int:
        return self.coordinates(node_id)[0]

    def nodes_in_rack(self, rack: int, total_nodes: int) -> range:
        """Node ids located in ``rack`` (clipped to the cluster size)."""
        start = rack * self.nodes_per_rack
        stop = min(start + self.nodes_per_rack, total_nodes)
        if start >= total_nodes:
            return range(0)
        return range(start, stop)

    def racks_for(self, total_nodes: int) -> int:
        """Number of (possibly partially filled) racks for a cluster size."""
        return -(-total_nodes // self.nodes_per_rack)
