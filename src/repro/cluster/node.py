"""Node model: identity, hardware, role, and lifecycle state."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ClusterError


class NodeRole(enum.Enum):
    """What a node does in the resource-management hierarchy."""

    COMPUTE = "compute"
    MASTER = "master"
    SATELLITE = "satellite"


class NodeState(enum.Enum):
    """Operational state of a node.

    ``UP``      healthy and idle/allocatable
    ``ALLOC``   healthy and running a job
    ``DOWN``    failed (times out instead of answering)
    ``DRAINED`` administratively removed (maintenance)
    """

    UP = "up"
    ALLOC = "alloc"
    DOWN = "down"
    DRAINED = "drained"


#: States in which a node answers network messages.
RESPONSIVE_STATES = frozenset({NodeState.UP, NodeState.ALLOC})


@dataclass(slots=True)
class Node:
    """A single machine in the cluster.

    Slotted: the 65K/131K-node tiers materialise one of these per node,
    and per-instance ``__dict__``s roughly double their memory footprint
    while slowing every state read in the failure/heartbeat scans.

    Attributes:
        node_id: dense integer id, unique within the cluster.
        name: human-readable name (``cn0001`` style).
        role: place in the RM hierarchy.
        cores: CPU cores available to jobs.
        mem_gb: RAM in GiB.
        state: current lifecycle state.
        rack / chassis / board: physical topology coordinates.
        running_job: id of the job currently occupying the node, if any.
    """

    node_id: int
    name: str
    role: NodeRole = NodeRole.COMPUTE
    cores: int = 12
    mem_gb: int = 64
    state: NodeState = NodeState.UP
    rack: int = 0
    chassis: int = 0
    board: int = 0
    running_job: int | None = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ClusterError(f"node_id must be non-negative, got {self.node_id}")
        if self.cores < 1 or self.mem_gb < 1:
            raise ClusterError(f"node {self.name}: cores/mem must be positive")

    # -- state predicates ------------------------------------------------
    @property
    def responsive(self) -> bool:
        """Whether the node answers messages (not DOWN/DRAINED)."""
        return self.state in RESPONSIVE_STATES

    @property
    def allocatable(self) -> bool:
        """Whether the scheduler may place a job here."""
        return self.state is NodeState.UP and self.running_job is None

    # -- transitions --------------------------------------------------------
    def fail(self) -> None:
        """Mark the node failed.  Idempotent; DRAINED nodes stay drained."""
        if self.state is not NodeState.DRAINED:
            self.state = NodeState.DOWN

    def recover(self) -> None:
        """Bring a DOWN node back up (clears any stale job binding)."""
        if self.state is NodeState.DOWN:
            self.state = NodeState.UP
            self.running_job = None

    def drain(self) -> None:
        """Administratively remove the node from service."""
        self.state = NodeState.DRAINED
        self.running_job = None

    def undrain(self) -> None:
        if self.state is NodeState.DRAINED:
            self.state = NodeState.UP

    def allocate(self, job_id: int) -> None:
        """Bind a job to this node."""
        if not self.allocatable:
            raise ClusterError(
                f"node {self.name} not allocatable "
                f"(state={self.state.value}, job={self.running_job})"
            )
        self.state = NodeState.ALLOC
        self.running_job = job_id

    def release(self) -> None:
        """Unbind the current job.  No-op on DOWN nodes (handled at recover)."""
        if self.state is NodeState.ALLOC:
            self.state = NodeState.UP
        self.running_job = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} {self.role.value} {self.state.value}>"


@dataclass(frozen=True)
class HardwareSpec:
    """Per-node hardware description used by cluster presets."""

    cores: int = 12
    mem_gb: int = 64
    accelerator: str | None = None

    def __post_init__(self) -> None:
        if self.cores < 1 or self.mem_gb < 1:
            raise ClusterError("hardware spec must have positive cores and memory")


#: Tianhe-2A compute node: 12-core 2.2 GHz Xeon + Matrix-2000, 64 GB.
TIANHE2A_NODE = HardwareSpec(cores=12, mem_gb=64, accelerator="Matrix-2000")
#: NG-Tianhe compute node: heterogeneous many-core MT processor.
NGTIANHE_NODE = HardwareSpec(cores=64, mem_gb=128, accelerator="MT-many-core")
#: Master node of the paper's testbed: 10-core Xeon Silver 4210R, 196 GB.
MASTER_NODE = HardwareSpec(cores=10, mem_gb=196)
