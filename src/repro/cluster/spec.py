"""Declarative cluster descriptions and the instantiated cluster.

A :class:`ClusterSpec` is pure configuration — sizes, hardware, topology,
failure parameters.  Calling :meth:`ClusterSpec.build` on a simulator
produces a :class:`Cluster`: the live object holding node instances, the
failure injector, and the health monitor.

Presets mirror the paper's two testbeds::

    ClusterSpec.tianhe2a()            # 16,384 nodes
    ClusterSpec.tianhe2a(n_nodes=4096)  # the 4K-node partition of Sec. VII-A
    ClusterSpec.ng_tianhe()           # 20,480 ("20K+") nodes
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field, replace

from repro.cluster.failures import FailureInjector, FailureModel
from repro.cluster.monitoring import HealthMonitor, MonitoringConfig
from repro.cluster.node import (
    MASTER_NODE,
    NGTIANHE_NODE,
    TIANHE2A_NODE,
    HardwareSpec,
    Node,
    NodeRole,
    NodeState,
)
from repro.cluster.topology import Topology
from repro.errors import ClusterError, ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.core import Simulator


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a machine.

    Args:
        n_nodes: number of *compute* nodes (master/satellites are extra).
        n_satellites: satellite nodes provisioned for ESLURM (``m`` in
            Eq. 1 of the paper).  Centralized RMs simply ignore them.
        compute_hw / master_hw: hardware of compute and master nodes.
        topology: physical layout.
        failure_model: stochastic failure behaviour.
        monitoring: monitoring/diagnostic subsystem parameters.
        name: label used in reports.
    """

    n_nodes: int = 1024
    n_satellites: int = 2
    compute_hw: HardwareSpec = TIANHE2A_NODE
    master_hw: HardwareSpec = MASTER_NODE
    topology: Topology = field(default_factory=Topology)
    failure_model: FailureModel = field(default_factory=FailureModel)
    monitoring: MonitoringConfig = field(default_factory=MonitoringConfig)
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("cluster needs at least one compute node")
        if self.n_satellites < 0:
            raise ConfigurationError("satellite count cannot be negative")

    # -- presets -------------------------------------------------------------
    @classmethod
    def tianhe2a(cls, n_nodes: int = 16_384, n_satellites: int = 2) -> "ClusterSpec":
        """The paper's Tianhe-2A testbed (or a partition of it)."""
        return cls(
            n_nodes=n_nodes,
            n_satellites=n_satellites,
            compute_hw=TIANHE2A_NODE,
            name=f"tianhe2a-{n_nodes}",
        )

    @classmethod
    def ng_tianhe(cls, n_nodes: int = 20_480, n_satellites: int = 20) -> "ClusterSpec":
        """The Next Generation Tianhe testbed ("20K+" nodes)."""
        return cls(
            n_nodes=n_nodes,
            n_satellites=n_satellites,
            compute_hw=NGTIANHE_NODE,
            name=f"ng-tianhe-{n_nodes}",
        )

    def with_satellites(self, n_satellites: int) -> "ClusterSpec":
        """Copy of this spec with a different satellite pool size."""
        return replace(self, n_satellites=n_satellites)

    def build(self, sim: "Simulator") -> "Cluster":
        """Instantiate the cluster on a simulator."""
        return Cluster(sim, self)

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.compute_hw.cores


class Cluster:
    """A live cluster: nodes + failure injection + health monitoring.

    Node ids are dense: compute nodes are ``0 .. n_nodes-1``; the master
    is ``n_nodes``; satellites are ``n_nodes+1 .. n_nodes+n_satellites``.
    """

    def __init__(self, sim: "Simulator", spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.topology = spec.topology
        self.nodes: list[Node] = []
        for i in range(spec.n_nodes):
            rack, chassis, board = spec.topology.coordinates(i)
            self.nodes.append(
                Node(
                    node_id=i,
                    name=f"cn{i:05d}",
                    role=NodeRole.COMPUTE,
                    cores=spec.compute_hw.cores,
                    mem_gb=spec.compute_hw.mem_gb,
                    rack=rack,
                    chassis=chassis,
                    board=board,
                )
            )
        self.master = Node(
            node_id=spec.n_nodes,
            name="master",
            role=NodeRole.MASTER,
            cores=spec.master_hw.cores,
            mem_gb=spec.master_hw.mem_gb,
        )
        self.satellites: list[Node] = [
            Node(
                node_id=spec.n_nodes + 1 + k,
                name=f"sat{k:02d}",
                role=NodeRole.SATELLITE,
                cores=spec.master_hw.cores,
                mem_gb=spec.master_hw.mem_gb,
            )
            for k in range(spec.n_satellites)
        ]
        self._by_id: dict[int, Node] = {n.node_id: n for n in self.all_nodes()}
        self.monitor = HealthMonitor(sim, self, spec.monitoring)
        self.failures = FailureInjector(sim, self, spec.failure_model)
        #: bumped on every liveness change; consumers cache broadcast
        #: evaluations against it (heartbeat rounds at 20K+ nodes).
        self.version = 0
        # Incrementally-maintained ids of unresponsive nodes.  Every node
        # starts UP, so the set starts empty and valid; liveness changes
        # reported through :meth:`bump_version` with their ids keep it
        # current in O(changed), while an id-less bump (external code
        # flipping :class:`Node` state directly) falls back to a full
        # resweep on the next query.
        self._unresponsive: set[int] = set()
        self._unresponsive_stale = False

    def bump_version(self, changed: t.Iterable[int] | None = None) -> None:
        """Record that node liveness changed (invalidates broadcast caches).

        Pass the ids whose state flipped to keep the unresponsive-id set
        incremental; without them the next liveness query pays one O(n)
        sweep over the node table.
        """
        self.version += 1
        if changed is None:
            self._unresponsive_stale = True
        elif not self._unresponsive_stale:
            for nid in changed:
                if self._by_id[nid].responsive:
                    self._unresponsive.discard(nid)
                else:
                    self._unresponsive.add(nid)

    def unresponsive_ids(self) -> frozenset[int]:
        """Ids of all unresponsive nodes (compute, master, satellites)."""
        if self._unresponsive_stale:
            self._unresponsive = {
                n.node_id for n in self.all_nodes() if not n.responsive
            }
            self._unresponsive_stale = False
        return frozenset(self._unresponsive)

    # -- lookup ----------------------------------------------------------
    def all_nodes(self) -> t.Iterator[Node]:
        """Every node: compute, then master, then satellites."""
        yield from self.nodes
        yield self.master
        yield from self.satellites

    def node(self, node_id: int) -> Node:
        """Node by id; raises :class:`ClusterError` for unknown ids."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ClusterError(f"unknown node id {node_id}") from None

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes."""
        return len(self.nodes)

    def compute_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes]

    # -- state queries -----------------------------------------------------
    def up_nodes(self) -> list[Node]:
        """Compute nodes currently allocatable."""
        return [n for n in self.nodes if n.allocatable]

    def down_ids(self) -> set[int]:
        """Ids of compute nodes currently DOWN or DRAINED."""
        n = len(self.nodes)
        return {nid for nid in self.unresponsive_ids() if nid < n}

    def failed_fraction(self) -> float:
        """Fraction of compute nodes currently unresponsive."""
        return len(self.down_ids()) / len(self.nodes)

    def is_responsive(self, node_id: int) -> bool:
        return self.node(node_id).responsive

    # -- failure control (delegates used heavily by experiments) -----------
    def fail_nodes(self, node_ids: t.Iterable[int]) -> None:
        """Force the given compute nodes DOWN (deterministic scenarios)."""
        ids = list(node_ids)
        for nid in ids:
            self.node(nid).fail()
        self.bump_version(ids)

    def recover_nodes(self, node_ids: t.Iterable[int]) -> None:
        ids = list(node_ids)
        for nid in ids:
            self.node(nid).recover()
        self.bump_version(ids)

    def fail_fraction(self, fraction: float, rng: t.Any = None) -> list[int]:
        """Fail a random ``fraction`` of compute nodes; returns their ids.

        Used by the Fig. 8b experiment (failure-ratio sweep).  With no
        ``rng``, the cluster's own seeded stream is used.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ClusterError(f"failure fraction must be in [0, 1], got {fraction}")
        rng = rng if rng is not None else self.sim.rng.stream("cluster.fail_fraction")
        k = round(fraction * len(self.nodes))
        chosen = rng.choice(len(self.nodes), size=k, replace=False) if k else []
        ids = sorted(int(i) for i in chosen)
        self.fail_nodes(ids)
        return ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.spec.name}: {self.n_nodes} compute, "
            f"{len(self.satellites)} satellites>"
        )
