"""Simulation-wide invariants and the registry that audits them.

This module is the **shared registry**: both the chaos campaigns
(:mod:`repro.chaos`) and the oracle suites (:mod:`repro.oracle`)
consume these definitions, so a predicate is stated exactly once.
``repro.chaos.invariants`` re-exports everything here for backward
compatibility.

Each :class:`Invariant` encodes one predicate the paper's claims rest
on: the satellite state machine only ever takes Table II transitions,
node bookkeeping is conserved across failures and recoveries, every
FP-Tree rearrangement stays structurally sound, Eq. 1 returns the
documented satellite count, and the scheduler never double-books or
starves the head job.

Invariants come in two flavours, and one class may use both:

* *event-driven* — :meth:`Invariant.attach` installs observers on the
  instrumented subsystems (satellite transition hooks, FP-Tree
  construction hooks, Eq. 1 hooks) so illegal steps are caught the
  instant they happen;
* *scan* — :meth:`Invariant.check` sweeps global state and is driven by
  the simulator's post-event probe, so every processed event leaves the
  world consistent.

Violations are recorded, never raised: a chaos campaign should keep
going and report everything it saw.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from repro.fptree.tree import build_tree, leaf_positions
from repro.rm.satellite import (
    FAULT_TIMEOUT_S,
    _TRANSITIONS,
    SatelliteDaemon,
    SatelliteEvent,
    SatelliteState,
)
from repro.sched.job import JobState

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import Cluster
    from repro.rm.base import ResourceManager
    from repro.simkit.core import Simulator

#: Chaos runs keep at most this many full violation records per
#: invariant; counts keep accumulating beyond it (a broken invariant
#: can fire on every event of a long campaign).
MAX_RECORDED_PER_INVARIANT = 50


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    detail: str


@dataclass
class ChaosContext:
    """Everything an invariant may inspect during a run."""

    sim: "Simulator"
    cluster: "Cluster"
    rm: "ResourceManager"


Reporter = t.Callable[[str], None]


class Invariant:
    """Base class: a named predicate over the simulation."""

    name = "invariant"

    def attach(self, ctx: ChaosContext, report: Reporter) -> None:
        """Install event-driven observers (default: none)."""

    def check(self, ctx: ChaosContext) -> t.Iterable[str]:
        """Scan global state; yield one detail string per breach."""
        return ()


class SatelliteLegality(Invariant):
    """Table II is the whole law of the satellite state machine.

    Event-driven: every transition must match the published table
    (unlisted pairs keep their state, SHUTDOWN lands in DOWN), and no
    non-RUNNING satellite — in particular no BUSY one — may ever be
    handed a broadcast task.  Scan: a FAULT older than the 20-minute
    timeout plus two heartbeat periods should have been escalated DOWN.
    """

    name = "satellite-legality"

    def attach(self, ctx: ChaosContext, report: Reporter) -> None:
        pool = getattr(ctx.rm, "sat_pool", None)
        if pool is None:
            return

        def on_transition(
            daemon: SatelliteDaemon,
            old: SatelliteState,
            event: SatelliteEvent,
            new: SatelliteState,
        ) -> None:
            if event is SatelliteEvent.BT_START and old is not SatelliteState.RUNNING:
                report(
                    f"{daemon.node.name}: broadcast task assigned in state {old.value}"
                )
            if event is SatelliteEvent.SHUTDOWN:
                expected = SatelliteState.DOWN
            else:
                expected = _TRANSITIONS.get((old, event), old)
            if new is not expected:
                report(
                    f"{daemon.node.name}: {old.value} --{event.value}--> {new.value}, "
                    f"Table II says {expected.value}"
                )

        for daemon in pool.daemons:
            daemon.transition_observers.append(on_transition)

    def check(self, ctx: ChaosContext) -> t.Iterable[str]:
        pool = getattr(ctx.rm, "sat_pool", None)
        if pool is None:
            return
        slack = 2 * ctx.rm.profile.heartbeat_interval_s
        for daemon in pool.daemons:
            since = daemon.fault_since
            if (
                daemon.state is SatelliteState.FAULT
                and since is not None
                and ctx.sim.now - since > FAULT_TIMEOUT_S + slack
            ):
                yield (
                    f"{daemon.node.name}: FAULT for {ctx.sim.now - since:.0f}s "
                    f"without the {FAULT_TIMEOUT_S:.0f}s timeout firing"
                )


class NodeConservation(Invariant):
    """No node is lost or double-counted across failure and recovery.

    The scheduler pool's free/down/allocated sets must stay mutually
    exclusive, agree with the cluster's node states, and never hand the
    same node to two jobs.
    """

    name = "node-conservation"

    def check(self, ctx: ChaosContext) -> t.Iterable[str]:
        pool = ctx.rm.pool
        free = pool.free_ids()
        down = pool.down_ids()
        overlap = free & down
        if overlap:
            yield f"nodes both free and down: {sorted(overlap)[:8]}"
        owner: dict[int, int] = {}
        for job_id, rec in pool.running.items():
            for nid in rec.node_ids:
                if nid in owner:
                    yield f"node {nid} allocated to jobs {owner[nid]} and {job_id}"
                owner[nid] = job_id
                if nid in free:
                    yield f"node {nid} free while allocated to job {job_id}"
        for nid in free:
            node = ctx.cluster.node(nid)
            if not node.allocatable:
                yield (
                    f"free-pool node {nid} not allocatable "
                    f"(state={node.state.value}, job={node.running_job})"
                )
        for node in ctx.cluster.nodes:
            if not node.responsive and node.node_id in free:
                yield f"unresponsive node {node.node_id} still in the free pool"


class FPTreeSoundness(Invariant):
    """Every FP-Tree rearrangement yields a sound broadcast tree.

    Event-driven on the constructor: the rearranged list must be a
    permutation of the targets (all live nodes reachable exactly once),
    the implied tree must respect the k-ary width bound, and
    predicted-failed nodes must fill leaf positions to capacity — the
    paper's Fig. 4 guarantee.
    """

    name = "fptree-soundness"

    def attach(self, ctx: ChaosContext, report: Reporter) -> None:
        constructor = getattr(ctx.rm, "fp_constructor", None)
        if constructor is None:
            return
        width = constructor.width

        def on_construct(
            targets: t.Sequence[int],
            ordered: t.Sequence[int],
            leaf_idx: t.Sequence[int],
            predicted: t.AbstractSet[int],
        ) -> None:
            if sorted(ordered) != sorted(targets):
                report(
                    f"rearrangement is not a permutation: {len(targets)} targets, "
                    f"{len(set(ordered))} distinct placed"
                )
                return
            n = len(targets) + 1  # with the satellite root at position 0
            expected_leaves = [p - 1 for p in leaf_positions(n, width) if p > 0]
            if list(leaf_idx) != expected_leaves:
                report(f"leaf positions diverge from the k-ary layout (n={n})")
            tree = build_tree(list(range(n)), width)
            for vertex in tree.iter_nodes():
                if len(vertex.children) > width:
                    report(
                        f"tree vertex has {len(vertex.children)} children "
                        f"(width bound {width})"
                    )
                    break
            predicted_here = predicted & set(targets)
            leaves = set(leaf_idx)
            on_leaves = sum(
                1 for pos, nid in enumerate(ordered) if nid in predicted_here and pos in leaves
            )
            expected_on_leaves = min(len(predicted_here), len(leaves))
            if on_leaves != expected_on_leaves:
                report(
                    f"{on_leaves}/{len(predicted_here)} predicted-failed nodes on "
                    f"leaves; rearrangement guarantees {expected_on_leaves}"
                )

        constructor.construct_observers.append(on_construct)


class Eq1Correctness(Invariant):
    """Every satellite-count evaluation matches Eq. 1 of the paper.

    Event-driven on :meth:`SatellitePool.compute_n`; the expected value
    is recomputed here, independently of the production code path.
    """

    name = "eq1-correctness"

    def attach(self, ctx: ChaosContext, report: Reporter) -> None:
        pool = getattr(ctx.rm, "sat_pool", None)
        if pool is None:
            return
        pool.eq1_observers.append(lambda s, n, w, m: self._audit(report, s, n, w, m))

    @staticmethod
    def _audit(report: Reporter, s: int, n: int, w: int, m: int) -> None:
        if s <= 0:
            expected = 0
        elif s <= w:
            expected = 1
        elif s >= m * w:
            expected = m
        else:
            expected = min((s + w - 1) // w, m)
        if n != expected:
            report(f"compute_n(s={s}, w={w}, m={m}) = {n}, Eq. 1 says {expected}")


class SchedulerConservation(Invariant):
    """Jobs are queued xor running, and the head job is never starved.

    Scan-only.  A job id must never appear in the pending queue and the
    running set at once; queued jobs must be PENDING and running
    records non-terminal.  Starvation: if the head job *fits* in the
    free pool, a live master must start it within two scheduler ticks —
    EASY backfill's reservation exists precisely so backfilled jobs
    cannot push the head past that point.
    """

    name = "scheduler-conservation"

    #: grace beyond two scheduler ticks before a fitting head counts as
    #: starved (broadcast launches happen within a tick in practice)
    STARVATION_SLACK_S = 1.0

    def __init__(self) -> None:
        self._head_fits_since: tuple[int, float] | None = None
        self._flagged_head: int | None = None

    def check(self, ctx: ChaosContext) -> t.Iterable[str]:
        rm = ctx.rm
        queued = {job.job_id for job in rm.queue}
        running = set(rm.pool.running)
        for job_id in sorted(queued & running):
            yield f"job {job_id} is both queued and running"
        for job in rm.queue:
            if job.state is not JobState.PENDING:
                yield f"queued job {job.job_id} in state {job.state.value}"
        for job_id, rec in rm.pool.running.items():
            if rec.job.state in (JobState.COMPLETED, JobState.CANCELLED):
                yield f"terminal job {job_id} still holds {len(rec.node_ids)} nodes"
        yield from self._check_starvation(ctx)

    def _check_starvation(self, ctx: ChaosContext) -> t.Iterable[str]:
        rm = ctx.rm
        head = rm.queue.head()
        if head is None or rm.master_down or not rm.pool.fits(head):
            self._head_fits_since = None
            return
        now = ctx.sim.now
        if self._head_fits_since is None or self._head_fits_since[0] != head.job_id:
            self._head_fits_since = (head.job_id, now)
            return
        waited = now - self._head_fits_since[1]
        limit = 2 * rm.profile.scheduler_tick_s + self.STARVATION_SLACK_S
        if waited > limit and self._flagged_head != head.job_id:
            self._flagged_head = head.job_id
            yield (
                f"head job {head.job_id} fits ({head.n_nodes} <= "
                f"{rm.pool.n_free} free) but has waited {waited:.0f}s"
            )


class MalleableWidth(Invariant):
    """Elastic jobs always run inside their declared width range.

    Scan-only.  Every running allocation of a malleable job must hold
    between ``min_nodes`` and ``max_nodes`` nodes — grow/shrink
    decisions (including chaos-driven contraction on node failure) may
    never push a job outside the range it declared at submit.  While a
    malleable job is RUNNING its own view of the allocation must agree
    with the scheduler pool's record.
    """

    name = "malleable-width"

    def check(self, ctx: ChaosContext) -> t.Iterable[str]:
        for job_id, rec in ctx.rm.pool.running.items():
            job = rec.job
            if not getattr(job, "malleable", False):
                continue
            width = len(rec.node_ids)
            if not job.min_nodes <= width <= job.max_nodes:
                yield (
                    f"job {job_id} runs at width {width}, outside "
                    f"[{job.min_nodes}, {job.max_nodes}]"
                )
            if job.state is JobState.RUNNING and set(job.allocated_nodes) != set(rec.node_ids):
                yield (
                    f"job {job_id} allocation view {sorted(job.allocated_nodes)[:8]} "
                    f"disagrees with the pool record {sorted(rec.node_ids)[:8]}"
                )


def default_invariants() -> list[Invariant]:
    """Fresh instances of every registered invariant (they are stateful)."""
    return [
        SatelliteLegality(),
        NodeConservation(),
        FPTreeSoundness(),
        Eq1Correctness(),
        SchedulerConservation(),
        MalleableWidth(),
    ]


class InvariantRegistry:
    """Owns a set of invariants and the violations they record."""

    def __init__(self, invariants: t.Sequence[Invariant] | None = None) -> None:
        self.invariants: list[Invariant] = list(
            invariants if invariants is not None else default_invariants()
        )
        self.violations: list[Violation] = []
        self._counts: dict[str, int] = {inv.name: 0 for inv in self.invariants}
        self.checks_run = 0
        self._sim: "Simulator | None" = None

    def register(self, invariant: Invariant) -> None:
        self.invariants.append(invariant)
        self._counts.setdefault(invariant.name, 0)

    def attach(self, ctx: ChaosContext) -> None:
        """Install every invariant's observers and remember the clock."""
        self._sim = ctx.sim
        for inv in self.invariants:
            self._counts.setdefault(inv.name, 0)
            inv.attach(ctx, self._reporter(inv.name))

    def probe(self, ctx: ChaosContext) -> None:
        """One post-event sweep over all scan invariants."""
        self.checks_run += 1
        for inv in self.invariants:
            for detail in inv.check(ctx):
                self._record(inv.name, detail, ctx.sim.now)

    def _reporter(self, name: str) -> Reporter:
        def report(detail: str) -> None:
            now = self._sim.now if self._sim is not None else 0.0
            self._record(name, detail, now)

        return report

    def _record(self, name: str, detail: str, now: float) -> None:
        self._counts[name] = self._counts.get(name, 0) + 1
        if self._counts[name] <= MAX_RECORDED_PER_INVARIANT:
            self.violations.append(Violation(now, name, detail))

    def counts(self) -> tuple[tuple[str, int], ...]:
        """Per-invariant violation totals, in registration order."""
        return tuple(self._counts.items())

    @property
    def total_violations(self) -> int:
        return sum(self._counts.values())
