"""Correctness oracles for a simulator with no ground truth.

Three complementary layers, all runnable via ``repro verify``:

* **differential** (:mod:`repro.oracle.differential`) — paired
  simulations on identical seeded workloads asserting the paper's
  relative claims (master offload, FP-Tree failure bounds, AEA gating);
* **metamorphic** (:mod:`repro.oracle.metamorphic`) — workload
  transformations with known output relations (relabeling, jitter,
  scaling, capacity monotonicity, seed sensitivity);
* **golden** (:mod:`repro.oracle.golden`) — frozen SHA-256 digests of
  canonical event streams, regenerable only via
  ``repro verify --update-golden``.

The simulation-state invariants shared with the chaos harness live in
:mod:`repro.oracle.invariants`.
"""

from repro.oracle.golden import (
    GOLDEN_SCENARIOS,
    GoldenScenario,
    TraceDigest,
    check_golden,
    load_golden,
    write_golden,
)
from repro.oracle.invariants import (
    ChaosContext,
    Invariant,
    InvariantRegistry,
    Violation,
    default_invariants,
)
from repro.oracle.relations import (
    MASTER_LOAD_NODE_THRESHOLD,
    Relation,
    RelationResult,
    check_bench_payloads,
    relations_table,
)
from repro.oracle.verify import (
    LAYERS,
    SweepVerifyReport,
    VerifyReport,
    run_verify,
    run_verify_sweep,
)

__all__ = [
    "GOLDEN_SCENARIOS",
    "GoldenScenario",
    "TraceDigest",
    "check_golden",
    "load_golden",
    "write_golden",
    "ChaosContext",
    "Invariant",
    "InvariantRegistry",
    "Violation",
    "default_invariants",
    "MASTER_LOAD_NODE_THRESHOLD",
    "Relation",
    "RelationResult",
    "check_bench_payloads",
    "relations_table",
    "LAYERS",
    "SweepVerifyReport",
    "VerifyReport",
    "run_verify",
    "run_verify_sweep",
]
