"""The ``repro verify`` engine: run every oracle layer, one verdict.

Composes the three layers — differential relations, metamorphic
relations, golden-trace comparison — into a single report with a
process-exit-friendly ``ok``.  The CLI wrapper in :mod:`repro.cli` is a
thin shell over :func:`run_verify`.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field
from pathlib import Path

from repro.oracle.relations import RelationResult

LAYERS = ("differential", "metamorphic", "golden")


def _validate_relations(relations: t.Sequence[str] | None) -> set[str] | None:
    """Resolve a relation-name filter; raises on names nobody registers."""
    if not relations:
        return None
    from repro.oracle.relations import relations_table

    wanted = set(relations)
    known = {r.name for r in relations_table()}
    missing = wanted - known
    if missing:
        raise ValueError(
            f"unknown relations: {sorted(missing)} (known: {sorted(known)})"
        )
    return wanted


@dataclass
class VerifyReport:
    """Every relation outcome of one verification run."""

    seed: int
    results: list[RelationResult] = field(default_factory=list)
    #: golden files written by ``--update-golden`` (empty otherwise)
    updated: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def to_text(self) -> str:
        lines = [r.line() for r in self.results]
        for path in self.updated:
            lines.append(f"[gold] wrote {path}")
        verdict = "OK" if self.ok else "FAIL"
        lines.append(
            f"verify: {verdict} — {len(self.results) - self.n_failed}/{len(self.results)} "
            f"relations held (seed {self.seed})"
        )
        return "\n".join(lines)

    def to_payload(self) -> dict[str, t.Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "n_relations": len(self.results),
            "n_failed": self.n_failed,
            "updated": list(self.updated),
            "results": [
                {"relation": r.relation, "layer": r.layer, "ok": r.ok, "detail": r.detail}
                for r in self.results
            ],
        }


def run_verify(
    seed: int = 0,
    layers: t.Sequence[str] = LAYERS,
    golden_dir: Path | None = None,
    update_golden: bool = False,
    progress: t.Callable[[str], None] | None = None,
    relations: t.Sequence[str] | None = None,
) -> VerifyReport:
    """Run the requested oracle layers and collect every outcome.

    Args:
        seed: master seed for the differential and metamorphic layers
            (golden scenarios carry their own frozen seeds).
        layers: subset of :data:`LAYERS` to run, in that order.
        golden_dir: where frozen traces live (default ``tests/golden``).
        update_golden: regenerate the frozen files instead of comparing
            against them.
        progress: per-relation callback (the CLI streams lines through
            it; pass ``None`` for silent collection).
        relations: restrict the differential/metamorphic layers to these
            relation names.  The golden layer — whose checks are frozen
            scenarios, not named relations — is skipped when a filter is
            given.  Unknown names raise.
    """
    unknown = set(layers) - set(LAYERS)
    if unknown:
        raise ValueError(f"unknown verify layers: {sorted(unknown)}")
    wanted = _validate_relations(relations)
    report = VerifyReport(seed=seed)

    def record(result: RelationResult) -> None:
        report.results.append(result)
        if progress is not None:
            progress(result.line())

    if "differential" in layers:
        from repro.oracle.differential import DIFFERENTIAL_RELATIONS

        for relation in DIFFERENTIAL_RELATIONS:
            if wanted is not None and relation.name not in wanted:
                continue
            record(relation.run(seed=seed))
    if "metamorphic" in layers:
        from repro.oracle.metamorphic import METAMORPHIC_RELATIONS

        for relation in METAMORPHIC_RELATIONS:
            if wanted is not None and relation.name not in wanted:
                continue
            record(relation.run(seed=seed))
    if "golden" in layers and wanted is not None:
        layers = [layer for layer in layers if layer != "golden"]
    if "golden" in layers:
        from repro.oracle.golden import check_golden, write_golden

        if update_golden:
            for path in write_golden(golden_dir):
                report.updated.append(str(path))
                if progress is not None:
                    progress(f"[gold] wrote {path}")
        for result in check_golden(golden_dir):
            record(result)
    return report


# ---------------------------------------------------------------------------
# seed sweeps (the parallel surface)
# ---------------------------------------------------------------------------
@dataclass
class SweepVerifyReport:
    """A seed sweep: one :class:`VerifyReport` per seed, in seed order."""

    seeds: list[int]
    reports: list[VerifyReport] = field(default_factory=list)
    #: cells that crashed even after retry (the sweep completed anyway)
    failures: list[t.Any] = field(default_factory=list)
    jobs: int = 1

    @property
    def ok(self) -> bool:
        return not self.failures and all(r.ok for r in self.reports)

    @property
    def n_failed(self) -> int:
        return sum(r.n_failed for r in self.reports)

    def to_text(self) -> str:
        blocks = [r.to_text() for r in self.reports]
        held = sum(len(r.results) - r.n_failed for r in self.reports)
        total = sum(len(r.results) for r in self.reports)
        lines = [
            f"verify sweep: {'OK' if self.ok else 'FAIL'} — {held}/{total} "
            f"relations held over {len(self.seeds)} seed(s) {self.seeds}"
        ]
        for failure in self.failures:
            detail = (getattr(failure, "error", None) or "unknown").splitlines()[-1]
            lines.append(f"  CRASHED {failure.task_id}: {detail}")
        return "\n\n".join(blocks + ["\n".join(lines)])

    def to_payload(self) -> dict[str, t.Any]:
        return {
            "ok": self.ok,
            "seeds": list(self.seeds),
            "n_failed": self.n_failed,
            "failures": [
                {
                    "cell": getattr(f, "task_id", "?"),
                    "error": (getattr(f, "error", None) or "").splitlines()[-1:],
                }
                for f in self.failures
            ],
            "reports": [r.to_payload() for r in self.reports],
        }


def run_verify_sweep(
    seeds: t.Sequence[int],
    layers: t.Sequence[str] = LAYERS,
    golden_dir: Path | None = None,
    jobs: int = 1,
    progress: t.Callable[[str], None] | None = None,
    relations: t.Sequence[str] | None = None,
) -> SweepVerifyReport:
    """Run the oracle layers across many seeds, optionally in parallel.

    The grid is one cell per ``(seed, layer)``; merged per-seed reports
    concatenate their layers in :data:`LAYERS` order, so a single-seed
    sweep's per-seed payload is byte-identical to a serial
    :func:`run_verify` at that seed.  ``--update-golden`` is a serial,
    file-writing affair and deliberately has no sweep equivalent.
    ``relations`` restricts the named-relation layers exactly as in
    :func:`run_verify` (the golden layer drops out of the grid).
    """
    from repro.oracle.relations import RelationResult
    from repro.parallel.pool import Task, TaskResult, run_tasks

    unknown = set(layers) - set(LAYERS)
    if unknown:
        raise ValueError(f"unknown verify layers: {sorted(unknown)}")
    wanted = _validate_relations(relations)
    ordered_layers = [layer for layer in LAYERS if layer in layers]
    if wanted is not None:
        ordered_layers = [layer for layer in ordered_layers if layer != "golden"]
    tasks = [
        Task(
            id=f"s{seed}/{layer}",
            kind="verify",
            spec={
                "seed": int(seed),
                "layer": layer,
                "golden_dir": str(golden_dir) if golden_dir is not None else None,
                "relations": sorted(wanted) if wanted is not None else None,
            },
        )
        for seed in seeds
        for layer in ordered_layers
    ]

    def on_cell(result: TaskResult) -> None:
        if progress is None:
            return
        if result.ok:
            verdict = "ok" if result.value["ok"] else "FAIL"
            progress(f"{result.task_id:<28} {verdict}  ({result.wall_s:.2f}s)")
        else:
            progress(f"{result.task_id:<28} CRASHED after {result.attempts} attempt(s)")

    outcomes = run_tasks(tasks, jobs=jobs, progress=on_cell)
    by_id = {o.task_id: o for o in outcomes}
    reports = []
    for seed in seeds:
        merged = VerifyReport(seed=int(seed))
        for layer in ordered_layers:
            outcome = by_id[f"s{seed}/{layer}"]
            if not outcome.ok:
                continue
            for entry in outcome.value["payload"]["results"]:
                merged.results.append(
                    RelationResult(
                        relation=entry["relation"],
                        ok=entry["ok"],
                        detail=entry["detail"],
                        layer=entry["layer"],
                    )
                )
        reports.append(merged)
    return SweepVerifyReport(
        seeds=[int(s) for s in seeds],
        reports=reports,
        failures=[o for o in outcomes if not o.ok],
        jobs=jobs,
    )
