"""The ``repro verify`` engine: run every oracle layer, one verdict.

Composes the three layers — differential relations, metamorphic
relations, golden-trace comparison — into a single report with a
process-exit-friendly ``ok``.  The CLI wrapper in :mod:`repro.cli` is a
thin shell over :func:`run_verify`.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field
from pathlib import Path

from repro.oracle.relations import RelationResult

LAYERS = ("differential", "metamorphic", "golden")


@dataclass
class VerifyReport:
    """Every relation outcome of one verification run."""

    seed: int
    results: list[RelationResult] = field(default_factory=list)
    #: golden files written by ``--update-golden`` (empty otherwise)
    updated: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def to_text(self) -> str:
        lines = [r.line() for r in self.results]
        for path in self.updated:
            lines.append(f"[gold] wrote {path}")
        verdict = "OK" if self.ok else "FAIL"
        lines.append(
            f"verify: {verdict} — {len(self.results) - self.n_failed}/{len(self.results)} "
            f"relations held (seed {self.seed})"
        )
        return "\n".join(lines)

    def to_payload(self) -> dict[str, t.Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "n_relations": len(self.results),
            "n_failed": self.n_failed,
            "updated": list(self.updated),
            "results": [
                {"relation": r.relation, "layer": r.layer, "ok": r.ok, "detail": r.detail}
                for r in self.results
            ],
        }


def run_verify(
    seed: int = 0,
    layers: t.Sequence[str] = LAYERS,
    golden_dir: Path | None = None,
    update_golden: bool = False,
    progress: t.Callable[[str], None] | None = None,
) -> VerifyReport:
    """Run the requested oracle layers and collect every outcome.

    Args:
        seed: master seed for the differential and metamorphic layers
            (golden scenarios carry their own frozen seeds).
        layers: subset of :data:`LAYERS` to run, in that order.
        golden_dir: where frozen traces live (default ``tests/golden``).
        update_golden: regenerate the frozen files instead of comparing
            against them.
        progress: per-relation callback (the CLI streams lines through
            it; pass ``None`` for silent collection).
    """
    unknown = set(layers) - set(LAYERS)
    if unknown:
        raise ValueError(f"unknown verify layers: {sorted(unknown)}")
    report = VerifyReport(seed=seed)

    def record(result: RelationResult) -> None:
        report.results.append(result)
        if progress is not None:
            progress(result.line())

    if "differential" in layers:
        from repro.oracle.differential import DIFFERENTIAL_RELATIONS

        for relation in DIFFERENTIAL_RELATIONS:
            record(relation.run(seed=seed))
    if "metamorphic" in layers:
        from repro.oracle.metamorphic import METAMORPHIC_RELATIONS

        for relation in METAMORPHIC_RELATIONS:
            record(relation.run(seed=seed))
    if "golden" in layers:
        from repro.oracle.golden import check_golden, write_golden

        if update_golden:
            for path in write_golden(golden_dir):
                report.updated.append(str(path))
                if progress is not None:
                    progress(f"[gold] wrote {path}")
        for result in check_golden(golden_dir):
            record(result)
    return report
