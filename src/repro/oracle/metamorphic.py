"""The metamorphic suite: transformed workloads, known output relations.

With no ground-truth schedule to compare against, the scheduler is
checked through transformations whose effect on the output is known *a
priori*: renaming job IDs changes nothing, scaling every duration by k
scales the schedule by k, a strictly larger machine can only help a
work-conserving FCFS queue, and reseeding changes the trace but never
the safety invariants.

Everything runs through one deterministic **replay kernel**
(:func:`replay`) driving the production queue / pool / scheduler
classes, so the relations exercise the exact decision code the
simulated resource managers use — not a reimplementation.

A deliberate exclusion: the capacity relation runs FCFS, not EASY
backfill.  Backfill is *not* monotone in machine size (a freed node can
re-order backfill opportunities and delay a specific job — the classic
scheduling anomaly, observed here empirically on ~half of random
seeds), so "add an idle node" is only a sound oracle for the
work-conserving FCFS policy.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.topology import Topology
from repro.errors import SchedulingError
from repro.sched.allocator import NodePool
from repro.sched.backfill import BackfillScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.job import Job, JobState
from repro.sched.placement import placement_score
from repro.sched.queue import JobQueue
from repro.oracle.relations import Relation, RelationResult
from repro.workload.synthetic import WorkloadConfig, generate_trace

#: large prime offset for the relabeling transform — far outside any
#: generated ID range, so relabeled and original IDs never collide
RELABEL_OFFSET = 7919


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job, safe to transform and replay."""

    job_id: int
    name: str
    user: str
    n_nodes: int
    runtime_s: float
    user_estimate_s: float | None
    submit_time: float

    def materialize(self) -> Job:
        """A fresh :class:`Job` (scheduler-managed fields reset)."""
        return Job(
            job_id=self.job_id,
            name=self.name,
            user=self.user,
            n_nodes=self.n_nodes,
            runtime_s=self.runtime_s,
            user_estimate_s=self.user_estimate_s,
            submit_time=self.submit_time,
        )


def specs_from_trace(jobs: t.Sequence[Job]) -> list[JobSpec]:
    """Strip a generated trace down to transformable specs."""
    return [
        JobSpec(
            job_id=j.job_id,
            name=j.name,
            user=j.user,
            n_nodes=j.n_nodes,
            runtime_s=j.runtime_s,
            user_estimate_s=j.user_estimate_s,
            submit_time=j.submit_time,
        )
        for j in jobs
    ]


@dataclass
class ReplayResult:
    """Deterministic outcome of one scheduler replay."""

    #: ``(job_id, start_time, node_ids)`` in decision order
    decisions: list[tuple[int, float, tuple[int, ...]]]
    #: per-job ``(start_time, end_time)``
    spans: dict[int, tuple[float, float]]
    makespan: float

    def start_order(self) -> list[int]:
        return [job_id for job_id, _, _ in self.decisions]

    def wait_times(self, specs: t.Sequence[JobSpec]) -> dict[int, float]:
        return {s.job_id: self.spans[s.job_id][0] - s.submit_time for s in specs}


def replay(
    specs: t.Sequence[JobSpec],
    n_nodes: int,
    scheduler: t.Any | None = None,
    placement: t.Any | None = None,
) -> ReplayResult:
    """Replay a job stream through the production scheduler stack.

    A minimal event loop — submissions and completions on a
    ``(time, kind, seq)`` heap, one ``scheduler.plan()`` pass after every
    event — over the real :class:`JobQueue` / :class:`NodePool` /
    scheduler classes.  Every job must fit the machine and every job
    must eventually run; the kernel raises otherwise, which is itself a
    liveness check.  ``placement`` is handed to the :class:`NodePool`
    (``None`` keeps the native first-fit-by-id path).
    """
    import heapq

    scheduler = scheduler or BackfillScheduler()
    pool = NodePool(range(n_nodes), placement=placement)
    queue = JobQueue()
    jobs = {s.job_id: s.materialize() for s in specs}
    for s in specs:
        if s.n_nodes > n_nodes:
            raise ValueError(f"job {s.job_id} wants {s.n_nodes} > machine {n_nodes}")
    # kind 0 = submit, 1 = completion; seq breaks remaining ties
    heap: list[tuple[float, int, int]] = []
    seq = 0
    id_at: dict[int, int] = {}
    for s in specs:
        heap.append((s.submit_time, 0, seq))
        id_at[seq] = s.job_id
        seq += 1
    heapq.heapify(heap)
    decisions: list[tuple[int, float, tuple[int, ...]]] = []
    spans: dict[int, tuple[float, float]] = {}
    makespan = 0.0
    while heap:
        now, kind, evseq = heapq.heappop(heap)
        job = jobs[id_at[evseq]]
        if kind == 0:
            queue.submit(job)
        else:
            pool.release(job.job_id)
            job.finish(now, JobState.TIMEOUT if job.will_timeout else JobState.COMPLETED)
            assert job.start_time is not None
            spans[job.job_id] = (job.start_time, now)
            makespan = max(makespan, now)
        for started, node_ids in scheduler.plan(queue, pool, now):
            started.start(now, node_ids)
            decisions.append((started.job_id, now, node_ids))
            heap_entry = (now + started.effective_runtime_s, 1, seq)
            id_at[seq] = started.job_id
            seq += 1
            heapq.heappush(heap, heap_entry)
    stuck = [j.job_id for j in jobs.values() if not j.is_terminal]
    if stuck:
        raise RuntimeError(f"replay deadlock: jobs never finished: {stuck[:5]}")
    return ReplayResult(decisions=decisions, spans=spans, makespan=makespan)


# ---------------------------------------------------------------------------
# the shared workload for the scheduler relations
# ---------------------------------------------------------------------------
def _base_specs(seed: int, n_jobs: int, max_nodes: int) -> list[JobSpec]:
    cfg = WorkloadConfig(jobs_per_day=1500.0, max_nodes=max_nodes, name="oracle-meta")
    return specs_from_trace(generate_trace(cfg, n_jobs, seed=seed))


class _SchedulerRelation(Relation):
    """Base for relations replaying one transformed workload pair."""

    layer = "metamorphic"
    n_jobs = 80
    n_nodes = 64

    def _specs(self, seed: int) -> list[JobSpec]:
        return _base_specs(seed, self.n_jobs, max_nodes=self.n_nodes // 2)


class RelabelInvarianceRelation(_SchedulerRelation):
    """Job-ID relabeling must not change a single decision.

    Scheduling keys on arrival order, sizes, and estimates — never on the
    ID itself.  Every decision (start time *and* chosen nodes) must be
    bit-identical after shifting all IDs by a large prime.
    """

    name = "relabel-invariance"
    section = "VI (simulation methodology)"
    claim = "job-ID relabeling leaves every allocation decision unchanged"

    def run(self, seed: int = 0) -> RelationResult:
        specs = self._specs(seed)
        relabeled = [replace(s, job_id=s.job_id + RELABEL_OFFSET) for s in specs]
        base = replay(specs, self.n_nodes)
        moved = replay(relabeled, self.n_nodes)
        mapped = [(jid - RELABEL_OFFSET, at, nodes) for jid, at, nodes in moved.decisions]
        ok = mapped == base.decisions
        n_diff = sum(1 for a, b in zip(mapped, base.decisions) if a != b)
        detail = f"seed={seed} jobs={len(specs)}: {len(base.decisions)} decisions"
        if not ok:
            detail += f" | {n_diff} decisions changed under relabeling"
        return self._result(ok, detail)


class JitterStabilityRelation(_SchedulerRelation):
    """Order-preserving sub-millisecond arrival jitter: same schedule.

    Nudging every submit time forward by a strictly order-preserving
    epsilon must keep the start order and the node allocations
    identical; start times may move by at most the jitter magnitude.
    """

    name = "jitter-stability"
    section = "VI (simulation methodology)"
    claim = "order-preserving arrival jitter preserves decision order and allocations"

    JITTER = 1e-4

    def run(self, seed: int = 0) -> RelationResult:
        specs = self._specs(seed)
        delta = self.JITTER / (len(specs) + 1)
        jittered = [replace(s, submit_time=s.submit_time + (i + 1) * delta) for i, s in enumerate(specs)]
        base = replay(specs, self.n_nodes)
        moved = replay(jittered, self.n_nodes)
        same_order = moved.start_order() == base.start_order()
        same_nodes = [n for _, _, n in moved.decisions] == [n for _, _, n in base.decisions]
        drift = max(
            (abs(a - b) for (_, a, _), (_, b, _) in zip(moved.decisions, base.decisions)),
            default=0.0,
        )
        ok = same_order and same_nodes and drift <= self.JITTER + 1e-9
        detail = f"seed={seed} jobs={len(specs)}: max start drift {drift:.2e}s"
        if not same_order:
            detail += " | start order changed"
        if not same_nodes:
            detail += " | node choices changed"
        return self._result(ok, detail)


class RuntimeScalingRelation(_SchedulerRelation):
    """Scaling every duration by k scales the schedule by exactly k.

    Multiplying runtimes, user estimates, and submit times by a common
    factor is a pure change of time unit; start times and the makespan
    must scale by the same factor to within floating-point noise.
    """

    name = "runtime-scaling"
    section = "VI (simulation methodology)"
    claim = "uniform runtime scaling scales start times and makespan by the same factor"

    FACTOR = 3.0

    def run(self, seed: int = 0) -> RelationResult:
        specs = self._specs(seed)
        k = self.FACTOR
        scaled = [
            replace(
                s,
                runtime_s=s.runtime_s * k,
                user_estimate_s=None if s.user_estimate_s is None else s.user_estimate_s * k,
                submit_time=s.submit_time * k,
            )
            for s in specs
        ]
        base = replay(specs, self.n_nodes)
        moved = replay(scaled, self.n_nodes)
        same_shape = moved.start_order() == base.start_order() and [
            n for _, _, n in moved.decisions
        ] == [n for _, _, n in base.decisions]
        rel_err = 0.0
        for (_, at_scaled, _), (_, at_base, _) in zip(moved.decisions, base.decisions):
            expect = at_base * k
            denom = max(abs(expect), 1.0)
            rel_err = max(rel_err, abs(at_scaled - expect) / denom)
        mk_err = abs(moved.makespan - base.makespan * k) / max(base.makespan * k, 1.0)
        ok = same_shape and rel_err <= 1e-9 and mk_err <= 1e-9
        detail = (
            f"seed={seed} jobs={len(specs)}: k={k:g}, max relative start error {rel_err:.2e}, "
            f"makespan error {mk_err:.2e}"
        )
        if not same_shape:
            detail += " | schedule shape changed under scaling"
        return self._result(ok, detail)


class CapacityMonotonicityRelation(_SchedulerRelation):
    """An extra idle node never hurts any job under FCFS.

    FCFS is work-conserving and order-preserving, so growing the machine
    by one idle node can only start each job no later.  (EASY backfill
    is deliberately excluded: it exhibits the classic scheduling anomaly
    where extra capacity re-orders backfill and delays individual jobs.)
    """

    name = "capacity-monotonicity"
    section = "VII-D (scheduling comparison)"
    claim = "adding an idle node never increases any job's FCFS wait time"

    def run(self, seed: int = 0) -> RelationResult:
        specs = self._specs(seed)
        small = replay(specs, self.n_nodes, FcfsScheduler())
        large = replay(specs, self.n_nodes + 1, FcfsScheduler())
        small_waits = small.wait_times(specs)
        large_waits = large.wait_times(specs)
        regressed = [
            (jid, large_waits[jid] - small_waits[jid])
            for jid in small_waits
            if large_waits[jid] > small_waits[jid] + 1e-9
        ]
        improved = sum(1 for jid in small_waits if large_waits[jid] < small_waits[jid] - 1e-9)
        ok = not regressed
        detail = (
            f"seed={seed} jobs={len(specs)}: {self.n_nodes}->{self.n_nodes + 1} nodes, "
            f"{improved} waits improved, {len(regressed)} regressed"
        )
        if regressed:
            worst = max(regressed, key=lambda r: r[1])
            detail += f" | worst: job {worst[0]} +{worst[1]:.1f}s"
        return self._result(ok, detail)


class SeedSensitivityRelation(_SchedulerRelation):
    """Reseeding changes the trace, never the safety invariants.

    Two seeds must generate genuinely different workloads (else the
    generator is broken and every same-seed oracle above is vacuous),
    and each replay must satisfy the schedule-validity invariants: no
    start before submission, no overlapping use of one node, every job
    terminal.
    """

    name = "seed-sensitivity"
    section = "VI (simulation methodology)"
    claim = "seed changes alter the trace but never schedule-validity invariants"

    def run(self, seed: int = 0) -> RelationResult:
        problems: list[str] = []
        digests = []
        for s in (seed, seed + 1):
            specs = self._specs(s)
            digests.append(tuple((x.n_nodes, round(x.runtime_s, 6), round(x.submit_time, 6)) for x in specs))
            result = replay(specs, self.n_nodes)
            by_id = {x.job_id: x for x in specs}
            busy: list[tuple[float, float, tuple[int, ...]]] = []
            for jid, (start, end) in result.spans.items():
                if start + 1e-9 < by_id[jid].submit_time:
                    problems.append(f"seed {s}: job {jid} started before submission")
                busy.append((start, end, next(n for j, _, n in result.decisions if j == jid)))
            for i, (s1, e1, n1) in enumerate(busy):
                for s2, e2, n2 in busy[i + 1 :]:
                    if s1 < e2 and s2 < e1 and set(n1) & set(n2):
                        problems.append(f"seed {s}: overlapping jobs share nodes")
        if digests[0] == digests[1]:
            problems.append(f"seeds {seed} and {seed + 1} generated identical traces")
        detail = f"seeds {seed},{seed + 1}: traces differ, schedules valid"
        if problems:
            detail = "; ".join(problems[:3])
        return self._result(not problems, detail)


class ShrinkGrowRoundTripRelation(Relation):
    """Shrink-then-grow on a saturated machine restores the allocation.

    A malleable job and a rigid filler occupy the whole pool, so after a
    shrink the freed nodes are the *only* free ones — regrowing by the
    same amount must hand back exactly the freed set, restoring the
    original allocation bit for bit (and leaking no node either way).
    Repeated with seeded random shrink sizes.
    """

    name = "shrink-grow-roundtrip"
    layer = "metamorphic"
    section = "VII-D (elastic protocol)"
    claim = "shrink-then-grow on a full machine restores the exact allocation"

    N_NODES = 32
    WIDTH = 8
    ROUNDS = 8

    def run(self, seed: int = 0) -> RelationResult:
        rng = np.random.default_rng(seed)
        pool = NodePool(range(self.N_NODES))
        elastic = Job(
            job_id=1,
            name="elastic",
            user="oracle",
            n_nodes=self.WIDTH,
            runtime_s=3600.0,
            user_estimate_s=3600.0,
            submit_time=0.0,
            min_nodes=1,
            max_nodes=self.N_NODES,
        )
        filler = Job(
            job_id=2,
            name="filler",
            user="oracle",
            n_nodes=self.N_NODES - self.WIDTH,
            runtime_s=3600.0,
            user_estimate_s=3600.0,
            submit_time=0.0,
        )
        original = pool.allocate(elastic, 0.0)
        elastic.start(0.0, original)
        filler.start(0.0, pool.allocate(filler, 0.0))
        problems: list[str] = []
        for step in range(1, self.ROUNDS + 1):
            give = int(rng.integers(1, self.WIDTH))
            victims = tuple(sorted(elastic.allocated_nodes)[-give:])
            at = float(step) * 100.0
            # A broken resize path may corrupt state enough that a later
            # round raises; surface that as a failed relation, not a crash.
            try:
                pool.shrink_allocation(elastic.job_id, victims)
                elastic.shrink(at, victims)
                regrown = pool.grow_allocation(elastic.job_id, give)
                elastic.grow(at + 50.0, regrown)
            except SchedulingError as exc:
                problems.append(f"step {step}: resize raised: {exc}")
                break
            if set(regrown) != set(victims):
                problems.append(f"step {step}: regrew {sorted(regrown)} != freed {sorted(victims)}")
            if set(elastic.allocated_nodes) != set(original):
                problems.append(f"step {step}: allocation not restored")
            if set(pool.running[elastic.job_id].node_ids) != set(original):
                problems.append(f"step {step}: pool record diverged")
            if pool.n_free != 0:
                problems.append(f"step {step}: {pool.n_free} node(s) leaked")
        detail = f"seed={seed}: {self.ROUNDS} shrink/grow round-trips on a full {self.N_NODES}-node pool"
        if problems:
            detail = "; ".join(problems[:3])
        return self._result(not problems, detail)


class RackRelabelScoreRelation(Relation):
    """The placement score is invariant under rack relabelling.

    Permuting whole racks (node ``rack*R + off`` maps to
    ``perm[rack]*R + off``) preserves every within-board/chassis/rack
    group size, hence every hop-level pair count — the score must be
    bit-identical on seeded random node sets.
    """

    name = "rack-relabel-score"
    layer = "metamorphic"
    section = "II (topology model)"
    claim = "hop-level placement score unchanged under rack permutation"

    N_RACKS = 6
    TRIALS = 50

    def run(self, seed: int = 0) -> RelationResult:
        topo = Topology(nodes_per_board=2, boards_per_chassis=2, chassis_per_rack=2)
        npr = topo.nodes_per_rack
        n = npr * self.N_RACKS
        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(self.TRIALS):
            k = int(rng.integers(2, 2 * npr + 1))
            nodes = tuple(int(i) for i in rng.choice(n, size=k, replace=False))
            perm = rng.permutation(self.N_RACKS)
            relabeled = tuple(int(perm[v // npr]) * npr + (v % npr) for v in nodes)
            diff = abs(placement_score(nodes, topo) - placement_score(relabeled, topo))
            worst = max(worst, diff)
        ok = worst <= 1e-12
        detail = f"seed={seed}: {self.TRIALS} node sets over {self.N_RACKS} racks, max score drift {worst:.2e}"
        return self._result(ok, detail)


class ShrinkChaosInvariantsRelation(Relation):
    """Contraction under injected node failure preserves every invariant.

    Runs the ``malleable-shrink-storm`` chaos scenario — dense point and
    burst faults against a half-elastic job mix, where failures contract
    running jobs instead of killing them — and asserts the full default
    invariant set (node conservation, width bounds, scheduler
    conservation, ...) records zero violations.
    """

    name = "shrink-chaos-invariants"
    layer = "metamorphic"
    section = "VII (failure handling)"
    claim = "failure-driven contraction violates no chaos invariant"

    def run(self, seed: int = 0) -> RelationResult:
        from repro.chaos.campaign import run_scenario

        report = run_scenario("malleable-shrink-storm", seed=seed)
        detail = (
            f"seed={seed}: {report.jobs_grown} grow(s), {report.jobs_shrunk} shrink(s), "
            f"{report.jobs_completed}/{report.jobs_submitted} completed, "
            f"{report.total_violations} violation(s)"
        )
        return self._result(report.ok, detail)


#: the metamorphic registry
METAMORPHIC_RELATIONS: tuple[Relation, ...] = (
    RelabelInvarianceRelation(),
    JitterStabilityRelation(),
    RuntimeScalingRelation(),
    CapacityMonotonicityRelation(),
    SeedSensitivityRelation(),
    ShrinkGrowRoundTripRelation(),
    RackRelabelScoreRelation(),
    ShrinkChaosInvariantsRelation(),
)
