"""Golden traces: frozen event-stream digests for regression pinning.

Differential and metamorphic relations catch *wrong* behaviour; golden
traces catch *changed* behaviour.  Each scenario runs a short canonical
simulation with a :class:`TraceDigest` attached to the simulator's
trace-hook seam, folding every processed event's ``(time, priority,
sequence)`` triple into one SHA-256.  The digest plus a summarized
metric vector is frozen under ``tests/golden/GOLDEN_<scenario>.json``;
any event inserted, dropped, re-ordered, or re-timed anywhere in the
stack changes the hash.

Two rules keep this honest:

* same seed ⇒ byte-identical file — every recorded quantity derives
  from simulated state, never the host clock;
* the files regenerate **only** through ``repro verify
  --update-golden`` — a mismatch is a finding to explain (and then
  deliberately re-freeze), not noise to silence.

Scenario seeds are baked into the scenario definitions (a digest is
only meaningful against the workload it froze), so the golden layer
ignores the CLI's ``--seed``.
"""

from __future__ import annotations

import hashlib
import json
import struct
import typing as t
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.api import build_rm, quick_cluster
from repro.oracle.relations import RelationResult
from repro.workload.synthetic import WorkloadConfig, generate_trace

SCHEMA = "repro-golden/1"

#: repo root (this file lives at src/repro/oracle/golden.py)
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


class TraceDigest:
    """SHA-256 over the deterministic event stream of one simulator.

    Attach via :meth:`repro.simkit.core.Simulator.add_trace_hook`; each
    processed event folds its ``(time, priority, seq)`` into the hash as
    packed little-endian ``double, int64, int64`` — the full heap
    ordering key, so the digest pins the exact replay order.
    """

    def __init__(self) -> None:
        self._sha = hashlib.sha256()
        self.events = 0
        self.last_time = 0.0

    def hook(self, when: float, priority: int, seq: int) -> None:
        self._sha.update(struct.pack("<dqq", when, priority, seq))
        self.events += 1
        self.last_time = when

    def hexdigest(self) -> str:
        return self._sha.hexdigest()


@dataclass(frozen=True)
class GoldenScenario:
    """One canonical frozen-trace scenario."""

    name: str
    rm: str
    n_nodes: int
    n_satellites: int
    seed: int
    failures: bool = False
    estimator: t.Any = None
    #: the generator spreads arrivals diurnally over a day, so golden
    #: runs use a full-day horizon — enough completions to train the
    #: estimator and enough contention for scheduling to matter
    n_jobs: int = 300
    horizon_s: float = 86_400.0

    def record(self) -> dict[str, t.Any]:
        """Run the scenario and return its golden payload."""
        cluster = quick_cluster(
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            seed=self.seed,
            failures=self.failures,
        )
        digest = TraceDigest()
        cluster.sim.add_trace_hook(digest.hook)
        manager = build_rm(self.rm, cluster, estimator=self.estimator)
        workload = WorkloadConfig(
            jobs_per_day=self.n_jobs * 86_400.0 / self.horizon_s,
            max_nodes=max(1, self.n_nodes // 4),
            name=f"golden-{self.name}",
        )
        jobs = generate_trace(workload, self.n_jobs, seed=self.seed, start_time=cluster.sim.now + 1.0)
        jobs = [j for j in jobs if j.submit_time < cluster.sim.now + self.horizon_s * 0.95]
        manager.run_trace(jobs, until=cluster.sim.now + self.horizon_s)
        report = manager.report(horizon_s=self.horizon_s)
        assert report.schedule is not None
        return {
            "schema": SCHEMA,
            "scenario": self.name,
            "config": {
                "rm": self.rm,
                "n_nodes": self.n_nodes,
                "n_satellites": self.n_satellites,
                "seed": self.seed,
                "failures": self.failures,
                "estimator": "auto" if self.estimator == "auto" else None,
                "n_jobs": self.n_jobs,
                "horizon_s": self.horizon_s,
            },
            "trace": {
                "digest": f"sha256:{digest.hexdigest()}",
                "events": digest.events,
                "last_event_time_s": digest.last_time,
            },
            "metrics": {
                "master": dict(report.master),
                "schedule": asdict(report.schedule),
            },
        }


#: the canonical frozen scenarios — small enough to re-run on every
#: ``repro verify``, together covering both RMs, failure injection, and
#: the estimation framework
GOLDEN_SCENARIOS: tuple[GoldenScenario, ...] = (
    GoldenScenario(name="slurm-base", rm="slurm", n_nodes=64, n_satellites=1, seed=42),
    GoldenScenario(name="eslurm-base", rm="eslurm", n_nodes=64, n_satellites=2, seed=42),
    GoldenScenario(
        name="eslurm-failures", rm="eslurm", n_nodes=64, n_satellites=2, seed=42, failures=True
    ),
    GoldenScenario(
        name="eslurm-estimator", rm="eslurm", n_nodes=64, n_satellites=2, seed=42, estimator="auto"
    ),
)


def golden_path(golden_dir: Path, name: str) -> Path:
    return Path(golden_dir) / f"GOLDEN_{name}.json"


def dump_canonical(payload: t.Mapping[str, t.Any]) -> str:
    """The canonical byte form — sorted keys, two-space indent."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def write_golden(
    golden_dir: Path | None = None,
    scenarios: t.Sequence[GoldenScenario] = GOLDEN_SCENARIOS,
) -> list[Path]:
    """Re-run every scenario and freeze its payload (``--update-golden``)."""
    out_dir = Path(golden_dir) if golden_dir is not None else DEFAULT_GOLDEN_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario in scenarios:
        path = golden_path(out_dir, scenario.name)
        path.write_text(dump_canonical(scenario.record()))
        paths.append(path)
    return paths


def load_golden(golden_dir: Path | None = None) -> dict[str, dict[str, t.Any]]:
    """Frozen payloads by scenario name (missing files simply absent)."""
    src = Path(golden_dir) if golden_dir is not None else DEFAULT_GOLDEN_DIR
    loaded: dict[str, dict[str, t.Any]] = {}
    for path in sorted(src.glob("GOLDEN_*.json")):
        payload = json.loads(path.read_text())
        loaded[payload["scenario"]] = payload
    return loaded


def compare(current: t.Mapping[str, t.Any], frozen: t.Mapping[str, t.Any]) -> list[RelationResult]:
    """Judge a fresh recording against its frozen payload."""
    name = current["scenario"]
    results = []
    cur_tr, froz_tr = current["trace"], frozen["trace"]
    digest_ok = cur_tr["digest"] == froz_tr["digest"]
    detail = f"{cur_tr['events']} events, {cur_tr['digest'][:23]}…"
    if not digest_ok:
        detail = (
            f"event stream diverged: {cur_tr['events']} events vs frozen {froz_tr['events']}, "
            f"{cur_tr['digest'][:23]}… vs {froz_tr['digest'][:23]}…"
        )
    results.append(
        RelationResult(relation=f"golden-digest/{name}", ok=digest_ok, detail=detail, layer="golden")
    )
    metrics_ok = current["metrics"] == frozen["metrics"]
    m_detail = "metric vector matches frozen values"
    if not metrics_ok:
        diffs = [
            f"{section}.{key}"
            for section in current["metrics"]
            for key in current["metrics"][section]
            if current["metrics"][section][key] != frozen["metrics"].get(section, {}).get(key)
        ]
        m_detail = f"metrics diverged: {', '.join(diffs[:5]) or 'section mismatch'}"
    results.append(
        RelationResult(relation=f"golden-metrics/{name}", ok=metrics_ok, detail=m_detail, layer="golden")
    )
    return results


def check_golden(
    golden_dir: Path | None = None,
    scenarios: t.Sequence[GoldenScenario] = GOLDEN_SCENARIOS,
) -> list[RelationResult]:
    """Re-run every scenario and compare against the frozen files."""
    frozen = load_golden(golden_dir)
    results: list[RelationResult] = []
    for scenario in scenarios:
        if scenario.name not in frozen:
            results.append(
                RelationResult(
                    relation=f"golden-digest/{scenario.name}",
                    ok=False,
                    detail="no frozen trace on disk — run `repro verify --update-golden`",
                    layer="golden",
                )
            )
            continue
        results.extend(compare(scenario.record(), frozen[scenario.name]))
    return results
