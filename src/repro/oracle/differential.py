"""The differential engine: paired simulations, paper-shaped orderings.

Simulators with no ground truth are checked the way the paper argues
its claims: *relatively*.  Each relation here runs two arms on an
identical seeded workload and asserts the ordering the paper reports —
the master does strictly less work once satellites exist (Section III /
VII-B), the FP-Tree bounds broadcast latency under injected failures
(Section IV), and AEA-gated model adoption never loses to raw user
estimates (Section V).  Same seed, same workload generator, same
cluster build: any difference between the arms is the treatment, not
the noise.
"""

from __future__ import annotations

import numpy as np

from repro.api import SimulationConfig, TelemetryConfig, run_simulation
from repro.cluster.failures import FailureModel
from repro.cluster.spec import ClusterSpec
from repro.estimate.framework import EslurmEstimator, EstimatorConfig
from repro.fptree.constructor import FPTreeBroadcast
from repro.fptree.predictor import OraclePredictor
from repro.network.fabric import NetworkFabric
from repro.network.structures import TreeBroadcast
from repro.oracle.relations import MASTER_LOAD_NODE_THRESHOLD, Relation, RelationResult
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


class MasterOffloadRelation(Relation):
    """slurm vs eslurm on one workload: the master must get cheaper.

    Both arms replay the identical seeded job stream on the identical
    machine; above :data:`~repro.oracle.relations.MASTER_LOAD_NODE_THRESHOLD`
    nodes the ESLURM master must be strictly lower on CPU time, socket
    peak, and messages sent (the ``rm.master.msgs`` telemetry counter) —
    the satellites absorbed that load or the architecture is broken.
    """

    name = "master-offload"
    layer = "differential"
    section = "III, VII-B (Fig. 7)"
    claim = "ESLURM master CPU/sockets/messages strictly below Slurm's at >= threshold nodes"

    def __init__(
        self,
        n_nodes: int = 2 * MASTER_LOAD_NODE_THRESHOLD,
        n_satellites: int = 4,
        n_jobs: int = 120,
        horizon_s: float = 2 * 3600.0,
    ) -> None:
        self.n_nodes = n_nodes
        self.n_satellites = n_satellites
        self.n_jobs = n_jobs
        self.horizon_s = horizon_s

    def _arm(self, rm: str, seed: int) -> dict[str, float]:
        workload = WorkloadConfig(
            jobs_per_day=self.n_jobs * DAY / (0.6 * self.horizon_s),
            max_nodes=max(1, self.n_nodes // 4),
            name=f"oracle-{self.name}",
        )
        result = run_simulation(
            SimulationConfig(
                rm=rm,
                n_nodes=self.n_nodes,
                n_satellites=self.n_satellites,
                seed=seed,
                n_jobs=self.n_jobs,
                horizon_s=self.horizon_s,
                workload=workload,
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        assert result.telemetry is not None
        return {
            "cpu_time_min": result.report.master["cpu_time_min"],
            "sockets_peak": result.report.master["sockets_peak"],
            "master_msgs": float(result.telemetry["counters"].get("rm.master.msgs", 0.0)),
        }

    def run(self, seed: int = 0) -> RelationResult:
        slurm = self._arm("slurm", seed)
        eslurm = self._arm("eslurm", seed)
        breaches = [
            f"{key}: eslurm {eslurm[key]:.4g} !< slurm {slurm[key]:.4g}"
            for key in ("cpu_time_min", "sockets_peak", "master_msgs")
            if not eslurm[key] < slurm[key]
        ]
        detail = (
            f"n={self.n_nodes} seed={seed}: "
            f"cpu {eslurm['cpu_time_min']:.3f} vs {slurm['cpu_time_min']:.3f} min, "
            f"sockets {eslurm['sockets_peak']:.0f} vs {slurm['sockets_peak']:.0f}, "
            f"msgs {eslurm['master_msgs']:.0f} vs {slurm['master_msgs']:.0f}"
        )
        if breaches:
            detail += " | " + "; ".join(breaches)
        return self._result(not breaches, detail)


class FPTreeFailureBoundRelation(Relation):
    """FP-Tree vs plain k-ary broadcast under injected leaf failures.

    Same fabric, same dead set, perfect prediction (the ablation upper
    bound): the FP-Tree makespan must never exceed the plain tree's,
    must beat it strictly when a dead node sits on an inner position of
    the naive layout, and must stay within one dead-node penalty of the
    healthy makespan — Section IV's bound: predicted-failed nodes demote
    to leaves, where a timeout delays nobody downstream.
    """

    name = "fptree-failure-bound"
    layer = "differential"
    section = "IV (Fig. 3/4), VII-A (Fig. 8)"
    claim = "FP-Tree broadcast latency under failures <= plain k-ary, bounded by healthy + 1 timeout"

    def __init__(self, n_nodes: int = 256, width: int = 8, n_dead: int = 12, size_bytes: int = 1024) -> None:
        self.n_nodes = n_nodes
        self.width = width
        self.n_dead = n_dead
        self.size_bytes = size_bytes

    def run(self, seed: int = 0) -> RelationResult:
        sim = Simulator(seed=seed)
        cluster = ClusterSpec(
            n_nodes=self.n_nodes,
            n_satellites=1,
            failure_model=FailureModel.disabled(),
            name=f"oracle-{self.name}",
        ).build(sim)
        fabric = NetworkFabric(sim, cluster)
        targets = cluster.compute_ids()
        rng = np.random.default_rng(seed)
        dead = {int(i) for i in rng.choice(self.n_nodes, size=self.n_dead, replace=False)}
        # Guarantee at least one dead node on an *inner* position of the
        # naive layout (position 1 of [root]+targets is always inner for
        # width >= 2 and n > width) so the strict ordering is decidable.
        dead.add(targets[0])
        root = cluster.master.node_id
        healthy = TreeBroadcast(width=self.width).simulate(root, targets, self.size_bytes, fabric)
        cluster.fail_nodes(sorted(dead))
        plain = TreeBroadcast(width=self.width).simulate(root, targets, self.size_bytes, fabric)
        fp = FPTreeBroadcast(OraclePredictor(cluster), width=self.width).simulate(
            root, targets, self.size_bytes, fabric
        )
        penalty = fabric.config.dead_node_penalty_s
        slack = self.width * fabric.config.send_overhead_s + 1e-9
        bounded = fp.makespan_s <= healthy.makespan_s + penalty + slack
        ordered = fp.makespan_s < plain.makespan_s
        delivered = len(fp.failed) == len(dead)
        detail = (
            f"n={self.n_nodes} w={self.width} dead={len(dead)} seed={seed}: "
            f"healthy {healthy.makespan_s:.4f}s, plain {plain.makespan_s:.4f}s, "
            f"fp {fp.makespan_s:.4f}s (penalty {penalty:.1f}s)"
        )
        if not ordered:
            detail += " | fp !< plain with a dead inner node"
        if not bounded:
            detail += " | fp exceeds healthy + one timeout"
        if not delivered:
            detail += f" | fp missed {len(dead) - len(fp.failed)} dead-node timeouts"
        return self._result(ordered and bounded and delivered, detail)


class EstimatorGateRelation(Relation):
    """AEA-gated model adoption vs raw user estimates, replayed offline.

    The framework replays a seeded trace job by job (estimate at
    submission, observe at completion).  Over every job that carries a
    user estimate, the runtime-weighted absolute error of the *gated*
    estimates must not exceed the user estimates' error (small tolerance
    for ties): the AEA gate exists precisely so the model is only
    trusted where it has proven itself (Section V, Table VIII).
    """

    name = "estimator-aea-gate"
    layer = "differential"
    section = "V (Eq. 3-5), VII-C (Table VIII)"
    claim = "AEA-gated estimates never worse than user estimates on runtime-weighted error"

    #: multiplicative tolerance on the error ratio — the gate guarantees
    #: "not worse", not "always strictly better", and the last few
    #: pre-training jobs are pass-through ties.
    TOLERANCE = 1.02

    def __init__(self, n_jobs: int = 500, k_clusters: int = 12) -> None:
        self.n_jobs = n_jobs
        self.k_clusters = k_clusters

    def run(self, seed: int = 0) -> RelationResult:
        jobs = generate_trace(
            WorkloadConfig(n_users=16, n_apps=12, jobs_per_day=2000.0, max_nodes=64),
            self.n_jobs,
            seed=seed,
        )
        estimator = EslurmEstimator(
            EstimatorConfig(k_clusters=self.k_clusters), rng=np.random.default_rng(seed)
        )
        gated_num = user_num = weight_sum = 0.0
        n_scored = 0
        for job in jobs:
            estimate = estimator.estimate(job, job.submit_time)
            if job.user_estimate_s is not None:
                gated = estimate if estimate is not None else job.user_estimate_s
                weight = job.runtime_s
                gated_num += weight * abs(gated - job.runtime_s)
                user_num += weight * abs(job.user_estimate_s - job.runtime_s)
                weight_sum += weight
                n_scored += 1
            estimator.observe(job, job.submit_time)
        if weight_sum == 0:
            return self._result(False, f"seed={seed}: no jobs carried user estimates")
        gated_err = gated_num / weight_sum
        user_err = user_num / weight_sum
        ok = gated_err <= user_err * self.TOLERANCE
        detail = (
            f"seed={seed} jobs={n_scored}: weighted error gated {gated_err:.1f}s "
            f"vs user {user_err:.1f}s (ratio {gated_err / user_err:.3f})"
        )
        return self._result(ok, detail)


#: the differential registry, in paper-section order
DIFFERENTIAL_RELATIONS: tuple[Relation, ...] = (
    MasterOffloadRelation(),
    FPTreeFailureBoundRelation(),
    EstimatorGateRelation(),
)
