"""The differential engine: paired simulations, paper-shaped orderings.

Simulators with no ground truth are checked the way the paper argues
its claims: *relatively*.  Each relation here runs two arms on an
identical seeded workload and asserts the ordering the paper reports —
the master does strictly less work once satellites exist (Section III /
VII-B), the FP-Tree bounds broadcast latency under injected failures
(Section IV), and AEA-gated model adoption never loses to raw user
estimates (Section V).  Same seed, same workload generator, same
cluster build: any difference between the arms is the treatment, not
the noise.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.api import (
    SimulationConfig,
    TelemetryConfig,
    canonical_json,
    run_simulation,
)
from repro.cluster.failures import FailureModel
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Topology
from repro.estimate.framework import EslurmEstimator, EstimatorConfig
from repro.fptree.constructor import FPTreeBroadcast
from repro.fptree.predictor import OraclePredictor
from repro.network.fabric import NetworkFabric
from repro.network.structures import TreeBroadcast
from repro.oracle.relations import MASTER_LOAD_NODE_THRESHOLD, Relation, RelationResult
from repro.rm.eslurm import EslurmRM
from repro.sched.backfill import BackfillScheduler
from repro.sched.job import JobState
from repro.sched.placement import TopologyAwarePlacement, placement_score
from repro.simkit.core import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0


class MasterOffloadRelation(Relation):
    """slurm vs eslurm on one workload: the master must get cheaper.

    Both arms replay the identical seeded job stream on the identical
    machine; above :data:`~repro.oracle.relations.MASTER_LOAD_NODE_THRESHOLD`
    nodes the ESLURM master must be strictly lower on CPU time, socket
    peak, and messages sent (the ``rm.master.msgs`` telemetry counter) —
    the satellites absorbed that load or the architecture is broken.
    """

    name = "master-offload"
    layer = "differential"
    section = "III, VII-B (Fig. 7)"
    claim = "ESLURM master CPU/sockets/messages strictly below Slurm's at >= threshold nodes"

    def __init__(
        self,
        n_nodes: int = 2 * MASTER_LOAD_NODE_THRESHOLD,
        n_satellites: int = 4,
        n_jobs: int = 120,
        horizon_s: float = 2 * 3600.0,
    ) -> None:
        self.n_nodes = n_nodes
        self.n_satellites = n_satellites
        self.n_jobs = n_jobs
        self.horizon_s = horizon_s

    def _arm(self, rm: str, seed: int) -> dict[str, float]:
        workload = WorkloadConfig(
            jobs_per_day=self.n_jobs * DAY / (0.6 * self.horizon_s),
            max_nodes=max(1, self.n_nodes // 4),
            name=f"oracle-{self.name}",
        )
        result = run_simulation(
            SimulationConfig(
                rm=rm,
                n_nodes=self.n_nodes,
                n_satellites=self.n_satellites,
                seed=seed,
                n_jobs=self.n_jobs,
                horizon_s=self.horizon_s,
                workload=workload,
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        assert result.telemetry is not None
        return {
            "cpu_time_min": result.report.master["cpu_time_min"],
            "sockets_peak": result.report.master["sockets_peak"],
            "master_msgs": float(result.telemetry["counters"].get("rm.master.msgs", 0.0)),
        }

    def run(self, seed: int = 0) -> RelationResult:
        slurm = self._arm("slurm", seed)
        eslurm = self._arm("eslurm", seed)
        breaches = [
            f"{key}: eslurm {eslurm[key]:.4g} !< slurm {slurm[key]:.4g}"
            for key in ("cpu_time_min", "sockets_peak", "master_msgs")
            if not eslurm[key] < slurm[key]
        ]
        detail = (
            f"n={self.n_nodes} seed={seed}: "
            f"cpu {eslurm['cpu_time_min']:.3f} vs {slurm['cpu_time_min']:.3f} min, "
            f"sockets {eslurm['sockets_peak']:.0f} vs {slurm['sockets_peak']:.0f}, "
            f"msgs {eslurm['master_msgs']:.0f} vs {slurm['master_msgs']:.0f}"
        )
        if breaches:
            detail += " | " + "; ".join(breaches)
        return self._result(not breaches, detail)


class FPTreeFailureBoundRelation(Relation):
    """FP-Tree vs plain k-ary broadcast under injected leaf failures.

    Same fabric, same dead set, perfect prediction (the ablation upper
    bound): the FP-Tree makespan must never exceed the plain tree's,
    must beat it strictly when a dead node sits on an inner position of
    the naive layout, and must stay within one dead-node penalty of the
    healthy makespan — Section IV's bound: predicted-failed nodes demote
    to leaves, where a timeout delays nobody downstream.
    """

    name = "fptree-failure-bound"
    layer = "differential"
    section = "IV (Fig. 3/4), VII-A (Fig. 8)"
    claim = "FP-Tree broadcast latency under failures <= plain k-ary, bounded by healthy + 1 timeout"

    def __init__(self, n_nodes: int = 256, width: int = 8, n_dead: int = 12, size_bytes: int = 1024) -> None:
        self.n_nodes = n_nodes
        self.width = width
        self.n_dead = n_dead
        self.size_bytes = size_bytes

    def run(self, seed: int = 0) -> RelationResult:
        sim = Simulator(seed=seed)
        cluster = ClusterSpec(
            n_nodes=self.n_nodes,
            n_satellites=1,
            failure_model=FailureModel.disabled(),
            name=f"oracle-{self.name}",
        ).build(sim)
        fabric = NetworkFabric(sim, cluster)
        targets = cluster.compute_ids()
        rng = np.random.default_rng(seed)
        dead = {int(i) for i in rng.choice(self.n_nodes, size=self.n_dead, replace=False)}
        # Guarantee at least one dead node on an *inner* position of the
        # naive layout (position 1 of [root]+targets is always inner for
        # width >= 2 and n > width) so the strict ordering is decidable.
        dead.add(targets[0])
        root = cluster.master.node_id
        healthy = TreeBroadcast(width=self.width).simulate(root, targets, self.size_bytes, fabric)
        cluster.fail_nodes(sorted(dead))
        plain = TreeBroadcast(width=self.width).simulate(root, targets, self.size_bytes, fabric)
        fp = FPTreeBroadcast(OraclePredictor(cluster), width=self.width).simulate(
            root, targets, self.size_bytes, fabric
        )
        penalty = fabric.config.dead_node_penalty_s
        slack = self.width * fabric.config.send_overhead_s + 1e-9
        bounded = fp.makespan_s <= healthy.makespan_s + penalty + slack
        ordered = fp.makespan_s < plain.makespan_s
        delivered = len(fp.failed) == len(dead)
        detail = (
            f"n={self.n_nodes} w={self.width} dead={len(dead)} seed={seed}: "
            f"healthy {healthy.makespan_s:.4f}s, plain {plain.makespan_s:.4f}s, "
            f"fp {fp.makespan_s:.4f}s (penalty {penalty:.1f}s)"
        )
        if not ordered:
            detail += " | fp !< plain with a dead inner node"
        if not bounded:
            detail += " | fp exceeds healthy + one timeout"
        if not delivered:
            detail += f" | fp missed {len(dead) - len(fp.failed)} dead-node timeouts"
        return self._result(ordered and bounded and delivered, detail)


class EstimatorGateRelation(Relation):
    """AEA-gated model adoption vs raw user estimates, replayed offline.

    The framework replays a seeded trace job by job (estimate at
    submission, observe at completion).  Over every job that carries a
    user estimate, the runtime-weighted absolute error of the *gated*
    estimates must not exceed the user estimates' error (small tolerance
    for ties): the AEA gate exists precisely so the model is only
    trusted where it has proven itself (Section V, Table VIII).
    """

    name = "estimator-aea-gate"
    layer = "differential"
    section = "V (Eq. 3-5), VII-C (Table VIII)"
    claim = "AEA-gated estimates never worse than user estimates on runtime-weighted error"

    #: multiplicative tolerance on the error ratio — the gate guarantees
    #: "not worse", not "always strictly better", and the last few
    #: pre-training jobs are pass-through ties.
    TOLERANCE = 1.02

    def __init__(self, n_jobs: int = 500, k_clusters: int = 12) -> None:
        self.n_jobs = n_jobs
        self.k_clusters = k_clusters

    def run(self, seed: int = 0) -> RelationResult:
        jobs = generate_trace(
            WorkloadConfig(n_users=16, n_apps=12, jobs_per_day=2000.0, max_nodes=64),
            self.n_jobs,
            seed=seed,
        )
        estimator = EslurmEstimator(
            EstimatorConfig(k_clusters=self.k_clusters), rng=np.random.default_rng(seed)
        )
        gated_num = user_num = weight_sum = 0.0
        n_scored = 0
        for job in jobs:
            estimate = estimator.estimate(job, job.submit_time)
            if job.user_estimate_s is not None:
                gated = estimate if estimate is not None else job.user_estimate_s
                weight = job.runtime_s
                gated_num += weight * abs(gated - job.runtime_s)
                user_num += weight * abs(job.user_estimate_s - job.runtime_s)
                weight_sum += weight
                n_scored += 1
            estimator.observe(job, job.submit_time)
        if weight_sum == 0:
            return self._result(False, f"seed={seed}: no jobs carried user estimates")
        gated_err = gated_num / weight_sum
        user_err = user_num / weight_sum
        ok = gated_err <= user_err * self.TOLERANCE
        detail = (
            f"seed={seed} jobs={n_scored}: weighted error gated {gated_err:.1f}s "
            f"vs user {user_err:.1f}s (ratio {gated_err / user_err:.3f})"
        )
        return self._result(ok, detail)


class MalleableThroughputRelation(Relation):
    """Elastic vs rigid replay of one trace through the full engine.

    Both arms run the *identical* seeded trace on the identical machine;
    the malleable arm enables the scheduler's elastic protocol (shrunk
    starts into partial holes, growth into backfill holes), the rigid
    arm strips every ``min_nodes``/``max_nodes`` declaration.  The
    protocol is work-conserving — a job always burns the same total
    node-seconds — so flexibility can only move work *earlier*: within
    the fixed horizon the malleable arm must complete at least as many
    jobs as the rigid arm.
    """

    name = "malleable-throughput"
    layer = "differential"
    section = "VII-D (scheduling comparison)"
    claim = "elastic jobs complete at least as many jobs as the rigid replay of the same trace"

    def __init__(
        self,
        n_nodes: int = 64,
        n_satellites: int = 2,
        n_jobs: int = 80,
        horizon_s: float = 4 * 3600.0,
    ) -> None:
        self.n_nodes = n_nodes
        self.n_satellites = n_satellites
        self.n_jobs = n_jobs
        self.horizon_s = horizon_s

    def _trace(self, seed: int, rigid: bool):
        cfg = WorkloadConfig(
            n_users=12,
            n_apps=10,
            apps_per_user=2,
            jobs_per_day=self.n_jobs * DAY / (0.6 * self.horizon_s),
            max_nodes=max(1, self.n_nodes // 4),
            long_job_fraction=0.1,
            burst_mean=2.0,
            malleable_fraction=0.5,
            name=f"oracle-{self.name}",
        )
        jobs = generate_trace(cfg, self.n_jobs, seed=seed)
        if rigid:
            for job in jobs:
                job.min_nodes = job.max_nodes = job.n_nodes
        return jobs

    def _arm(self, seed: int, malleable: bool) -> tuple[int, int, int]:
        sim = Simulator(seed=seed)
        cluster = ClusterSpec(
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            failure_model=FailureModel.disabled(),
            name=f"oracle-{self.name}",
        ).build(sim)
        kwargs = {"scheduler": BackfillScheduler(malleable=True)} if malleable else {}
        rm = EslurmRM(sim, cluster, **kwargs)
        rm.run_trace(self._trace(seed, rigid=not malleable), until=self.horizon_s)
        done = sum(1 for j in rm.jobs if j.state is JobState.COMPLETED)
        return done, rm.resize_grows, rm.resize_shrinks

    def run(self, seed: int = 0) -> RelationResult:
        rigid_done, _, _ = self._arm(seed, malleable=False)
        mall_done, grows, shrinks = self._arm(seed, malleable=True)
        ok = mall_done >= rigid_done
        detail = (
            f"n={self.n_nodes} seed={seed}: malleable completed {mall_done} "
            f"vs rigid {rigid_done} of {self.n_jobs} "
            f"({grows} grow(s), {shrinks} shrink(s))"
        )
        if not ok:
            detail += " | malleable arm completed fewer jobs"
        return self._result(ok, detail)


class _FirstFitProbe:
    """First-fit placement that shadows a topology pick on every state.

    The replay pool allocates exactly what first-fit would (so the
    trajectory is the baseline's), while a wrapped
    :class:`TopologyAwarePlacement` is asked what it *would* pick from
    the identical free set — making the fragmentation comparison
    pointwise on the same pool state rather than across two divergent
    schedules.
    """

    def __init__(self, topology: Topology) -> None:
        import heapq

        self._nsmallest = heapq.nsmallest
        self.topology = topology
        self.shadow = TopologyAwarePlacement(topology)
        self.ff_score_sum = 0.0
        self.worse = 0
        self.compared = 0

    def select(self, free: t.AbstractSet[int], k: int) -> tuple[int, ...] | None:
        if len(free) < k:
            return None
        ff = tuple(self._nsmallest(k, free))
        shadow_pick = self.shadow.select(free, k)
        self.compared += 1
        self.ff_score_sum += placement_score(ff, self.topology)
        if shadow_pick is not None and (
            placement_score(shadow_pick, self.topology)
            > placement_score(ff, self.topology) + 1e-9
        ):
            self.worse += 1
        return ff


class TopologyPlacementRelation(Relation):
    """Topology-aware vs first-fit placement, compared state by state.

    One replay of a rigid trace drives the pool with first-fit choices;
    at every allocation the topology policy is asked for its pick from
    the *identical* free set.  Two orderings are pinned: the topology
    pick never scores worse than first-fit's on any pool state (the
    policy keeps the first-fit candidate as a floor), and with a
    deterministic alert-flag set injected into a second full replay the
    policy never picks a flagged node while an all-clean feasible set
    exists (``flagged_despite_clean == 0``).
    """

    name = "topology-fragmentation"
    layer = "differential"
    section = "II (monitoring hierarchy), IV (alert steering)"
    claim = "topology placement never fragments worse than first-fit on any pool state, clean-first"

    n_nodes = 64
    n_jobs = 80
    n_flagged = 6

    def run(self, seed: int = 0) -> RelationResult:
        from repro.oracle.metamorphic import _base_specs, replay

        # 16-node racks so a 64-node machine spans 4 racks and the
        # cross-rack penalty is actually reachable.
        topo = Topology(nodes_per_board=4, boards_per_chassis=2, chassis_per_rack=2)
        specs = _base_specs(seed, self.n_jobs, max_nodes=self.n_nodes // 2)
        probe = _FirstFitProbe(topo)
        replay(specs, self.n_nodes, placement=probe)
        ok_frag = probe.worse == 0 and probe.compared > 0
        topo_mean = probe.shadow.stats.mean_score
        ff_mean = probe.ff_score_sum / probe.compared if probe.compared else 0.0
        rng = np.random.default_rng(seed)
        flagged = {int(i) for i in rng.choice(self.n_nodes, size=self.n_flagged, replace=False)}
        averse = TopologyAwarePlacement(topo, alert_source=lambda: flagged)
        replay(specs, self.n_nodes, placement=averse)
        ok_clean = averse.stats.flagged_despite_clean == 0
        detail = (
            f"seed={seed} jobs={self.n_jobs}: {probe.compared} states, mean hop score "
            f"topology {topo_mean:.4f} vs first-fit {ff_mean:.4f}; "
            f"{averse.stats.flagged_selected} flagged pick(s), "
            f"{averse.stats.flagged_despite_clean} despite a clean set"
        )
        if not ok_frag:
            detail += f" | topology scored worse on {probe.worse} pool state(s)"
        if not ok_clean:
            detail += " | flagged node chosen while a clean feasible set existed"
        return self._result(ok_frag and ok_clean, detail)


class SnapshotEquivalenceRelation(Relation):
    """Straight run vs snapshot/resume of the identical day, byte for byte.

    One config is run three ways: straight to the horizon, paused at an
    event boundary k and *warm*-resumed, and cold-restored at k (rebuild
    from config, replay k events, verified state digest) then resumed.
    All three must produce the identical golden trace hash (the
    ``add_trace_hook`` seam — every event's exact ``(time, priority,
    seq)``) and the identical canonical final payload.  Checked for both
    backends at sampled split points including the k=0 and k=last
    degenerate cuts — the guarantee ``repro whatif`` and the gateway's
    ``what-if`` kind rest on.
    """

    name = "snapshot-equivalence"
    layer = "differential"
    section = "VI (simulation methodology), VII (what-if evaluation)"
    claim = "resume-from-snapshot is byte-identical to the straight run (trace hash + payload)"

    def __init__(
        self,
        n_nodes: int = 32,
        n_satellites: int = 2,
        n_jobs: int = 30,
        horizon_s: float = DAY,
    ) -> None:
        # A full-day horizon: the synthetic trace anchors submissions to
        # diurnal hours, so a short horizon would compare empty machines.
        self.n_nodes = n_nodes
        self.n_satellites = n_satellites
        self.n_jobs = n_jobs
        self.horizon_s = horizon_s

    def _config(self, rm: str, seed: int) -> SimulationConfig:
        return SimulationConfig(
            rm=rm,
            n_nodes=self.n_nodes,
            n_satellites=self.n_satellites,
            seed=seed,
            failures=rm == "eslurm",  # exercise fault paths on one arm
            n_jobs=self.n_jobs,
            horizon_s=self.horizon_s,
        )

    @staticmethod
    def _finish(world: "SimWorld", digest: "TraceDigest") -> tuple[str, str]:
        world.run_to_horizon()
        return digest.hexdigest(), canonical_json(world.final_payload())

    def _arm(self, rm: str, seed: int) -> list[str]:
        from repro.snapshot import SimWorld, capture, restore

        config = self._config(rm, seed)
        straight_world = SimWorld(config)
        straight_digest = straight_world.attach_trace_digest()
        straight = self._finish(straight_world, straight_digest)
        n = straight_world.sim.events_processed
        breaches: list[str] = []
        for k in sorted({0, n // 3, (2 * n) // 3, n}):
            # warm: pause the live world at k, capture, resume it
            warm_world = SimWorld(config)
            warm_digest = warm_world.attach_trace_digest()
            warm_world.run_events_until(k)
            snapshot = capture(warm_world)
            warm = self._finish(warm_world, warm_digest)
            if warm != straight:
                breaches.append(f"{rm} k={k}: warm resume diverged")
                continue
            # cold: rebuild from config, replay k (digest-verified), resume
            holder: dict[str, t.Any] = {}

            def _hook(world: "SimWorld") -> None:
                holder["digest"] = world.attach_trace_digest()

            cold_world = restore(snapshot, verify=True, on_build=_hook)
            cold = self._finish(cold_world, holder["digest"])
            if cold != straight:
                breaches.append(f"{rm} k={k}: cold restore diverged")
        return breaches

    def run(self, seed: int = 0) -> RelationResult:
        breaches: list[str] = []
        for rm in ("slurm", "eslurm"):
            breaches.extend(self._arm(rm, seed))
        detail = (
            f"n={self.n_nodes} jobs={self.n_jobs} seed={seed}: "
            f"slurm+eslurm x {{0, n/3, 2n/3, n}} cuts, warm+cold"
        )
        if breaches:
            detail += " | " + "; ".join(breaches)
        return self._result(not breaches, detail)


class LifecycleEquivalenceRelation(Relation):
    """Flat FSM lifecycle vs the generator reference, byte for byte.

    Both arms replay the identical seeded trace on the identical
    machine; the only difference is the job-lifecycle engine
    (``lifecycle="fsm"`` vs ``"generator"``).  Every *observable* —
    master accounting, schedule metrics, broadcast counts, and every
    domain telemetry counter and histogram — must be byte-identical
    under canonical JSON.  The comparison strips exactly two groups of
    keys: host-clock metrics (``host.*``, wall-time noise) and the
    event-loop's own shape (``sim.events``, ``sim.heap.depth``) — the
    flat timer lane exists precisely to dispatch fewer heap events, so
    the event count is the mechanism under test, not an observable of
    the modelled system.  That saving is pinned as an ordering instead:
    the FSM arm must not process more events than the generator arm.
    """

    name = "lifecycle-equivalence"
    layer = "differential"
    section = "VI (simulation methodology)"
    claim = "FSM lifecycle byte-identical to the generator reference on all observables"

    #: telemetry keys describing the event loop itself, excluded from
    #: the byte-compare (see class docstring)
    EVENT_LOOP_KEYS = frozenset({"sim.events", "sim.heap.depth"})

    def __init__(
        self,
        n_nodes: int = 256,
        n_satellites: int = 2,
        n_jobs: int = 60,
        horizon_s: float = DAY,
    ) -> None:
        self.n_nodes = n_nodes
        self.n_satellites = n_satellites
        self.n_jobs = n_jobs
        self.horizon_s = horizon_s

    def _observable(self, tel: dict[str, dict[str, t.Any]]) -> dict[str, t.Any]:
        return {
            section: {
                key: value
                for key, value in metrics.items()
                if not key.startswith("host.") and key not in self.EVENT_LOOP_KEYS
            }
            for section, metrics in tel.items()
        }

    def _arm(
        self, rm: str, lifecycle: str, seed: int, malleable: bool
    ) -> tuple[str, float]:
        from dataclasses import asdict

        result = run_simulation(
            SimulationConfig(
                rm=rm,
                n_nodes=self.n_nodes,
                n_satellites=self.n_satellites,
                seed=seed,
                failures=True,
                n_jobs=self.n_jobs,
                horizon_s=self.horizon_s,
                malleable=malleable,
                telemetry=TelemetryConfig(enabled=True),
                lifecycle=lifecycle,
            )
        )
        rep = result.report
        assert result.telemetry is not None
        payload = canonical_json(
            {
                "master": dict(rep.master),
                "schedule": asdict(rep.schedule) if rep.schedule is not None else None,
                "n_broadcasts": rep.n_broadcasts,
                "occupation_mean_s": rep.occupation_mean_s,
                "telemetry": self._observable(result.telemetry),
            }
        )
        events = float(result.telemetry["counters"].get("sim.events", 0.0))
        return payload, events

    def run(self, seed: int = 0) -> RelationResult:
        breaches: list[str] = []
        savings: list[str] = []
        for rm, malleable in (("eslurm", True), ("slurm", False)):
            fsm, fsm_events = self._arm(rm, "fsm", seed, malleable)
            gen, gen_events = self._arm(rm, "generator", seed, malleable)
            if fsm != gen:
                breaches.append(f"{rm}: observables diverged between lifecycle engines")
            if fsm_events > gen_events:
                breaches.append(
                    f"{rm}: fsm dispatched {fsm_events:.0f} events !<= "
                    f"generator's {gen_events:.0f}"
                )
            savings.append(f"{rm} {fsm_events:.0f}/{gen_events:.0f} events")
        detail = (
            f"n={self.n_nodes} jobs={self.n_jobs} seed={seed}: "
            f"fsm vs generator byte-identical ({', '.join(savings)})"
        )
        if breaches:
            detail += " | " + "; ".join(breaches)
        return self._result(not breaches, detail)


#: the differential registry, in paper-section order
DIFFERENTIAL_RELATIONS: tuple[Relation, ...] = (
    MasterOffloadRelation(),
    FPTreeFailureBoundRelation(),
    EstimatorGateRelation(),
    MalleableThroughputRelation(),
    TopologyPlacementRelation(),
    SnapshotEquivalenceRelation(),
    LifecycleEquivalenceRelation(),
)
