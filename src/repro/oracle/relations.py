"""Relation framework: named, paper-mapped checks with pass/fail results.

A :class:`Relation` is one assertion the oracle can evaluate — a
*differential* relation compares paired simulations, a *metamorphic*
relation compares a run against a transformed re-run.  Each carries the
paper section its claim comes from, so ``repro verify list`` and the
DESIGN table render straight from the registry.

This module also hosts the cross-file checks over ``BENCH_*.json``
payloads (:func:`check_bench_payloads`): the bench harness records
numbers without judging them, and these relations are the judgement —
``repro bench check BENCH_*.json`` exits nonzero when the paper-shaped
orderings between scenarios are violated.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

#: ESLURM's master-offload advantage is asserted only at or above this
#: machine size; below it the satellite indirection overhead can rival
#: the savings (the paper's comparison starts at 1K nodes).
MASTER_LOAD_NODE_THRESHOLD = 256


@dataclass(frozen=True)
class RelationResult:
    """Outcome of evaluating one relation."""

    relation: str
    ok: bool
    detail: str
    layer: str = "differential"  # differential | metamorphic | golden | bench

    def line(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        return f"[{status}] {self.layer:<12} {self.relation:<28} {self.detail}"


class Relation:
    """One named, paper-mapped oracle check.

    Subclasses implement :meth:`run`; ``name`` / ``section`` / ``claim``
    feed the registry table and the docs.
    """

    name = "relation"
    layer = "differential"
    section = "-"
    claim = "-"

    def run(self, seed: int = 0) -> RelationResult:
        raise NotImplementedError

    def _result(self, ok: bool, detail: str) -> RelationResult:
        return RelationResult(relation=self.name, ok=ok, detail=detail, layer=self.layer)


def relations_table() -> list[Relation]:
    """Every registered differential + metamorphic relation.

    Imported lazily so :mod:`repro.oracle.relations` stays importable
    from the concrete relation modules without a cycle.
    """
    from repro.oracle.differential import DIFFERENTIAL_RELATIONS
    from repro.oracle.metamorphic import METAMORPHIC_RELATIONS

    return [*DIFFERENTIAL_RELATIONS, *METAMORPHIC_RELATIONS]


# ---------------------------------------------------------------------------
# relation checks over BENCH_*.json payloads
# ---------------------------------------------------------------------------
def _bench_key(payload: t.Mapping[str, t.Any]) -> tuple[int, int, bool]:
    sc = payload["scenario"]
    return (int(payload["seed"]), int(sc["n_nodes"]), bool(sc["failures"]))


def check_bench_payloads(
    payloads: t.Sequence[t.Mapping[str, t.Any]],
) -> list[RelationResult]:
    """Judge a set of bench payloads against the paper-shaped relations.

    Per-file sanity first (events flowed, the clock advanced), then the
    structural comparison: wherever the set contains a slurm/eslurm pair
    at the same ``(seed, n_nodes, failures)`` cell with ``n_nodes`` at or
    above :data:`MASTER_LOAD_NODE_THRESHOLD`, the ESLURM master must be
    strictly cheaper on CPU time and socket peak (Section VII-B's whole
    point), and strictly lower on sent messages when the counter is
    present.
    """
    results: list[RelationResult] = []
    for payload in payloads:
        name = payload["name"]
        ok = payload["events"] > 0 and payload["sim_time_s"] > 0
        results.append(
            RelationResult(
                relation="bench-liveness",
                ok=ok,
                detail=f"{name}: {payload['events']} events over {payload['sim_time_s']:.0f}s",
                layer="bench",
            )
        )
    by_cell: dict[tuple[int, int, bool], dict[str, t.Mapping[str, t.Any]]] = {}
    for payload in payloads:
        by_cell.setdefault(_bench_key(payload), {})[payload["scenario"]["rm"]] = payload
    for (seed, n_nodes, failures), arms in sorted(by_cell.items()):
        if "slurm" not in arms or "eslurm" not in arms:
            continue
        if n_nodes < MASTER_LOAD_NODE_THRESHOLD:
            continue
        slurm, eslurm = arms["slurm"], arms["eslurm"]
        cell = f"n={n_nodes} seed={seed}" + (" failures" if failures else "")
        comparisons = [
            ("cpu_time_min", slurm["master"]["cpu_time_min"], eslurm["master"]["cpu_time_min"]),
            ("sockets_peak", slurm["master"]["sockets_peak"], eslurm["master"]["sockets_peak"]),
        ]
        s_msgs = slurm.get("counters", {}).get("rm.master.msgs")
        e_msgs = eslurm.get("counters", {}).get("rm.master.msgs")
        if s_msgs is not None and e_msgs is not None:
            comparisons.append(("rm.master.msgs", s_msgs, e_msgs))
        for metric, s_val, e_val in comparisons:
            results.append(
                RelationResult(
                    relation=f"master-load/{metric}",
                    ok=e_val < s_val,
                    detail=f"{cell}: eslurm {e_val:.4g} vs slurm {s_val:.4g}",
                    layer="bench",
                )
            )
    return results
