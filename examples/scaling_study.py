#!/usr/bin/env python
"""Scaling study: what breaks a centralized RM as the machine grows.

Runs Slurm and ESLURM at three cluster sizes for a day each and prints
the trends the paper's Sections II-B and VII are about: master CPU and
memory growth, connection pressure, and user-request response times.

Run:  python examples/scaling_study.py
"""

from repro.cluster import ClusterSpec
from repro.api import build_rm
from repro.experiments.reporting import render_table
from repro.simkit import Simulator
from repro.workload import WorkloadConfig, generate_trace

SIZES = (1024, 4096, 8192)
HORIZON = 86_400.0
SEED = 5


def run_one(rm_name: str, n_nodes: int):
    sim = Simulator(seed=SEED)
    cluster = ClusterSpec.tianhe2a(n_nodes=n_nodes, n_satellites=2).build(sim)
    rm = build_rm(rm_name, cluster, sample_interval_s=300.0)
    workload = WorkloadConfig.tianhe2a(max_nodes=n_nodes // 4, jobs_per_day=400.0)
    jobs = generate_trace(workload, 400, seed=SEED, start_time=1.0)
    rm.run_trace(
        [j for j in jobs if j.submit_time < HORIZON * 0.9], until=HORIZON
    )
    m = rm.master_acct.summary()
    return [
        rm_name,
        n_nodes,
        m["cpu_time_min"],
        m["vmem_mb"] / 1024.0,
        m["sockets_peak"],
        rm.estimated_response_time(),
    ]


def main() -> None:
    rows = []
    for n in SIZES:
        for rm_name in ("slurm", "eslurm"):
            rows.append(run_one(rm_name, n))
    print(
        render_table(
            ["RM", "nodes", "cpu_min/day", "vmem_GB", "peak_sockets", "resp_s"],
            rows,
            title="Master-node scaling, 24h of identical workload",
        )
    )
    print(
        "\nSlurm's master footprint grows with every node it manages;\n"
        "ESLURM's master only ever talks to its satellites, so the curves\n"
        "stay flat — which is the whole argument of the paper."
    )


if __name__ == "__main__":
    main()
