#!/usr/bin/env python
"""Failure storm: a maintenance event hits a production day.

A 2K-node ESLURM cluster runs a normal day of jobs; at noon a
200-node block is pulled for hardware replacement (the paper saw a
>600-node event on day six of its deployment).  Watch the monitoring
subsystem pre-alert the nodes, the FP-Tree demote them to leaves, the
satellites keep broadcasting, and the scheduler flow around the hole.

Run:  python examples/failure_storm.py
"""

from repro.cluster import ClusterSpec, FailureModel
from repro.cluster.monitoring import MonitoringConfig
from repro.api import build_rm
from repro.simkit import Simulator
from repro.workload import WorkloadConfig, generate_trace

HOUR = 3600.0
DAY = 24 * HOUR
N_NODES = 2048
SEED = 11


def main() -> None:
    sim = Simulator(seed=SEED)
    spec = ClusterSpec(
        n_nodes=N_NODES,
        n_satellites=4,
        failure_model=FailureModel(mtbf_node_hours=8000.0, repair_hours=4.0),
        monitoring=MonitoringConfig(recall=0.9),
    )
    cluster = spec.build(sim)
    cluster.failures.start()
    cluster.monitor.start()
    # The noon maintenance event: 200 nodes out for six hours.
    cluster.failures.schedule_maintenance(
        at=12 * HOUR, node_ids=range(600, 800), duration=6 * HOUR
    )
    rm = build_rm("eslurm", cluster, estimator="auto")
    workload = WorkloadConfig.tianhe2a(max_nodes=N_NODES // 4, jobs_per_day=900.0)
    jobs = generate_trace(workload, 900, seed=SEED, start_time=1.0)
    rm.run_trace([j for j in jobs if j.submit_time < 0.9 * DAY], until=DAY)

    report = rm.report(horizon_s=DAY)
    print(report.summary())
    print()
    print(f"failure events injected : {len(cluster.failures.events)}")
    print(f"monitoring alerts raised: {cluster.monitor.alert_count()}")
    print(f"FP-Trees constructed    : {rm.fptree_stats.trees_built}")
    print(
        f"predicted-failed placed on leaves: "
        f"{rm.fptree_stats.leaf_placement_ratio:.1%}"
    )
    print(f"satellite takeovers by master    : {rm.sat_pool.master_takeovers}")
    failed_jobs = [j for j in rm.jobs if j.state.value == "failed"]
    print(f"jobs lost to node failures       : {len(failed_jobs)}")


if __name__ == "__main__":
    main()
