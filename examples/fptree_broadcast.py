#!/usr/bin/env python
"""FP-Tree vs everything else: broadcasting through a failing machine.

Reproduces the heart of the paper's Section IV/Fig. 8b at example scale:
a 2K-node cluster with a sweep of failure ratios, the monitoring
subsystem raising (imperfect) alerts for the failed nodes, and five
broadcast structures racing a 16 KB job-launch payload.

Run:  python examples/fptree_broadcast.py
"""

from repro.cluster import ClusterSpec
from repro.experiments.reporting import render_series
from repro.fptree import FPTreeBroadcast, MonitorAlertPredictor
from repro.network import (
    NetworkFabric,
    RingBroadcast,
    SharedMemoryBroadcast,
    StarBroadcast,
    TreeBroadcast,
)
from repro.simkit import Simulator

N_NODES = 2048
PAYLOAD = 16_384  # bytes: a job-launch message
RATIOS = (0.0, 0.1, 0.2, 0.3)
ALERT_RECALL = 0.85


def cluster_with_failures(fraction: float, seed: int = 3):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=N_NODES, n_satellites=2).build(sim)
    failed = cluster.fail_fraction(fraction)
    rng = sim.rng.stream("example.alerts")
    for nid in failed:  # the monitoring stack alerts on most failures
        if rng.random() < ALERT_RECALL:
            cluster.monitor.raise_alert(nid)
    return cluster


def main() -> None:
    curves: dict[str, list[float]] = {}
    for frac in RATIOS:
        cluster = cluster_with_failures(frac)
        fabric = NetworkFabric(cluster.sim, cluster)
        engines = {
            "ring": RingBroadcast(),
            "star": StarBroadcast(concurrency=64),
            "shared-memory": SharedMemoryBroadcast(),
            "tree": TreeBroadcast(width=32),
            "fp-tree": FPTreeBroadcast(MonitorAlertPredictor(cluster), width=32),
        }
        for name, engine in engines.items():
            res = engine.simulate(
                cluster.master.node_id, cluster.compute_ids(), PAYLOAD, fabric
            )
            curves.setdefault(name, []).append(res.makespan_s)
    print(
        render_series(
            "failure_ratio",
            list(RATIOS),
            curves,
            title=f"Broadcast makespan (s), {N_NODES} nodes, 16KB payload",
        )
    )
    print(
        "\nThe FP-Tree reads the monitoring alerts, demotes the suspect\n"
        "nodes to leaves, and keeps the broadcast fast even with 30% of\n"
        "the machine dark — while the ring pays every timeout serially."
    )


if __name__ == "__main__":
    main()
