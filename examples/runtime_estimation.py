#!/usr/bin/env python
"""Job-runtime estimation: the ESLURM framework against its rivals.

Generates an NG-Tianhe-profile synthetic trace (calibrated to the
paper's Fig. 5 statistics), replays it through each estimator in causal
order (models only ever learn from jobs that have already completed),
and scores everyone with the paper's Eq. 4/5 metrics: average
estimation accuracy (AEA) and underestimation rate (UR).

Run:  python examples/runtime_estimation.py
"""

import numpy as np

from repro.estimate import (
    EslurmEstimator,
    EstimatorConfig,
    Last2Estimator,
    PrepEstimator,
    TripEstimator,
    UserEstimator,
    evaluate_estimator,
    svm_estimator,
)
from repro.workload import WorkloadConfig, generate_trace

N_JOBS = 2500
SEED = 2


def main() -> None:
    jobs = generate_trace(
        WorkloadConfig.ng_tianhe(jobs_per_day=1000.0), N_JOBS, seed=SEED
    )
    over = np.mean(
        [j.user_estimate_s > j.runtime_s for j in jobs if j.user_estimate_s]
    )
    print(f"trace: {N_JOBS} jobs, {over:.0%} of user estimates are overestimates\n")

    estimators = [
        UserEstimator(),
        Last2Estimator(),
        svm_estimator(),
        TripEstimator(),
        PrepEstimator(),
        EslurmEstimator(
            EstimatorConfig(aea_gate=0.0, k_clusters=150),
            rng=np.random.default_rng(SEED),
        ),
    ]
    print(f"{'model':<14} {'AEA':>6} {'UR':>6} {'MAE(s)':>9}")
    for est in estimators:
        rep = evaluate_estimator(est, jobs, warmup=200)
        print(
            f"{rep.name:<14} {rep.aea:6.1%} {rep.underestimate_rate:6.1%} "
            f"{rep.mean_abs_error_s:9.0f}"
        )
    print(
        "\nESLURM clusters the recent history (K-means++ on hashed job\n"
        "name/user + size/time features), trains one SVR per cluster, and\n"
        "pads predictions by the per-cluster residual spread plus the\n"
        "slack alpha — accuracy close to the per-app oracle with a far\n"
        "lower underestimation rate than any recency heuristic."
    )


if __name__ == "__main__":
    main()
