#!/usr/bin/env python
"""Quickstart: run ESLURM next to Slurm on a 1K-node cluster for a day.

Builds two identical simulated clusters, replays the same synthetic
workload through a classical centralized Slurm and through ESLURM
(satellites + FP-Tree + runtime estimation), and prints the resource
and scheduling report for each — the 60-second version of the paper.

Run:  python examples/quickstart.py
"""

from repro import quick_cluster, run_rm_day

N_NODES = 1024
N_JOBS = 600
SEED = 7


def main() -> None:
    print(f"Simulating {N_NODES} nodes / {N_JOBS} jobs / 24 hours per RM\n")
    for rm_name in ("slurm", "eslurm"):
        cluster = quick_cluster(n_nodes=N_NODES, n_satellites=2, seed=SEED)
        report = run_rm_day(rm_name, cluster, n_jobs=N_JOBS, seed=SEED)
        print(report.summary())
        print()
    print(
        "Note how ESLURM's master does a fraction of the work: broadcasts\n"
        "and heartbeats ride through the satellites, so master CPU, memory\n"
        "and socket counts stay nearly flat no matter the machine size."
    )


if __name__ == "__main__":
    main()
