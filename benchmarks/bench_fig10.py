"""Fig. 10 / Table VII: scheduling efficiency (utilization, wait,
bounded slowdown) across four cluster scales for every RM available at
each scale, plus the ESLURM attribution ablations."""

from benchmarks.conftest import FULL
from repro.experiments.fig10 import render_fig10, run_fig10


def test_fig10(once):
    scale = 1.0 if FULL else 0.125
    days = 7.0 if FULL else 2.0
    r = once(run_fig10, scale=scale, horizon_days=days, with_attribution=True)
    print()
    print(render_fig10(r))

    by_scale: dict[int, dict[str, object]] = {}
    for (n, rm), m in r.metrics.items():
        by_scale.setdefault(n, {})[rm] = m
    largest = max(by_scale)
    at_top = by_scale[largest]
    # paper's headline: ESLURM beats Slurm on utilization at full scale
    assert at_top["eslurm"].utilization > at_top["slurm"].utilization
    # attribution: the estimation framework contributes positively
    assert r.attribution["eslurm-full"] >= r.attribution["eslurm-no-estimator"] - 0.01
    assert r.attribution["eslurm-full"] > r.attribution["slurm"]
