"""The perf-benchmark matrix: every scenario, deterministic payloads.

Quick mode runs the 1K-node column; ``REPRO_FULL=1`` runs all twelve
scenarios.  Prints the comparison table (run with ``-s`` to see it).
"""

from benchmarks.conftest import FULL
from repro.bench import SCENARIOS, render_text, run_matrix


def test_bench_matrix(once):
    names = [n for n, s in SCENARIOS.items() if FULL or s.n_nodes == 1024]
    results = once(run_matrix, names=names, seed=0)
    print()
    print(render_text([r.payload for r in results]))
    by_name = {r.scenario.name: r.payload for r in results}
    for name, payload in by_name.items():
        assert payload["events"] > 0, name
        assert payload["schedule"]["n_completed"] > 0, name
        # no host-clock values may leak into the deterministic payload
        assert not any(k.startswith("host.") for k in payload["counters"])
    # the hierarchical RM pushes satellite traffic the centralized one lacks
    assert by_name["eslurm-1024"]["histograms"]["rm.broadcast.satellite_tasks"]["count"] > 0
    assert "rm.broadcast.satellite_tasks" not in by_name["slurm-1024"]["histograms"]
