"""Ablations over the FP-Tree's design choices.

Two sweeps the paper discusses but does not plot:

* **tree width** — prior work tunes width/depth (Section IV's related
  work); the failure-robustness benefit of the FP-Tree must hold across
  widths, not just at the deployed fan-out;
* **predictor quality** — the over-prediction principle says wrong
  predictions are harmless; we sweep from no predictor through the
  alert-driven one to a perfect oracle and check the monotone ordering.
"""

import pytest

from benchmarks.conftest import FULL
from repro.cluster import ClusterSpec
from repro.fptree import FPTreeBroadcast, MonitorAlertPredictor, NullPredictor, OraclePredictor
from repro.network import NetworkFabric, TreeBroadcast
from repro.simkit import Simulator


def make_cluster(n_nodes, fail_frac, recall, seed=3):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n_nodes, n_satellites=2).build(sim)
    failed = cluster.fail_fraction(fail_frac)
    rng = sim.rng.stream("ablation.alerts")
    for nid in failed:
        if rng.random() < recall:
            cluster.monitor.raise_alert(nid)
    return cluster


def test_width_ablation(once):
    """The FP-Tree beats the plain tree at every width."""
    n_nodes = 4096 if FULL else 1024

    def sweep():
        rows = {}
        for width in (2, 4, 8, 16, 32, 64):
            cluster = make_cluster(n_nodes, fail_frac=0.1, recall=0.85)
            fabric = NetworkFabric(cluster.sim, cluster)
            targets = cluster.compute_ids()
            plain = TreeBroadcast(width=width).simulate(
                cluster.master.node_id, targets, 8192, fabric
            )
            fp = FPTreeBroadcast(MonitorAlertPredictor(cluster), width=width).simulate(
                cluster.master.node_id, targets, 8192, fabric
            )
            rows[width] = (plain.makespan_s, fp.makespan_s)
        return rows

    rows = once(sweep)
    print()
    from repro.experiments.reporting import render_table

    print(
        render_table(
            ["width", "plain tree (s)", "fp-tree (s)"],
            [[w, p, f] for w, (p, f) in rows.items()],
            title=f"width ablation ({n_nodes} nodes, 10% failed)",
            float_fmt="{:.3f}",
        )
    )
    for width, (plain, fp) in rows.items():
        assert fp <= plain + 1e-9, f"width {width}"


def test_predictor_quality_ablation(once):
    """null <= alerts <= oracle in failure robustness (never worse)."""
    n_nodes = 4096 if FULL else 1024

    def sweep():
        out = {}
        for label, factory in (
            ("null", lambda c: NullPredictor()),
            ("alerts(r=0.5)", lambda c: MonitorAlertPredictor(c)),
            ("alerts(r=0.85)", lambda c: MonitorAlertPredictor(c)),
            ("oracle", lambda c: OraclePredictor(c)),
        ):
            recall = 0.5 if "0.5" in label else 0.85
            cluster = make_cluster(n_nodes, fail_frac=0.15, recall=recall)
            fabric = NetworkFabric(cluster.sim, cluster)
            engine = FPTreeBroadcast(factory(cluster), width=16)
            res = engine.simulate(
                cluster.master.node_id, cluster.compute_ids(), 8192, fabric
            )
            out[label] = res.makespan_s
        return out

    out = once(sweep)
    print()
    for label, t in out.items():
        print(f"  {label:<16} {t:8.3f}s")
    # better prediction never hurts (the over-prediction principle)
    assert out["oracle"] <= out["alerts(r=0.85)"] + 1e-9
    assert out["alerts(r=0.85)"] <= out["null"] + 1e-9
    assert out["alerts(r=0.5)"] <= out["null"] + 1e-9
