"""Section II-B: the production observations motivating ESLURM —
centralized Slurm at 20K+ nodes versus the deployed ESLURM."""

from benchmarks.conftest import FULL
from repro.experiments.motivation import render_motivation, run_motivation


def test_motivation(once):
    n_nodes = 20_480 if FULL else 8192
    days = 2.0 if FULL else 1.0

    def run_both():
        return (
            run_motivation("slurm", n_nodes=n_nodes, days=days),
            run_motivation("eslurm", n_nodes=n_nodes, days=days),
        )

    slurm, eslurm = once(run_both)
    print()
    print(render_motivation([slurm, eslurm]))

    # Slurm's vmem at this scale runs to tens of GB and keeps growing
    assert slurm.vmem_gb_end > 10.0
    assert slurm.vmem_gb_per_week > 0.5
    # ESLURM answers quickly (paper: <1s) while Slurm lags
    assert eslurm.response_time_s < 1.0
    assert slurm.response_time_s > eslurm.response_time_s
    # connection pressure: Slurm's peak sockets dwarf ESLURM's
    assert slurm.peak_sockets > 50 * max(eslurm.peak_sockets, 1.0)
