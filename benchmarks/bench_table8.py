"""Table VIII: the slack variable α swept 1.00..1.08 — AEA and UR both
fall as α grows; the paper picks 1.05 where UR's curve flattens."""

from benchmarks.conftest import FULL
from repro.experiments.tables import render_table8, run_table8


def test_table8(once):
    r = once(run_table8, n_jobs=4000 if FULL else 2000)
    print()
    print(render_table8(r))

    alphas = sorted(r)
    aeas = [r[a][0] for a in alphas]
    urs = [r[a][1] for a in alphas]
    # AEA decreases (weakly) with alpha; UR decreases too
    assert aeas[0] >= aeas[-1] - 0.02
    assert urs[0] > urs[-1]
    # the sweep spans a meaningful UR range
    assert urs[0] - urs[-1] > 0.01
