"""Fig. 5: workload-trace statistics (estimate-accuracy CDF, correlation
decay vs submission interval and job-ID gap) for both system profiles."""

from benchmarks.conftest import FULL
from repro.experiments.fig5 import render_fig5, run_fig5


def test_fig5(once):
    results = once(run_fig5, n_jobs=40_000 if FULL else 10_000, seed=1)
    print()
    print(render_fig5(results))
    for system, r in results.items():
        # Fig. 5a: 80-90% of estimates are overestimates
        assert 0.75 <= r.overestimate_frac <= 0.95, system
        # Fig. 5b: correlation decays with interval
        assert r.interval_corr[0] > r.interval_corr[-2]
        # Fig. 5c: correlation decays with ID gap towards a small floor
        assert r.id_gap_corr[0] > r.id_gap_corr[-1]
        assert 0.0 < r.id_gap_corr[-1] < 0.25
    # mature machine keeps a higher long-interval floor than the young one
    assert results["tianhe2a"].interval_corr[-1] > results["ng-tianhe"].interval_corr[-1]
