"""Fig. 8: broadcast-time comparisons — ESLURM vs Slurm (a) and the five
communication structures across failure ratios (b)."""

from benchmarks.conftest import FULL
from repro.experiments.fig8 import FAILURE_RATIOS, render_fig8, run_fig8a, run_fig8b


def test_fig8(once):
    n_nodes = 4096 if FULL else 2048

    def run_both():
        return run_fig8a(n_nodes=n_nodes), run_fig8b(n_nodes=n_nodes)

    a, b = once(run_both)
    print()
    print(render_fig8(a, b))

    # Fig 8a: ESLURM cuts both message types' broadcast time vs Slurm
    for msg in ("job_load", "job_term"):
        assert a.reduction_vs("slurm", "eslurm", msg) > 0.25
        # the FP-Tree supplies a substantial share of the cut
        assert a.reduction_vs("eslurm-nofp", "eslurm", msg) > 0.1
    # Fig 8b: ring/star/tree blow up with the failure ratio...
    for name in ("ring", "star", "tree"):
        assert b[name][-1] > 5 * max(b[name][0], 1e-6)
    # ... shared memory stays flat ...
    assert abs(b["shared-memory"][-1] - b["shared-memory"][0]) < 0.1
    # ... and the FP-Tree stays in the ~10 s range even at 30% failures
    # (paper: < 10 s; the quick-mode cluster is below the calibration size)
    assert b["fp-tree"][-1] < (10.0 if FULL else 16.0)
    assert b["fp-tree"][-1] < b["tree"][-1]
    assert b["ring"][-1] > 60.0  # "a delay of minutes"
