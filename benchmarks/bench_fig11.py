"""Fig. 11: (a) heartbeat broadcast time vs satellite count — the
one-satellite-per-5K-nodes rule; (b) the runtime-estimation model
comparison (user / SVM / RF / Last-2 / IRPA / TRIP / PREP / ESLURM)."""

from benchmarks.conftest import FULL
from repro.experiments.fig11 import render_fig11, run_fig11a, run_fig11b


def test_fig11a(once):
    n_nodes = 20_480 if FULL else 5120
    counts = (5, 10, 20, 30, 40, 50) if FULL else (2, 5, 10, 20, 30)
    a = once(run_fig11a, n_nodes=n_nodes, counts=counts)
    print()
    from repro.experiments.reporting import render_series

    print(
        render_series(
            "n_satellites", list(a), {"broadcast_s": list(a.values())},
            title=f"Fig 11a ({n_nodes} nodes)",
        )
    )
    best = min(a, key=a.get)
    # the optimum is interior: neither the fewest nor the most satellites
    assert best not in (counts[0], counts[-1])
    # and it sits in the one-per-~5K-nodes regime
    assert n_nodes / 10_000 <= best <= n_nodes / 500


def test_fig11b(once):
    b = once(run_fig11b, n_jobs=4000 if FULL else 2500, fast=not FULL)
    print()
    from repro.experiments.fig11 import Fig11bResult
    from repro.experiments.reporting import render_table

    print(
        render_table(
            ["model", "AEA", "UR"],
            [[n, r.aea, r.underestimate_rate] for n, r in b.reports.items()],
            title="Fig 11b (paper: ESLURM 84% AEA, ~10% UR)",
            float_fmt="{:.3f}",
        )
    )
    reports = b.reports
    # user estimates are the least accurate and always heavy overestimates
    assert reports["user"].aea < reports["eslurm"].aea
    # ESLURM leads the accuracy/underestimation trade-off:
    # better AEA than every baseline except possibly PREP...
    for name, rep in reports.items():
        if name in ("eslurm", "prep"):
            continue
        assert reports["eslurm"].aea > rep.aea, name
    # ...and a far lower underestimation rate than PREP/Last-2
    assert reports["eslurm"].underestimate_rate < 0.6 * reports["prep"].underestimate_rate
    assert reports["eslurm"].underestimate_rate < 0.35
