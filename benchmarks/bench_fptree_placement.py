"""Section VII-A placement experiment: ten days of FP-Tree construction
under failures (incl. the day-six >600-node maintenance event); the
paper reports 81.7% of failed nodes placed on leaves."""

from benchmarks.conftest import FULL
from repro.experiments.placement import render_placement, run_placement


def test_fptree_placement(once):
    r = once(
        run_placement,
        n_nodes=4096 if FULL else 2048,
        days=10.0,
        constructions_per_day=60 if FULL else 24,
    )
    print()
    print(render_placement(r))

    assert r.failure_events > 10
    assert r.failed_encounters > 100
    # the headline: most failed nodes were sitting on leaves (paper 81.7%)
    assert 0.70 <= r.leaf_placement_ratio <= 0.95
