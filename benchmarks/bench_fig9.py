"""Fig. 9: Slurm vs ESLURM on full-scale Tianhe-2A (16K nodes), master
and satellite resource usage over 24 h."""

from benchmarks.conftest import FULL
from repro.experiments.fig9 import render_fig9, run_fig9


def test_fig9(once):
    n_nodes = 16_384 if FULL else 4096
    r = once(run_fig9, n_nodes=n_nodes, n_jobs=1500 if FULL else 400)
    print()
    print(render_fig9(r))

    slurm, eslurm = r.master["slurm"], r.master["eslurm"]
    # paper: ESLURM uses <40% of Slurm's master CPU time
    assert eslurm["cpu_time_min"] < 0.4 * slurm["cpu_time_min"]
    # paper: >80% memory saving at 16K (relaxed slightly at reduced scale)
    assert eslurm["vmem_mb"] < 0.3 * slurm["vmem_mb"]
    assert eslurm["rss_mb"] < 0.3 * slurm["rss_mb"]
    # paper: >10x fewer concurrent sockets (Slurm can exceed 1000)
    assert eslurm["sockets_peak"] * 10 < slurm["sockets_peak"]
    # Fig 9d-f: the two satellites stay balanced
    assert r.satellite_balance < 1.2
