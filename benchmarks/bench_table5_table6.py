"""Tables V & VI: ESLURM on full-scale NG-Tianhe with 10..50 satellites
(SE1..SE5) — master usage and averaged satellite operational data."""

from benchmarks.conftest import FULL
from repro.experiments.tables import render_table5_table6, run_table5_table6


def test_table5_table6(once):
    n_nodes = 20_480 if FULL else 5120
    setups = (10, 20, 30, 40, 50) if FULL else (4, 8, 12, 16, 20)
    r = once(run_table5_table6, n_nodes=n_nodes, setups=setups, n_jobs=800 if FULL else 300)
    print()
    print(render_table5_table6(r))

    order = sorted(r.master)
    # Table V: more satellites -> more master traffic (sockets/CPU rise)
    assert r.master[order[-1]]["sockets_mean"] > r.master[order[0]]["sockets_mean"]
    assert r.master[order[-1]]["cpu_time_min"] >= r.master[order[0]]["cpu_time_min"]
    # Table VI: per-task node share shrinks as the pool grows...
    assert (
        r.satellites[order[-1]]["avg_nodes_per_task"]
        < r.satellites[order[0]]["avg_nodes_per_task"]
    )
    # ...and so does the satellites' own footprint
    assert r.satellites[order[-1]]["rss_mb"] <= r.satellites[order[0]]["rss_mb"] + 1.0
    assert (
        r.satellites[order[-1]]["sockets_mean"]
        <= r.satellites[order[0]]["sockets_mean"] + 1.0
    )
