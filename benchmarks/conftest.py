"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures and prints
it (run with ``-s`` to see the output).  Runs default to scaled-down
cluster sizes so the whole suite finishes in minutes; set
``REPRO_FULL=1`` to run at the paper's full scales (hours).
"""

import os

import pytest

#: full-scale mode (paper sizes) vs quick mode
FULL = os.environ.get("REPRO_FULL", "0") == "1"


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return _run
