"""Fig. 7: six RMs on (4K-scale) Tianhe-2A — master resource usage over
24 h and job occupation time vs job size."""

from benchmarks.conftest import FULL
from repro.experiments.fig7 import render_fig7, run_fig7


def test_fig7(once):
    n_nodes = 4096 if FULL else 1024
    sizes = (64, 256, 1024, 4096) if FULL else (64, 256, 1024)
    results = once(
        run_fig7, n_nodes=n_nodes, n_jobs=1000 if FULL else 300, job_sizes=sizes
    )
    print()
    print(render_fig7(results))

    m = {rm: r.master for rm, r in results.items()}
    # Fig 7a/b: ESLURM incurs the lowest CPU cost; Slurm next among the rest
    assert m["eslurm"]["cpu_time_min"] == min(v["cpu_time_min"] for v in m.values())
    assert m["slurm"]["cpu_time_min"] < m["sge"]["cpu_time_min"]
    # Fig 7c: Slurm has the highest vmem; ESLURM far lower
    assert m["slurm"]["vmem_mb"] == max(v["vmem_mb"] for v in m.values())
    assert m["eslurm"]["vmem_mb"] < 0.3 * m["slurm"]["vmem_mb"]
    # Fig 7d: ESLURM lowest real memory
    assert m["eslurm"]["rss_mb"] == min(v["rss_mb"] for v in m.values())
    # Fig 7e: SGE/OpenPBS hold standing connection armies; ESLURM <100
    assert m["sge"]["sockets_mean"] > 0.9 * n_nodes
    assert m["eslurm"]["sockets_mean"] < 100
    assert m["eslurm"]["sockets_peak"] < 100
    # Fig 7f: PBS-family occupation explodes with size; ESLURM stays ~flat
    big = max(results["eslurm"].occupation_by_size)
    assert results["sge"].occupation_by_size[big] > 10 * results["eslurm"].occupation_by_size[big]
    assert results["eslurm"].occupation_by_size[big] < 15.0  # paper: always < 15 s
