PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-chaos chaos-smoke lint-imports

## Full tier-1 suite (the CI gate).
test:
	$(PYTHON) -m pytest -x -q

## Chaos suite only (fast invariant/property sweep).
test-chaos:
	$(PYTHON) -m pytest -q tests/chaos

## Smoke: the acceptance scenario must pass with zero violations,
## and the same seed twice must produce byte-identical reports.
chaos-smoke:
	$(PYTHON) -m pytest -q tests/chaos
	$(PYTHON) -m repro.cli chaos run failure-storm --seed 7
	$(PYTHON) -c "from repro.chaos import run_scenario; \
	a = run_scenario('failure-storm', seed=7).to_text(); \
	b = run_scenario('failure-storm', seed=7).to_text(); \
	assert a == b, 'chaos report is not seed-deterministic'; \
	print('deterministic-seed check: OK')"

lint-imports:
	$(PYTHON) -c "import repro, repro.chaos, repro.cli"
