PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-chaos chaos-smoke test-bench bench-smoke lint-imports

## Full tier-1 suite (the CI gate).
test:
	$(PYTHON) -m pytest -x -q

## Chaos suite only (fast invariant/property sweep).
test-chaos:
	$(PYTHON) -m pytest -q tests/chaos

## Smoke: the acceptance scenario must pass with zero violations,
## and the same seed twice must produce byte-identical reports.
chaos-smoke:
	$(PYTHON) -m pytest -q tests/chaos
	$(PYTHON) -m repro.cli chaos run failure-storm --seed 7
	$(PYTHON) -c "from repro.chaos import run_scenario; \
	a = run_scenario('failure-storm', seed=7).to_text(); \
	b = run_scenario('failure-storm', seed=7).to_text(); \
	assert a == b, 'chaos report is not seed-deterministic'; \
	print('deterministic-seed check: OK')"

## Bench + telemetry suites only.
test-bench:
	$(PYTHON) -m pytest -q tests/bench tests/telemetry

## Smoke: the smoke scenario must produce a schema-valid bench file,
## and the same seed twice must produce byte-identical files.
bench-smoke:
	$(PYTHON) -m pytest -q tests/bench tests/telemetry
	$(PYTHON) -m repro.cli bench run slurm-1024 --seed 0 --out .bench-smoke
	$(PYTHON) -m repro.cli bench validate .bench-smoke/BENCH_slurm_1024.json
	$(PYTHON) -c "from repro.bench import run_bench; \
	a = run_bench('slurm-1024', seed=0).to_json(); \
	b = run_bench('slurm-1024', seed=0).to_json(); \
	assert a == b, 'bench payload is not seed-deterministic'; \
	print('deterministic-seed check: OK')"
	rm -rf .bench-smoke

lint-imports:
	$(PYTHON) -c "import repro, repro.api, repro.bench, repro.chaos, repro.telemetry, repro.cli"
