PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-slow test-chaos chaos-smoke test-bench bench-smoke bench-paper-scale bench-16k-fast bench-100k-smoke lifecycle-smoke verify-smoke sweep-smoke malleable-smoke serve-smoke snapshot-smoke lint-imports

## Full tier-1 suite (the CI gate).
test:
	$(PYTHON) -m pytest -x -q

## Tier-1 minus the slow seed sweeps and golden re-runs (CI's quick lane).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Everything, including the 25+-seed property sweeps.
test-slow:
	$(PYTHON) -m pytest -x -q --slow

## Chaos suite only (fast invariant/property sweep).
test-chaos:
	$(PYTHON) -m pytest -q tests/chaos

## Smoke: the acceptance scenario must pass with zero violations,
## and the same seed twice must produce byte-identical reports.
chaos-smoke:
	$(PYTHON) -m pytest -q tests/chaos
	$(PYTHON) -m repro.cli chaos run failure-storm flapping-node --seed 7 -j 2
	$(PYTHON) -c "from repro.chaos import run_scenario; \
	a = run_scenario('failure-storm', seed=7).to_text(); \
	b = run_scenario('failure-storm', seed=7).to_text(); \
	assert a == b, 'chaos report is not seed-deterministic'; \
	print('deterministic-seed check: OK')"

## Bench + telemetry suites only.
test-bench:
	$(PYTHON) -m pytest -q tests/bench tests/telemetry

## Smoke: the smoke scenario must produce a schema-valid bench file,
## and the same seed twice must produce byte-identical files.
bench-smoke:
	$(PYTHON) -m pytest -q tests/bench tests/telemetry
	$(PYTHON) -m repro.cli bench run slurm-1024 eslurm-1024 --seed 0 --out .bench-smoke -j 2
	$(PYTHON) -m repro.cli bench validate .bench-smoke/BENCH_slurm_1024.json
	$(PYTHON) -c "from repro.bench import run_bench; \
	a = run_bench('slurm-1024', seed=0).to_json(); \
	b = run_bench('slurm-1024', seed=0).to_json(); \
	assert a == b, 'bench payload is not seed-deterministic'; \
	print('deterministic-seed check: OK')"
	rm -rf .bench-smoke

## Paper-scale perf smoke: re-run the 1K-node tier (10K jobs, failures
## on) and judge it against the checked-in baseline — deterministic
## anchors must match exactly, wall time may not regress beyond +25%.
## The remaining tiers (up to the minutes-long 131K one) run via
## ``repro bench compare`` with no --names.
bench-paper-scale:
	$(PYTHON) -m repro.cli bench compare benchmarks/BENCH_paper_scale.json --names paper-1024

## 16K-node perf fence: re-run the paper's full machine size (16,384
## nodes, 10K jobs, failures on) against the checked-in baseline —
## the tier the flattened-lifecycle kernel is judged on.  Deterministic
## anchors must match exactly; wall may not regress beyond +25%.
bench-16k-fast:
	$(PYTHON) -m repro.cli bench compare benchmarks/BENCH_paper_scale.json --names paper-16384

## Lifecycle-kernel smoke: the FSM fast path must be observably
## indistinguishable from the generator reference — unit tests for the
## timer lane and the FSM walk, the full equivalence scenario matrix,
## then the oracle relation across a -j 2 seed sweep.
lifecycle-smoke:
	$(PYTHON) -m pytest -q tests/simkit/test_timer.py tests/rm/test_lifecycle.py tests/rm/test_lifecycle_equivalence.py
	$(PYTHON) -m repro.cli verify --relation lifecycle-equivalence --seeds 2 -j 2

## 100K-node perf smoke: re-run the 65,536-node small-step tier (the
## full machine over the 4 h matrix horizon) against the checked-in
## baseline — exercises the array-backed node state and the batched
## event kernel at scale while staying seconds-long for CI.  The full
## paper-65536 / paper-131072 tiers are --slow territory.
bench-100k-smoke:
	$(PYTHON) -m repro.cli bench compare benchmarks/BENCH_paper_scale.json --names paper-65536-smoke

## Smoke: every oracle layer must hold on the current tree, and the
## golden digests must be reproducible byte-for-byte.
verify-smoke:
	$(PYTHON) -m pytest -q tests/oracle -m "not slow"
	$(PYTHON) -m repro.cli verify --seed 42
	$(PYTHON) -c "from repro.oracle import GOLDEN_SCENARIOS; \
	from repro.oracle.golden import dump_canonical; \
	sc = GOLDEN_SCENARIOS[0]; \
	assert dump_canonical(sc.record()) == dump_canonical(sc.record()), \
	'golden payload is not seed-deterministic'; \
	print('deterministic-digest check: OK')"

## Smoke: the sweep engine must be byte-deterministic — the same small
## matrix at -j 1 and -j 2 must write byte-identical BENCH files, and a
## poisoned cell must be contained (nonzero exit, healthy cells done).
sweep-smoke:
	$(PYTHON) -m pytest -q tests/parallel
	$(PYTHON) -m repro.cli bench run slurm-1024 eslurm-1024 --seed 0 --out .sweep-j1 -j 1
	$(PYTHON) -m repro.cli bench run slurm-1024 eslurm-1024 --seed 0 --out .sweep-j2 -j 2
	diff -r .sweep-j1 .sweep-j2
	@echo "sweep determinism check: OK (-j 1 == -j 2, byte for byte)"
	rm -rf .sweep-j1 .sweep-j2

## Smoke: the elastic/placement layer end to end — the shrink-storm
## chaos scenario must run violation-free, and the two differential
## relations that pin it down must hold across a parallel seed sweep.
malleable-smoke:
	$(PYTHON) -m pytest -q tests/sched/test_malleable.py tests/sched/test_placement.py tests/rm/test_malleable_engine.py
	$(PYTHON) -m repro.cli chaos run malleable-shrink-storm topology-storm --seed 7 -j 2
	$(PYTHON) -m repro.cli verify --relation malleable-throughput --relation topology-fragmentation --seeds 2 -j 2

## Smoke: the gateway end to end — the typed-API and serve suites must
## pass, the load test must replay entirely from cache with
## byte-identical bodies, and two runs at the same seed must agree on
## every non-wall-clock byte of BENCH_serve.json.
serve-smoke:
	$(PYTHON) -m pytest -q tests/serve tests/api
	$(PYTHON) -m repro.cli bench serve-load --requests 4 --concurrency 2 --workers 0 --out .serve-smoke-a.json
	$(PYTHON) -m repro.cli bench serve-load --requests 4 --concurrency 2 --workers 0 --out .serve-smoke-b.json
	$(PYTHON) -c "from repro.serve import load_serve, deterministic_view, dump_serve; \
	a = dump_serve(deterministic_view(load_serve('.serve-smoke-a.json'))); \
	b = dump_serve(deterministic_view(load_serve('.serve-smoke-b.json'))); \
	assert a == b, 'serve load-test is not seed-deterministic'; \
	print('serve determinism check: OK')"
	rm -f .serve-smoke-a.json .serve-smoke-b.json

## Smoke: the incremental-simulation layer end to end — the snapshot
## suite must pass, resume-from-snapshot must stay byte-identical to
## the straight run across a parallel seed sweep, and a what-if query
## must answer through the CLI.
snapshot-smoke:
	$(PYTHON) -m pytest -q tests/snapshot tests/serve/test_whatif.py -m "not slow"
	$(PYTHON) -m repro.cli verify --relation snapshot-equivalence --seeds 2 -j 2
	$(PYTHON) -m repro.cli whatif run --rm eslurm --n-nodes 32 --n-jobs 20 --seed 7 --at-s 43200 --perturb submit-job --job-nodes 4

lint-imports:
	$(PYTHON) -c "import repro, repro.api, repro.bench, repro.chaos, repro.oracle, repro.parallel, repro.serve, repro.telemetry, repro.cli, repro.snapshot"
