"""Tests for the k-ary tree construction and leaf location."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fptree import build_tree, leaf_positions, tree_depth
from repro.fptree.tree import _chunk_bounds, children_bounds


class TestChunkBounds:
    def test_even_split(self):
        assert _chunk_bounds(0, 8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loaded(self):
        bounds = _chunk_bounds(0, 7, 3)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 2, 2]

    def test_fewer_items_than_width(self):
        assert _chunk_bounds(0, 2, 5) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert _chunk_bounds(3, 3, 4) == []

    def test_covers_range_exactly(self):
        bounds = _chunk_bounds(10, 100, 7)
        assert bounds[0][0] == 10
        assert bounds[-1][1] == 100
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c


class TestBuildTree:
    def test_single_node(self):
        tree = build_tree([42], width=4)
        assert tree.node_id == 42
        assert tree.is_leaf()
        assert tree.size() == 1

    def test_small_tree_shape(self):
        tree = build_tree(list(range(5)), width=2)
        assert tree.node_id == 0
        assert len(tree.children) == 2
        assert tree.size() == 5

    def test_all_ids_present_once(self):
        ids = list(range(100))
        tree = build_tree(ids, width=4)
        seen = sorted(n.node_id for n in tree.iter_nodes())
        assert seen == ids

    def test_width_bound_respected(self):
        tree = build_tree(list(range(1000)), width=8)
        for node in tree.iter_nodes():
            assert len(node.children) <= 8

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree([], width=2)

    def test_width_one_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree([1, 2], width=1)

    @given(st.integers(2, 500), st.integers(2, 16))
    @settings(max_examples=40)
    def test_first_layer_children_are_group_heads(self, n, w):
        tree = build_tree(list(range(n)), width=w)
        heads = [c.node_id for c in tree.children]
        expected = [lo for lo, _hi in children_bounds(0, n, w)]
        assert heads == expected


class TestLeafPositions:
    @given(st.integers(1, 800), st.integers(2, 20))
    @settings(max_examples=60)
    def test_matches_built_tree(self, n, w):
        via_tree = sorted(build_tree(list(range(n)), width=w).leaf_ids())
        via_sim = sorted(leaf_positions(n, w))
        assert via_tree == via_sim

    def test_zero_nodes(self):
        assert leaf_positions(0, 4) == []

    def test_single_node_is_leaf(self):
        assert leaf_positions(1, 4) == [0]

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            leaf_positions(-1, 4)

    @given(st.integers(2, 800), st.integers(2, 20))
    @settings(max_examples=40)
    def test_most_nodes_are_leaves(self, n, w):
        # In this contiguous-chunk w-ary construction at least a quarter
        # of positions are leaves (w=2 worst case); wide trees approach 1.
        leaves = leaf_positions(n, w)
        assert len(leaves) >= max(1, n // 4)


class TestTreeDepth:
    def test_depth_zero_for_tiny(self):
        assert tree_depth(1, 4) == 0
        assert tree_depth(0, 4) == 0

    def test_depth_one_within_width(self):
        assert tree_depth(4, 8) == 1  # root + 3 direct children

    def test_depth_grows_logarithmically(self):
        d_small = tree_depth(100, 4)
        d_big = tree_depth(10_000, 4)
        assert d_small < d_big <= d_small + 4

    @given(st.integers(1, 2000), st.integers(2, 16))
    @settings(max_examples=40)
    def test_depth_consistent_with_tree(self, n, w):
        tree = build_tree(list(range(n)), width=w)

        def depth_of(node):
            return 0 if node.is_leaf() else 1 + max(depth_of(c) for c in node.children)

        assert tree_depth(n, w) == depth_of(tree)
