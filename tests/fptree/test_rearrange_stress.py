"""FP-Tree rearrangement under a long sequence of alert batches.

The production pattern is many constructions against a drifting alert
set.  Every single rearrangement must stay a permutation of the
targets, keep the implied tree k-ary, honor the predicted-on-leaves
guarantee — and the construction must stay O(n) (Eq. 2): the visit
counter catches an accidentally quadratic walk long before wall time
would.
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.cluster.monitoring import MonitoringConfig
from repro.fptree.constructor import FPTreeConstructor
from repro.fptree.predictor import MonitorAlertPredictor, StaticSetPredictor
from repro.fptree.tree import VisitCounter, build_tree, count_visits, leaf_positions
from repro.simkit import Simulator

WIDTH = 8
N_TARGETS = 200
N_BATCHES = 30


def assert_sound(targets, ordered, predicted, width):
    """The three structural guarantees of one rearrangement."""
    assert sorted(ordered) == sorted(targets)  # permutation: no node lost
    tree = build_tree([10_000] + list(ordered), width)
    assert tree.size() == len(ordered) + 1
    for vertex in tree.iter_nodes():
        assert len(vertex.children) <= width
    leaf_idx = {p - 1 for p in leaf_positions(len(targets) + 1, width) if p > 0}
    predicted_here = set(predicted) & set(targets)
    on_leaves = sum(
        1 for pos, nid in enumerate(ordered)
        if nid in predicted_here and pos in leaf_idx
    )
    assert on_leaves == min(len(predicted_here), len(leaf_idx))


class TestRepeatedRearrangement:
    def test_thirty_alert_batches_stay_sound(self):
        rng = np.random.default_rng(42)
        predictor = StaticSetPredictor(())
        constructor = FPTreeConstructor(predictor, width=WIDTH)
        targets = list(range(N_TARGETS))
        for _ in range(N_BATCHES):
            predictor.predicted = set(
                rng.choice(N_TARGETS, size=int(rng.integers(0, 40)), replace=False)
            )
            ordered = constructor.construct(root=10_000, targets=targets)
            assert_sound(targets, ordered, predictor.predicted, WIDTH)
        assert constructor.stats.trees_built == N_BATCHES
        assert constructor.stats.nodes_placed == N_BATCHES * N_TARGETS

    def test_live_monitor_alert_stream_stays_sound(self):
        """Same property through the production predictor: alerts arrive
        batch by batch and expire under the constructor's feet."""
        sim = Simulator(seed=1)
        cluster = ClusterSpec(n_nodes=N_TARGETS, n_satellites=1).build(sim)
        config = MonitoringConfig(alert_ttl_hours=0.5)
        cluster.monitor.config = config
        predictor = MonitorAlertPredictor(cluster)
        constructor = FPTreeConstructor(predictor, width=WIDTH)
        rng = np.random.default_rng(7)
        targets = list(range(N_TARGETS))
        for batch in range(N_BATCHES):
            for nid in rng.choice(N_TARGETS, size=5, replace=False):
                cluster.monitor.raise_alert(int(nid))
            predicted = cluster.monitor.predicted_failed(among=targets)
            ordered = constructor.construct(root=10_000, targets=targets)
            assert_sound(targets, ordered, predicted, WIDTH)
            sim.run(until=sim.now + 600.0)  # lets older alerts expire

    def test_construction_visits_stay_linear(self):
        """Eq. 2: one construction walks each position O(1) times."""
        predictor = StaticSetPredictor(range(0, N_TARGETS, 7))
        constructor = FPTreeConstructor(predictor, width=WIDTH)
        targets = list(range(N_TARGETS))
        with count_visits() as counter:
            for _ in range(N_BATCHES):
                constructor.construct(root=10_000, targets=targets)
        bound = 4 * (N_TARGETS + 1) * N_BATCHES
        assert counter.visits <= bound, (counter.visits, bound)

    def test_visits_scale_linearly_not_quadratically(self):
        """Doubling n must roughly double the visit count.

        The predicted set must be non-empty: an empty prediction takes
        the constructor's identity fast path, which walks nothing.
        """

        def visits_for(n):
            constructor = FPTreeConstructor(StaticSetPredictor((3,)), width=WIDTH)
            counter = VisitCounter()
            with count_visits(counter):
                constructor.construct(root=10_000, targets=list(range(n)))
            return counter.visits

        small, large = visits_for(500), visits_for(1000)
        assert small > 0
        assert large < 3 * small, (small, large)
