"""Tests for topology-aware ordering and its FP-Tree fine-tuning
(Section IV-E: build topology-aware first, then demote alert nodes)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import Topology
from repro.fptree import (
    StaticSetPredictor,
    FPTreeConstructor,
    build_tree,
    topology_aware_order,
)

TOPO = Topology(nodes_per_board=4, boards_per_chassis=4, chassis_per_rack=2)


class TestTopologyAwareOrder:
    def test_groups_racks_contiguously(self):
        ids = list(range(100))
        import random

        shuffled = ids.copy()
        random.Random(1).shuffle(shuffled)
        ordered = topology_aware_order(shuffled, TOPO)
        racks = [TOPO.rack_of(nid) for nid in ordered]
        # racks appear as contiguous runs
        seen = set()
        prev = None
        for r in racks:
            if r != prev:
                assert r not in seen
                seen.add(r)
                prev = r

    def test_is_permutation(self):
        ids = [5, 99, 3, 42, 17]
        assert sorted(topology_aware_order(ids, TOPO)) == sorted(ids)

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=60, unique=True))
    @settings(max_examples=40)
    def test_deterministic_and_sorted_by_coordinates(self, ids):
        a = topology_aware_order(ids, TOPO)
        b = topology_aware_order(list(reversed(ids)), TOPO)
        assert a == b  # input order irrelevant
        coords = [TOPO.coordinates(n) for n in a]
        assert coords == sorted(coords)


class TestFineTuning:
    @staticmethod
    def rack_transitions(order):
        racks = [TOPO.rack_of(nid) for nid in order]
        return sum(1 for a, b in zip(racks, racks[1:]) if a != b)

    def test_fp_rearrange_preserves_topology_runs_mostly(self):
        """With few predicted failures the FP pass barely perturbs the
        topology-aware order — the paper's stated compatibility.  We
        measure rack-locality: the number of rack transitions along the
        list grows only by a bounded amount per predicted node."""
        ids = topology_aware_order(list(range(128)), TOPO)
        base = self.rack_transitions(ids)
        predicted = {7, 70}
        ctor = FPTreeConstructor(StaticSetPredictor(predicted), width=4)
        ordered = ctor.construct(root=1000, targets=ids)
        tuned = self.rack_transitions(ordered)
        assert tuned <= base + 4 * len(predicted)

    def test_predicted_still_on_leaves_after_fine_tune(self):
        ids = topology_aware_order(list(range(128)), TOPO)
        predicted = {3, 64, 100}
        ctor = FPTreeConstructor(StaticSetPredictor(predicted), width=4)
        ordered = ctor.construct(root=1000, targets=ids)
        tree = build_tree([1000, *ordered], width=4)
        assert predicted <= set(tree.leaf_ids())
