"""Tests for the FP-Tree constructor: rearranging, stats, broadcast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.fptree import (
    FPTreeBroadcast,
    FPTreeConstructor,
    NullPredictor,
    OraclePredictor,
    StaticSetPredictor,
    build_tree,
    leaf_positions,
    rearrange,
)
from repro.network import FabricConfig, NetworkFabric, TreeBroadcast
from repro.simkit import Simulator


def build(n=256, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n).build(sim)
    fabric = NetworkFabric(sim, cluster, FabricConfig())
    return sim, cluster, fabric


class TestRearrange:
    def test_no_predictions_identity(self):
        nodes = [5, 3, 8, 1, 9]
        out = rearrange(nodes, leaf_idx=[2, 3, 4], predicted_failed=set())
        assert out == nodes

    def test_predicted_moved_to_leaves(self):
        nodes = list(range(10))
        leaves = [5, 6, 7, 8, 9]
        out = rearrange(nodes, leaves, predicted_failed={0, 1})
        for pos, nid in enumerate(out):
            if nid in {0, 1}:
                assert pos in set(leaves)

    def test_healthy_order_preserved(self):
        nodes = list(range(10))
        out = rearrange(nodes, leaf_idx=[8, 9], predicted_failed={3})
        healthy = [n for n in out if n != 3]
        assert healthy == [n for n in nodes if n != 3]

    def test_more_predicted_than_leaves_overflows_to_inner(self):
        nodes = list(range(6))
        out = rearrange(nodes, leaf_idx=[5], predicted_failed={0, 1, 2, 3, 4, 5})
        assert sorted(out) == nodes  # still a permutation

    @given(
        st.integers(1, 200),
        st.integers(2, 10),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50)
    def test_is_always_permutation(self, n, w, frac):
        nodes = list(range(n))
        leaves = leaf_positions(n, w)
        predicted = set(nodes[: int(frac * n)])
        out = rearrange(nodes, leaves, predicted)
        assert sorted(out) == nodes


class TestConstructor:
    def test_predicted_nodes_land_on_tree_leaves(self):
        predicted = {10, 20, 30, 40}
        ctor = FPTreeConstructor(StaticSetPredictor(predicted), width=4)
        targets = list(range(1, 128))
        ordered = ctor.construct(root=0, targets=targets)
        tree = build_tree([0, *ordered], width=4)
        leaf_ids = set(tree.leaf_ids())
        assert predicted <= leaf_ids

    def test_stats_accumulate(self):
        ctor = FPTreeConstructor(StaticSetPredictor({1, 2}), width=4)
        ctor.construct(0, list(range(1, 50)))
        ctor.construct(0, list(range(1, 50)))
        assert ctor.stats.trees_built == 2
        assert ctor.stats.predicted_total == 4
        assert ctor.stats.leaf_placement_ratio == 1.0

    def test_empty_targets(self):
        ctor = FPTreeConstructor(NullPredictor(), width=4)
        assert ctor.construct(0, []) == []

    def test_null_predictor_keeps_order(self):
        ctor = FPTreeConstructor(NullPredictor(), width=4)
        targets = [9, 4, 7, 2]
        assert ctor.construct(0, targets) == targets

    def test_leaf_placement_ratio_no_predictions(self):
        ctor = FPTreeConstructor(NullPredictor(), width=4)
        ctor.construct(0, list(range(1, 10)))
        assert ctor.stats.leaf_placement_ratio == 1.0


class TestFPTreeBroadcast:
    def test_beats_plain_tree_under_predicted_failures(self):
        n = 1024
        _, cluster, fabric = build(n=n, seed=2)
        failed = cluster.fail_fraction(0.1)
        plain = TreeBroadcast(width=16).simulate(0, list(range(1, n)), 4096, fabric)
        fp = FPTreeBroadcast(OraclePredictor(cluster), width=16).simulate(
            0, list(range(1, n)), 4096, fabric
        )
        assert fp.makespan_s < plain.makespan_s
        assert set(fp.failed) == set(plain.failed) == set(failed) - {0}

    def test_equivalent_to_plain_tree_without_failures(self):
        n = 256
        _, cluster, fabric = build(n=n)
        plain = TreeBroadcast(width=8).simulate(0, list(range(1, n)), 1024, fabric)
        fp = FPTreeBroadcast(NullPredictor(), width=8).simulate(0, list(range(1, n)), 1024, fabric)
        assert fp.makespan_s == pytest.approx(plain.makespan_s)

    def test_wrong_prediction_is_harmless(self):
        # Over-prediction principle: predicting healthy nodes failed only
        # moves them to leaves; everything still gets delivered.
        n = 128
        _, cluster, fabric = build(n=n)
        fp = FPTreeBroadcast(StaticSetPredictor(set(range(1, 60))), width=8)
        res = fp.simulate(0, list(range(1, n)), 1024, fabric)
        assert res.failed == ()
        assert res.delivery_ratio == 1.0

    def test_stats_exposed(self):
        _, cluster, fabric = build(n=64)
        fp = FPTreeBroadcast(StaticSetPredictor({5}), width=8)
        fp.simulate(0, list(range(1, 64)), 1024, fabric)
        assert fp.stats.trees_built == 1
        assert fp.width == 8

    def test_fp_tree_flat_under_increasing_predicted_failures(self):
        """The core Fig. 8b claim: FP-Tree latency barely grows with
        failure ratio while the plain tree's explodes."""
        n = 1024
        fp_times, plain_times = [], []
        for frac in (0.0, 0.2):
            _, cluster, fabric = build(n=n, seed=4)
            cluster.fail_fraction(frac)
            plain_times.append(
                TreeBroadcast(width=16).simulate(0, list(range(1, n)), 4096, fabric).makespan_s
            )
            fp_times.append(
                FPTreeBroadcast(OraclePredictor(cluster), width=16)
                .simulate(0, list(range(1, n)), 4096, fabric)
                .makespan_s
            )
        plain_growth = plain_times[1] / plain_times[0]
        fp_growth = fp_times[1] / fp_times[0]
        assert fp_growth < plain_growth


class TestConstructMemo:
    def test_repeat_construct_hits_and_matches(self):
        ctor = FPTreeConstructor(StaticSetPredictor({3, 7}), width=4)
        targets = list(range(1, 30))
        first = ctor.construct(0, targets)
        second = ctor.construct(0, targets)
        assert second == first
        assert (ctor.memo_misses, ctor.memo_hits) == (1, 1)

    def test_hit_returns_fresh_list(self):
        ctor = FPTreeConstructor(StaticSetPredictor({3}), width=4)
        targets = list(range(1, 20))
        a = ctor.construct(0, targets)
        a[0] = -1  # caller mutation must not poison the memo
        b = ctor.construct(0, targets)
        assert b[0] != -1

    def test_hit_replays_stats(self):
        ctor = FPTreeConstructor(StaticSetPredictor({1, 2}), width=4)
        targets = list(range(1, 17))
        ctor.construct(0, targets)
        miss_stats = (
            ctor.stats.trees_built,
            ctor.stats.nodes_placed,
            ctor.stats.predicted_total,
            ctor.stats.predicted_on_leaves,
        )
        ctor.construct(0, targets)
        assert ctor.stats.trees_built == 2 * miss_stats[0]
        assert ctor.stats.nodes_placed == 2 * miss_stats[1]
        assert ctor.stats.predicted_total == 2 * miss_stats[2]
        assert ctor.stats.predicted_on_leaves == 2 * miss_stats[3]

    def test_hit_replays_observers(self):
        ctor = FPTreeConstructor(StaticSetPredictor({2}), width=4)
        calls = []
        ctor.construct_observers.append(
            lambda targets, ordered, leaf_idx, predicted: calls.append(
                (tuple(targets), tuple(ordered), tuple(leaf_idx), frozenset(predicted))
            )
        )
        targets = list(range(1, 12))
        ctor.construct(0, targets)
        ctor.construct(0, targets)
        assert len(calls) == 2
        assert calls[0] == calls[1]

    def test_changed_prediction_set_misses(self):
        predictor = StaticSetPredictor({2})
        ctor = FPTreeConstructor(predictor, width=4)
        targets = list(range(1, 12))
        ctor.construct(0, targets)
        predictor.predicted = {2, 5}
        ctor.construct(0, targets)
        assert ctor.memo_misses == 2
        assert ctor.memo_hits == 0

    def test_changed_targets_miss(self):
        ctor = FPTreeConstructor(StaticSetPredictor({2}), width=4)
        ctor.construct(0, list(range(1, 12)))
        ctor.construct(0, list(range(1, 13)))
        assert ctor.memo_misses == 2
