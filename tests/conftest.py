"""Suite-wide pytest plumbing: the ``--slow`` opt-in.

Seed-swept property tests are parameterized over a handful of seeds by
default (the tier-1 posture) and over a much wider sweep when ``--slow``
is passed; the extra parameters carry the ``slow`` marker and are
skipped unless opted in.  ``make test-fast`` additionally deselects them
outright with ``-m "not slow"``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="run the slow seed sweeps (25+ seeds instead of 5)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow seed sweep: opt in with --slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
