"""Tests for the bounded admission queue (the backpressure contract)."""

import threading

import pytest

from repro.serve import BoundedQueue


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for item in ("a", "b", "c"):
            assert q.try_put(item)
        assert [q.try_get() for _ in range(3)] == ["a", "b", "c"]
        assert q.try_get() is None

    def test_full_put_sheds_instead_of_blocking(self):
        q = BoundedQueue(2)
        assert q.try_put(1) and q.try_put(2)
        assert not q.try_put(3)
        assert q.shed == 1
        assert len(q) == 2  # the shed item never entered
        q.try_get()
        assert q.try_put(3)  # room again after a pop

    def test_closed_queue_refuses_admission(self):
        q = BoundedQueue(2)
        q.close()
        assert not q.try_put(1)
        assert q.shed == 1

    def test_blocking_get_times_out(self):
        q = BoundedQueue(1)
        assert q.get(timeout=0.01) is None

    def test_blocking_get_wakes_on_put(self):
        q = BoundedQueue(1)
        got = []

        def consume():
            got.append(q.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        q.try_put("item")
        thread.join(timeout=5.0)
        assert got == ["item"]

    def test_close_wakes_blocked_getter(self):
        q = BoundedQueue(1)
        got = []

        def consume():
            got.append(q.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        q.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
