"""Shared serve-test plumbing: a gated dispatch stub.

Lifecycle tests need to control exactly when a request is RUNNING —
cancel-while-queued, coalesce-onto-running, and queue-full shed are
races unless the test holds the dispatcher still.  The ``gates``
fixture patches :func:`repro.api.dispatch` with a stub whose completion
is keyed by request seed: ``gates[seed] = threading.Event()`` parks
that request until the test releases it.  A request at ``POISON_SEED``
raises, exercising the failure path.
"""

import time
from types import SimpleNamespace

import pytest

#: a request at this seed makes the stub dispatch raise
POISON_SEED = 999


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def gates(monkeypatch):
    """Patch ``repro.api.dispatch``; returns the seed -> Event gate map.

    The executor's dispatcher thread binds ``dispatch`` when it starts,
    so patching before ``Executor.start`` (or ``Gateway.start``) is
    sufficient.
    """
    gate_map = {}

    def fake_dispatch(request, progress=None):
        gate = gate_map.get(request.seed)
        if gate is not None:
            assert gate.wait(10.0), "test gate never released"
        if request.seed == POISON_SEED:
            raise RuntimeError("boom at poison seed")
        if progress is not None:
            progress(f"half-way through seed {request.seed}")
        wire = {
            "kind": request.kind,
            "digest": request.digest(),
            "ok": True,
            "result": {"seed": request.seed},
        }
        return SimpleNamespace(to_wire=lambda: wire)

    monkeypatch.setattr("repro.api.dispatch", fake_dispatch)
    return gate_map
