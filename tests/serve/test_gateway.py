"""End-to-end gateway tests over real HTTP sockets.

Each test boots a :class:`repro.serve.Gateway` on a free port inside
``asyncio.run`` and speaks raw HTTP/1.1 to it, the same way the CLI
client and the load-test bench do.  Lifecycle-sensitive tests use the
gated dispatch stub from ``conftest``; the cache-hit test runs a real
(cheap) chaos request through the full dispatch path.
"""

import asyncio
import json
import threading

from repro.serve import Gateway, GatewayConfig
from tests.serve.conftest import wait_for


async def http(port, method, path, body=None, host="127.0.0.1"):
    """One request over a fresh connection; returns (status, raw body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), rest


async def http_json(port, method, path, body=None):
    status, rest = await http(port, method, path, body)
    return status, json.loads(rest.decode())


def gateway_test(config=None):
    """Decorator: run ``coro(gateway)`` against a started gateway."""

    def runner(coro):
        async def main():
            gateway = Gateway(config or GatewayConfig())
            await gateway.start()
            try:
                return await coro(gateway)
            finally:
                if not gateway._stopped.is_set():
                    await gateway.stop(drain=True)

        return asyncio.run(main())

    return runner


class TestBasics:
    def test_healthz_stats_and_404s(self):
        @gateway_test()
        async def _(gw):
            status, body = await http_json(gw.port, "GET", "/v1/healthz")
            assert (status, body) == (200, {"ok": True, "phase": "serving"})
            status, body = await http_json(gw.port, "GET", "/v1/stats")
            assert status == 200
            assert set(body) == {"cache", "queue", "executor", "tickets"}
            assert body["queue"]["capacity"] == gw.config.queue_size
            for method, path in (
                ("GET", "/nope"),
                ("GET", "/v1/unknown"),
                ("GET", "/v1/requests/r-000042"),
                ("DELETE", "/v1/requests/r-000042"),
            ):
                status, body = await http_json(gw.port, method, path)
                assert status == 404 and "error" in body

    def test_bad_requests_get_400_with_config_exit_code(self):
        @gateway_test()
        async def _(gw):
            cases = [
                ("/v1/simulate", {"rm": "htcondor"}),
                ("/v1/requests", {"kind": "teleport"}),
                ("/v1/requests", {"kind": "simulate", "n_nodez": 4}),
            ]
            for path, wire in cases:
                status, body = await http_json(gw.port, "POST", path, wire)
                assert status == 400, (path, wire, body)
                assert body["exit_code"] == 3  # EXIT_CONFIG, the CLI code
            # non-JSON body
            status, rest = await http(gw.port, "POST", "/v1/chaos")
            # empty body defaults fine; send actual garbage instead
            reader, writer = await asyncio.open_connection("127.0.0.1", gw.port)
            writer.write(
                b"POST /v1/chaos HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 8\r\nConnection: close\r\n\r\nnot-json"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            assert b"bad JSON body" in raw


class TestSubmitAndCache:
    def test_wait_submit_then_served_from_cache(self):
        # real dispatch: the acceptance path — identical (config, seed)
        # yields an identical digest and the repeat is a cache hit
        @gateway_test()
        async def _(gw):
            wire = {"scenario": "flapping-node", "seed": 5}
            status, first = await http_json(
                gw.port, "POST", "/v1/chaos?wait=1", wire
            )
            assert status == 200
            assert first["state"] == "done" and first["ok"] is True
            assert first["cached"] is False

            status, again = await http_json(
                gw.port, "POST", "/v1/chaos?wait=1", wire
            )
            assert status == 200
            assert again["cached"] is True
            assert again["digest"] == first["digest"]
            assert json.dumps(again["result"], sort_keys=True) == json.dumps(
                first["result"], sort_keys=True
            )

            # the kind-implied path and the generic envelope path agree
            status, generic = await http_json(
                gw.port, "POST", "/v1/requests?wait=1", {"kind": "chaos", **wire}
            )
            assert generic["cached"] is True
            assert generic["digest"] == first["digest"]

            _, stats = await http_json(gw.port, "GET", "/v1/stats")
            assert stats["cache"]["hits"] >= 2
            assert stats["executor"]["completed"] == 1  # one real execution
            assert stats["tickets"] == 3

    def test_async_submit_status_and_event_stream(self, gates):
        @gateway_test()
        async def _(gw):
            status, body = await http_json(
                gw.port, "POST", "/v1/chaos", {"seed": 1}
            )
            assert status == 202
            assert body["state"] in ("queued", "running")
            ticket_id = body["id"]

            def is_done():
                ticket = gw.store.get(ticket_id)
                return ticket is not None and ticket.done.is_set()

            assert await asyncio.get_running_loop().run_in_executor(
                None, wait_for, is_done
            )
            status, final = await http_json(
                gw.port, "GET", f"/v1/requests/{ticket_id}"
            )
            assert status == 200 and final["state"] == "done"

            # late subscriber: the stream still replays the full history
            status, raw = await http(
                gw.port, "GET", f"/v1/requests/{ticket_id}/events"
            )
            assert status == 200
            events = [json.loads(line) for line in raw.splitlines() if line]
            assert [e["event"] for e in events] == [
                "queued", "running", "progress", "done",
            ]
            assert [e["seq"] for e in events] == list(range(len(events)))
            assert all(e["id"] == ticket_id for e in events)

    def test_event_stream_ends_for_chatty_request(self, gates):
        # regression: with the history window full of lifecycle events,
        # progress is dropped but the terminal event still lands, so
        # the stream closes instead of polling forever
        @gateway_test()
        async def _(gw):
            gw.events.history_limit = 2  # queued + running fill it
            status, body = await http_json(
                gw.port, "POST", "/v1/chaos?wait=1", {"seed": 1}
            )
            assert status == 200 and body["state"] == "done"
            status, raw = await http(
                gw.port, "GET", f"/v1/requests/{body['id']}/events"
            )
            assert status == 200
            events = [json.loads(line) for line in raw.splitlines() if line]
            assert [e["event"] for e in events] == ["queued", "running", "done"]

    def test_failed_request_reports_500(self, gates):
        @gateway_test()
        async def _(gw):
            status, body = await http_json(
                gw.port, "POST", "/v1/chaos?wait=1", {"seed": 999}
            )
            assert status == 500
            assert body["state"] == "failed"
            assert body["exit_code"] == 4  # EXIT_INTERNAL
            assert "boom at poison seed" in body["error"]
            # the gateway survives the failure
            status, health = await http_json(gw.port, "GET", "/v1/healthz")
            assert status == 200 and health["ok"] is True


class TestCancelAndBackpressure:
    def test_cancel_queued_then_conflict(self, gates):
        @gateway_test()
        async def _(gw):
            gates[1] = threading.Event()
            _, parked = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 1})
            assert await asyncio.get_running_loop().run_in_executor(
                None, wait_for,
                lambda: gw.store.get(parked["id"]).state == "running",
            )
            _, queued = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 2})

            status, body = await http_json(
                gw.port, "DELETE", f"/v1/requests/{queued['id']}"
            )
            assert status == 200 and body["state"] == "cancelled"
            status, body = await http_json(
                gw.port, "DELETE", f"/v1/requests/{queued['id']}"
            )
            assert status == 409
            assert "only queued requests can be cancelled" in body["error"]
            gates[1].set()

    def test_full_queue_sheds_with_429(self, gates):
        @gateway_test(GatewayConfig(queue_size=1))
        async def _(gw):
            gates[1] = threading.Event()
            _, parked = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 1})
            assert await asyncio.get_running_loop().run_in_executor(
                None, wait_for,
                lambda: gw.store.get(parked["id"]).state == "running",
            )
            status, _ = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 2})
            assert status == 202  # fills the single queue slot
            status, body = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 3})
            assert status == 429
            assert body["exit_code"] == 5  # EXIT_BUSY
            assert body["retry"] is True
            assert (body["queue_size"], body["queue_capacity"]) == (1, 1)
            gates[1].set()

            _, stats = await http_json(gw.port, "GET", "/v1/stats")
            assert stats["queue"]["shed"] == 1


class TestShutdown:
    def test_draining_rejects_then_shutdown_stops(self, gates):
        @gateway_test()
        async def _(gw):
            _, done = await http_json(
                gw.port, "POST", "/v1/chaos?wait=1", {"seed": 1}
            )
            assert done["state"] == "done"

            gw._draining = True
            status, body = await http_json(gw.port, "POST", "/v1/chaos", {"seed": 2})
            assert status == 503 and "draining" in body["error"]
            gw._draining = False

            status, body = await http_json(gw.port, "POST", "/v1/shutdown")
            assert (status, body) == (200, {"ok": True, "phase": "draining"})
            await asyncio.wait_for(gw.serve_forever(), timeout=10.0)
            assert gw._stopped.is_set()
