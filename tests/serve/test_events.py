"""Tests for the per-ticket event bus and the NDJSON wire format."""

import json
import threading

from repro.serve import EventBus, event_line


class TestEventLine:
    def test_canonical_json_plus_newline(self):
        line = event_line({"event": "done", "ok": True, "id": "r-1", "seq": 2})
        assert line.endswith(b"\n")
        assert line == b'{"event":"done","id":"r-1","ok":true,"seq":2}\n'
        # parses back as one JSON object
        assert json.loads(line)["event"] == "done"


class TestEventBus:
    def test_seq_is_per_ticket_monotonic(self):
        bus = EventBus()
        bus.emit("a", {"event": "queued"})
        bus.emit("b", {"event": "queued"})
        bus.emit("a", {"event": "running"})
        assert [e["seq"] for e in bus.events("a")] == [0, 1]
        assert [e["seq"] for e in bus.events("b")] == [0]
        assert all(e["id"] == "a" for e in bus.events("a"))

    def test_late_subscriber_replays_full_history(self):
        # the gateway guarantee: connecting to the event stream after
        # the request finished still yields every event
        bus = EventBus()
        for name in ("queued", "running", "done"):
            bus.emit("t", {"event": name})
        assert [e["event"] for e in bus.events("t")] == ["queued", "running", "done"]
        assert [e["event"] for e in bus.events("t", start=2)] == ["done"]

    def test_wait_blocks_until_emit(self):
        bus = EventBus()
        got = []

        def tail():
            got.extend(bus.wait("t", 0, timeout=5.0))

        thread = threading.Thread(target=tail)
        thread.start()
        bus.emit("t", {"event": "queued"})
        thread.join(timeout=5.0)
        assert [e["event"] for e in got] == ["queued"]

    def test_wait_timeout_returns_empty(self):
        bus = EventBus()
        assert bus.wait("nope", 0, timeout=0.01) == []

    def test_history_limit_bounds_memory(self):
        bus = EventBus(history_limit=3)
        for i in range(10):
            bus.emit("t", {"event": "progress", "i": i})
        assert len(bus.events("t")) == 3

    def test_terminal_event_survives_history_limit(self):
        # regression: a chatty request must not push its own completion
        # off the stream — tailing clients exit on the terminal event
        bus = EventBus(history_limit=3)
        for i in range(10):
            bus.emit("t", {"event": "progress", "i": i})
        bus.emit("t", {"event": "done", "ok": True})
        events = bus.events("t")
        assert len(events) == 4
        assert events[-1]["event"] == "done"
        assert [e["seq"] for e in events] == [0, 1, 2, 3]

    def test_drop(self):
        bus = EventBus()
        bus.emit("t", {"event": "queued"})
        bus.drop("t")
        assert bus.events("t") == []
