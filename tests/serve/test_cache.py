"""Tests for the digest-keyed LRU result cache."""

import pytest

from repro.serve import ResultCache


def envelope(n):
    return {"kind": "simulate", "digest": f"d{n}", "ok": True, "result": {"n": n}}


class TestResultCache:
    def test_round_trip_and_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", envelope(1))
        assert cache.get("d1") == envelope(1)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", envelope(1))
        cache.put("b", envelope(2))
        # touch "a" so "b" becomes the LRU entry
        assert cache.get("a") is not None
        cache.put("c", envelope(3))
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_recency_too(self):
        cache = ResultCache(capacity=2)
        cache.put("a", envelope(1))
        cache.put("b", envelope(2))
        cache.put("a", envelope(10))  # re-put: "b" is now LRU
        cache.put("c", envelope(3))
        assert cache.get("b") is None
        assert cache.get("a")["result"]["n"] == 10

    def test_len_and_empty_stats(self):
        cache = ResultCache(capacity=3)
        assert len(cache) == 0
        assert cache.stats()["hit_rate"] == 0.0
        cache.put("x", envelope(1))
        assert len(cache) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
