"""Tests for the serve load-test bench tier (``BENCH_serve.json``).

The acceptance bar: two runs at the same seed produce byte-identical
payloads once the wall-clock ``host`` section is dropped, the replay
phase is served entirely from cache, and nothing is shed or failed.
Inline mode (``workers=0``) keeps the default tier fast; the pool-mode
run is the checked-in artifact's configuration and rides the ``slow``
marker.
"""

import json

import pytest

from repro.api import request_from_wire
from repro.errors import ConfigurationError
from repro.serve import (
    SERVE_SCHEMA,
    build_request_mix,
    deterministic_view,
    dump_serve,
    load_serve,
    render_serve,
    run_serve_load,
)


class TestRequestMix:
    def test_cycles_all_kinds_with_distinct_digests(self):
        mix = build_request_mix(seed=0, n_unique=8)
        kinds = [wire["kind"] for wire in mix]
        assert kinds == ["verify", "estimate", "simulate", "chaos"] * 2
        digests = {request_from_wire(w).digest() for w in mix}
        assert len(digests) == 8  # every request is its own cache entry

    def test_mix_is_seed_deterministic(self):
        assert build_request_mix(3, 6) == build_request_mix(3, 6)
        assert build_request_mix(3, 6) != build_request_mix(4, 6)


class TestValidation:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ConfigurationError):
            run_serve_load(n_unique=0)
        with pytest.raises(ConfigurationError):
            run_serve_load(concurrency=0)
        # shed-free determinism needs every concurrent request admissible
        with pytest.raises(ConfigurationError, match="queue_size"):
            run_serve_load(concurrency=4, queue_size=2)

    def test_load_serve_checks_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ConfigurationError, match="expected schema"):
            load_serve(path)


class TestDeterminism:
    def test_two_runs_byte_identical_minus_wall_clock(self, tmp_path):
        runs = [
            run_serve_load(seed=0, n_unique=4, concurrency=2, workers=0)
            for _ in range(2)
        ]
        texts = [dump_serve(deterministic_view(p)) for p in runs]
        assert texts[0] == texts[1]

        payload = runs[0]
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["requests_total"] == 8
        # phase 1 all misses, phase 2 all hits, nothing shed or failed
        assert payload["cache"]["misses"] == 4
        assert payload["cache"]["hits"] == 4
        assert payload["cache"]["hit_rate"] == 0.5
        assert payload["shed"] == 0
        assert payload["failed"] == 0
        assert payload["replay_byte_identical"] is True
        assert len(payload["responses_digest"]) == 64
        # the wall-clock section exists but is excluded from identity
        assert "host" in payload and "host" not in deterministic_view(payload)

        # dump -> load round trip
        path = tmp_path / "BENCH_serve.json"
        path.write_text(dump_serve(payload))
        assert load_serve(path) == payload

        report = render_serve(payload)
        assert "byte-identical: yes" in report
        assert "4 hit(s) / 4 miss(es)" in report

    @pytest.mark.slow
    def test_pool_mode_matches_inline_digest(self):
        # the checked-in artifact runs workers=2; the response digest
        # must not depend on where requests execute
        inline = run_serve_load(seed=0, n_unique=4, concurrency=2, workers=0)
        pooled = run_serve_load(seed=0, n_unique=4, concurrency=2, workers=2)
        assert pooled["responses_digest"] == inline["responses_digest"]
        assert pooled["replay_byte_identical"] is True
