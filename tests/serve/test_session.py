"""Tests for the request lifecycle: store, executor, coalescing, cancel.

These run the inline executor against a *gated* dispatch stub so the
tests control exactly when a request is RUNNING — lifecycle races
(cancel-while-queued, coalesce-onto-running, queue-full shed) become
deterministic instead of timing-dependent.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.api import ChaosRequest
from repro.errors import EXIT_INTERNAL, EXIT_OK
from repro.serve import EventBus, Executor, ResultCache, SessionStore
from repro.serve.protocol import CANCELLED, DONE, FAILED, QUEUED, RUNNING
from tests.serve.conftest import POISON_SEED, wait_for


@pytest.fixture
def harness(gates):
    cache = ResultCache(64)
    events = EventBus()
    store = SessionStore()
    executor = Executor(workers=0, queue_size=8, cache=cache, events=events)
    executor.start()
    yield SimpleNamespace(
        cache=cache, events=events, store=store, executor=executor, gates=gates
    )
    for gate in gates.values():  # never leave the dispatcher blocked
        gate.set()
    executor.stop()


class TestSessionStore:
    def test_sequential_ids_and_lookup(self):
        store = SessionStore()
        t1 = store.create(ChaosRequest(seed=1))
        t2 = store.create(ChaosRequest(seed=2))
        assert (t1.id, t2.id) == ("r-000001", "r-000002")
        assert store.get(t1.id) is t1
        assert store.get("r-999999") is None
        assert len(store) == 2
        assert t1.digest == ChaosRequest(seed=1).digest()

    def test_settled_tickets_pruned_at_limit_with_streams(self):
        # regression: a long-running gateway must not retain every
        # ticket (and its event stream) it ever served
        bus = EventBus()
        store = SessionStore(limit=2, events=bus)
        old = store.create(ChaosRequest(seed=1))
        old.state = DONE
        old.done.set()
        bus.emit(old.id, {"event": "done"})
        active = store.create(ChaosRequest(seed=2))  # stays queued
        newest = store.create(ChaosRequest(seed=3))
        assert store.get(old.id) is None  # oldest settled ticket went
        assert bus.events(old.id) == []  # ...with its stream
        assert store.get(active.id) is active
        assert store.get(newest.id) is newest
        assert len(store) == 2
        assert store.pruned == 1

    def test_inflight_tickets_never_pruned(self):
        store = SessionStore(limit=1)
        live = [store.create(ChaosRequest(seed=s)) for s in (1, 2, 3)]
        assert all(store.get(t.id) is t for t in live)
        assert len(store) == 3


class TestLifecycle:
    def test_submit_to_done(self, harness):
        ticket = harness.store.create(ChaosRequest(seed=1))
        assert harness.executor.submit(ticket) == "queued"
        assert ticket.done.wait(10.0)
        assert ticket.state == DONE
        assert ticket.exit_code == EXIT_OK
        assert ticket.envelope["ok"] is True
        # the result landed in the cache under the request digest
        assert harness.cache.get(ticket.digest) == ticket.envelope
        names = [e["event"] for e in harness.events.events(ticket.id)]
        assert names == ["queued", "running", "progress", "done"]
        assert [e["seq"] for e in harness.events.events(ticket.id)] == [0, 1, 2, 3]
        assert harness.executor.completed == 1
        status = ticket.status()
        assert status["state"] == DONE and status["ok"] is True

    def test_failure_settles_ticket_not_gateway(self, harness):
        ticket = harness.store.create(ChaosRequest(seed=POISON_SEED))
        assert harness.executor.submit(ticket) == "queued"
        assert ticket.done.wait(10.0)
        assert ticket.state == FAILED
        assert ticket.exit_code == EXIT_INTERNAL
        assert "boom at poison seed" in ticket.error
        assert harness.executor.failed == 1
        assert harness.events.events(ticket.id)[-1]["event"] == "failed"
        # a failed run is never cached — the next submit retries it
        harness.gates[POISON_SEED] = threading.Event()
        retry = harness.store.create(ChaosRequest(seed=POISON_SEED))
        assert harness.executor.submit(retry) == "queued"
        harness.gates[POISON_SEED].set()
        assert retry.done.wait(10.0)
        assert retry.state == FAILED  # still poisoned, but it *ran* again

    def test_drain_waits_for_settlement(self, harness):
        tickets = [harness.store.create(ChaosRequest(seed=s)) for s in (1, 2, 3)]
        for ticket in tickets:
            harness.executor.submit(ticket)
        assert harness.executor.drain(timeout=10.0)
        assert harness.executor.idle()
        assert all(t.state == DONE for t in tickets)


class TestCoalescing:
    def test_identical_inflight_digest_coalesces(self, harness):
        harness.gates[1] = threading.Event()
        primary = harness.store.create(ChaosRequest(seed=1))
        assert harness.executor.submit(primary) == "queued"
        assert wait_for(lambda: primary.state == RUNNING)
        follower = harness.store.create(ChaosRequest(seed=1))
        assert harness.executor.submit(follower) == "coalesced"
        assert follower.coalesced is True
        harness.gates[1].set()
        assert primary.done.wait(10.0) and follower.done.wait(10.0)
        assert follower.state == DONE
        assert follower.envelope is primary.envelope  # one execution
        assert harness.executor.coalesced == 1
        first = harness.events.events(follower.id)[0]
        assert first["coalesced_with"] == primary.id

    def test_cancel_resubmit_duplicate_entry_does_not_livelock(self):
        # regression: cancelling a QUEUED primary and resubmitting the
        # same digest leaves the queue holding the dead entry plus the
        # new primary.  Pool mode drains both before either settles;
        # claiming the duplicate must give up, not spin on the
        # already-RUNNING group head forever.
        executor = Executor(
            workers=0, queue_size=8, cache=ResultCache(8), events=EventBus()
        )  # never started: this test *is* the dispatcher
        store = SessionStore()
        dead = store.create(ChaosRequest(seed=1))
        assert executor.submit(dead) == "queued"
        assert executor.cancel(dead)
        fresh = store.create(ChaosRequest(seed=1))
        assert executor.submit(fresh) == "queued"
        # pulling the dead entry promotes the resubmitted primary
        assert executor.queue.try_get() is dead
        assert executor._claim(dead) is fresh
        assert fresh.state == RUNNING
        # pulling the duplicate entry terminates instead of livelocking
        assert executor.queue.try_get() is fresh
        assert executor._claim(fresh) is None

    def test_cancelled_primary_promotes_follower(self, harness):
        harness.gates[1] = threading.Event()
        blocker = harness.store.create(ChaosRequest(seed=1))
        assert harness.executor.submit(blocker) == "queued"
        assert wait_for(lambda: blocker.state == RUNNING)
        primary = harness.store.create(ChaosRequest(seed=2))
        assert harness.executor.submit(primary) == "queued"
        follower = harness.store.create(ChaosRequest(seed=2))
        assert harness.executor.submit(follower) == "coalesced"
        # cancel the ticket that physically occupies the queue slot
        assert harness.executor.cancel(primary)
        harness.gates[1].set()
        # the follower inherits the slot and completes
        assert follower.done.wait(10.0)
        assert follower.state == DONE
        assert primary.state == CANCELLED


class TestCancel:
    def test_cancel_queued_only(self, harness):
        harness.gates[1] = threading.Event()
        running = harness.store.create(ChaosRequest(seed=1))
        harness.executor.submit(running)
        assert wait_for(lambda: running.state == RUNNING)
        queued = harness.store.create(ChaosRequest(seed=2))
        harness.executor.submit(queued)
        assert queued.state == QUEUED

        assert harness.executor.cancel(queued) is True
        assert queued.state == CANCELLED and queued.done.is_set()
        assert harness.executor.cancel(queued) is False  # already terminal
        assert harness.executor.cancel(running) is False  # already running
        assert harness.executor.cancelled == 1
        assert harness.events.events(queued.id)[-1]["event"] == "cancelled"

        harness.gates[1].set()
        assert running.done.wait(10.0)
        assert running.state == DONE


class TestBackpressure:
    def test_full_queue_reports_busy(self, gates):
        cache, events, store = ResultCache(8), EventBus(), SessionStore()
        executor = Executor(workers=0, queue_size=1, cache=cache, events=events)
        executor.start()
        try:
            gates[1] = threading.Event()
            running = store.create(ChaosRequest(seed=1))
            assert executor.submit(running) == "queued"
            assert wait_for(lambda: running.state == RUNNING)
            filler = store.create(ChaosRequest(seed=2))
            assert executor.submit(filler) == "queued"
            shed = store.create(ChaosRequest(seed=3))
            assert executor.submit(shed) == "busy"
            assert executor.queue.shed == 1
            gates[1].set()
            assert filler.done.wait(10.0)
        finally:
            gates[1].set()
            executor.stop()
